"""Shared orchestration: dataset caching, component factories, and the
control-variates evaluation loop used by every table/figure module."""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..artifacts import ArtifactStore
from ..bisim import BiSIMConfig, BiSIMImputer, BiSIMTrainerCache
from ..core import (
    DasaKMDifferentiator,
    Differentiator,
    ElbowKMDifferentiator,
    MAROnlyDifferentiator,
    MNAROnlyDifferentiator,
    TopoACDifferentiator,
)
from ..datasets import Dataset, make_dataset, make_evaluation_split
from ..exceptions import ExperimentError
from ..imputers import (
    BRITSImputer,
    CaseDeletionImputer,
    Imputer,
    LinearInterpolationImputer,
    MatrixFactorizationImputer,
    MICEImputer,
    SemiSupervisedImputer,
    SSGANImputer,
    run_imputer,
)
from ..metrics import average_positioning_error
from ..positioning import (
    KNNEstimator,
    LocationEstimator,
    RandomForestEstimator,
    WKNNEstimator,
    imputed_test_fingerprints,
)
from ..radiomap import RadioMap
from .config import ExperimentConfig


@lru_cache(maxsize=16)
def _cached_dataset(name: str, scale: float, seed: int, n_passes: int) -> Dataset:
    return make_dataset(name, scale=scale, seed=seed, n_passes=n_passes)


def _store_from_env() -> Optional[ArtifactStore]:
    """Disk store behind the trainer cache, read lazily on first use.

    Point ``REPRO_ARTIFACT_CACHE`` at a directory to also checkpoint
    trainers to disk and warm-start later runs; leave it unset for a
    purely in-memory cache.
    """
    root = os.environ.get("REPRO_ARTIFACT_CACHE")
    return ArtifactStore(root) if root else None


#: Process-wide cache wired into every BiSIM imputer the experiment
#: modules build.  Training is deterministic in (radio map, mask,
#: config), so figures that would fit bit-identical models reuse one
#: fitted trainer.
TRAINER_CACHE = BiSIMTrainerCache(store_factory=_store_from_env)


def get_dataset(name: str, config: ExperimentConfig) -> Dataset:
    """Cached dataset for a venue under the given preset."""
    return _cached_dataset(
        name, config.venue_scale, config.dataset_seed, config.n_passes
    )


# ----------------------------------------------------------------------
# Component factories
# ----------------------------------------------------------------------
DIFFERENTIATOR_NAMES = (
    "TopoAC",
    "DasaKM",
    "ElbowKM",
    "MAR-only",
    "MNAR-only",
)

IMPUTER_NAMES = (
    "CD",
    "LI",
    "SL",
    "MICE",
    "MF",
    "BRITS",
    "SSGAN",
    "D-BiSIM",
    "T-BiSIM",
)

ESTIMATOR_NAMES = ("KNN", "WKNN", "RF")


def make_differentiator(
    name: str, dataset: Dataset, config: ExperimentConfig, *, eta: float = 0.1
) -> Differentiator:
    if name == "TopoAC":
        return TopoACDifferentiator(
            entities=dataset.venue.plan.entities, eta=eta
        )
    if name == "DasaKM":
        return DasaKMDifferentiator(
            upper_bound=config.dasakm_upper_bound,
            proportions=config.dasakm_proportions,
            eta=eta,
        )
    if name == "ElbowKM":
        return ElbowKMDifferentiator(
            upper_bound=config.elbow_upper_bound, eta=eta
        )
    if name == "MAR-only":
        return MAROnlyDifferentiator()
    if name == "MNAR-only":
        return MNAROnlyDifferentiator()
    raise ExperimentError(f"unknown differentiator {name!r}")


def make_imputer(
    name: str, dataset: Dataset, config: ExperimentConfig
) -> Imputer:
    """Build an imputer; ``D-BiSIM``/``T-BiSIM`` are plain BiSIM (their
    differentiator halves are wired by the caller)."""
    neural = dict(
        hidden_size=config.hidden_size,
        epochs=config.epochs,
        batch_size=config.batch_size,
    )
    if name == "CD":
        return CaseDeletionImputer()
    if name == "LI":
        return LinearInterpolationImputer()
    if name == "SL":
        return SemiSupervisedImputer()
    if name == "MICE":
        return MICEImputer()
    if name == "MF":
        return MatrixFactorizationImputer(
            n_iterations=config.mf_iterations
        )
    if name == "BRITS":
        return BRITSImputer(**neural)
    if name == "SSGAN":
        return SSGANImputer(**neural)
    if name in ("D-BiSIM", "T-BiSIM", "BiSIM"):
        return BiSIMImputer(
            config=BiSIMConfig(
                hidden_size=config.hidden_size,
                epochs=config.epochs,
                batch_size=config.batch_size,
            ),
            trainer_cache=TRAINER_CACHE,
        )
    raise ExperimentError(f"unknown imputer {name!r}")


def imputer_differentiator(name: str) -> str:
    """The differentiator half of a named imputer pipeline.

    D-BiSIM uses DasaKM, T-BiSIM uses TopoAC; every other imputer uses
    TopoAC's MAR results, which Section V-C says work best for them.
    """
    return "DasaKM" if name == "D-BiSIM" else "TopoAC"


def make_estimator(name: str) -> LocationEstimator:
    if name == "KNN":
        return KNNEstimator()
    if name == "WKNN":
        return WKNNEstimator()
    if name == "RF":
        return RandomForestEstimator()
    raise ExperimentError(f"unknown estimator {name!r}")


# ----------------------------------------------------------------------
# Control-variates evaluation
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """One (A, B) imputation scored under several estimators C."""

    ape: Dict[str, float]  # estimator name -> APE
    imputation_seconds: float


def run_pipeline_once(
    radio_map: RadioMap,
    differentiator: Differentiator,
    imputer: Imputer,
    estimator_names: Sequence[str],
    rng: np.random.Generator,
    *,
    test_fraction: float = 0.10,
    mask: Optional[np.ndarray] = None,
) -> RunResult:
    """One split → one differentiation → one imputation → C estimators.

    Imputing once and scoring every estimator on it implements the
    paper's method of control variates while keeping compute sane.
    """
    split = make_evaluation_split(radio_map, rng, test_fraction=test_fraction)
    if mask is None:
        mask = differentiator.differentiate(split.radio_map)
    result = run_imputer(imputer, split.radio_map, mask)

    kept = result.kept_indices
    test_set = set(split.test_indices.tolist())
    train_sel = np.array(
        [i for i, row in enumerate(kept) if row not in test_set], dtype=int
    )
    if train_sel.size == 0:
        raise ExperimentError("imputer left no training records")
    # The whole test set goes through the batched query path — the same
    # vectorized predict the serving layer uses, one call per estimator.
    test_fp = imputed_test_fingerprints(result, split)

    apes: Dict[str, float] = {}
    for est_name in estimator_names:
        estimator = make_estimator(est_name)
        estimator.fit(
            result.fingerprints[train_sel], result.rps[train_sel]
        )
        apes[est_name] = average_positioning_error(
            estimator.predict(test_fp, squeeze=False),
            split.test_locations,
        )
    return RunResult(
        ape=apes, imputation_seconds=result.elapsed_seconds
    )


def run_pipeline(
    radio_map: RadioMap,
    differentiator: Differentiator,
    imputer: Imputer,
    estimator_names: Sequence[str],
    config: ExperimentConfig,
) -> RunResult:
    """Average :func:`run_pipeline_once` over the preset's seeds."""
    per_seed: List[RunResult] = []
    for seed in config.seeds:
        per_seed.append(
            run_pipeline_once(
                radio_map,
                differentiator,
                imputer,
                estimator_names,
                np.random.default_rng(seed),
                test_fraction=config.test_fraction,
            )
        )
    apes = {
        name: float(np.mean([r.ape[name] for r in per_seed]))
        for name in estimator_names
    }
    return RunResult(
        ape=apes,
        imputation_seconds=float(
            np.mean([r.imputation_seconds for r in per_seed])
        ),
    )
