"""Figs. 6-7: DasaKM's abnormal clusters and TopoAC's fix.

Fig. 6 shows DasaKM clusters whose RPs scatter across rooms (their
convex hulls contain walls); Fig. 7 shows TopoAC producing only
clusters that span open areas.  We report, for both algorithms, how
many final clusters' hulls contain topological entities — TopoAC's
count is zero by construction for every multi-sample cluster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster import kmeans
from ..core import (
    DasaKMDifferentiator,
    TopoACDifferentiator,
    build_cluster_samples,
    entity_exist,
)
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .runner import get_dataset

VENUES = ("kaide", "wanda")


def _count_abnormal(clusters, locations, entities) -> int:
    count = 0
    for members in clusters:
        members = np.asarray(members)
        if members.size < 2:
            continue
        if entity_exist(locations[members], entities):
            count += 1
    return count


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = config or default_config()
    lines = ["Clusters whose convex hull contains walls/obstacles"]
    data = {}
    for venue in VENUES:
        ds = get_dataset(venue, config)
        entities = ds.venue.plan.entities
        samples = build_cluster_samples(ds.radio_map)

        dasa = DasaKMDifferentiator(
            upper_bound=config.dasakm_upper_bound,
            proportions=config.dasakm_proportions,
        )
        dasa.differentiate(ds.radio_map)
        km = kmeans(
            samples.samples,
            max(dasa.selected_k_ or 1, 1),
            np.random.default_rng(0),
        )
        dasa_abnormal = _count_abnormal(
            km.clusters(), samples.locations, entities
        )

        topo = TopoACDifferentiator(entities=entities)
        topo.differentiate(ds.radio_map)
        # Re-derive TopoAC's clusters for inspection.
        from ..cluster import constrained_agglomerative

        clusters = constrained_agglomerative(
            samples.samples,
            lambda idx: not entity_exist(samples.locations[idx], entities),
        )
        topo_abnormal = _count_abnormal(
            clusters, samples.locations, entities
        )
        lines.append(
            f"{venue:<8} DasaKM (K={dasa.selected_k_}): "
            f"{dasa_abnormal} abnormal clusters   "
            f"TopoAC ({len(clusters)} clusters): {topo_abnormal} abnormal"
        )
        data[venue] = {
            "dasakm_abnormal": dasa_abnormal,
            "topoac_abnormal": topo_abnormal,
            "topoac_clusters": len(clusters),
        }
    return ExperimentResult(
        experiment_id="Figs. 6-7", rendered="\n".join(lines), data=data
    )
