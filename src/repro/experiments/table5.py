"""Table V: statistics of venues and created radio maps."""

from __future__ import annotations

from typing import Optional

from ..radiomap import compute_stats
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .runner import get_dataset

VENUES = ("kaide", "wanda", "longhu")


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = config or default_config()
    lines = []
    data = {}
    for venue in VENUES:
        ds = get_dataset(venue, config)
        stats = compute_stats(ds.venue, ds.radio_map)
        lines.append(stats.as_row())
        data[venue] = stats
    rendered = "Statistics of venues and created radio maps\n" + "\n".join(
        lines
    )
    return ExperimentResult(
        experiment_id="Table V", rendered=rendered, data=data
    )
