"""Common experiment-result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass
class ExperimentResult:
    """Output of one table/figure reproduction.

    Attributes
    ----------
    experiment_id:
        The paper's table/figure id (e.g. ``"Table VI"``).
    rendered:
        Text rendering matching the paper's rows/series.
    data:
        Raw numbers for programmatic assertions in tests/benches.
    """

    experiment_id: str
    rendered: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.experiment_id} ==\n{self.rendered}"
