"""Extra ablation (beyond the paper): bidirectionality and cross loss.

DESIGN.md calls out the bidirectional architecture + cross loss as a
design choice worth ablating: forward-only vs bidirectional without the
cross term vs the full model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bisim import BiSIMConfig, BiSIMImputer
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import (
    TRAINER_CACHE,
    get_dataset,
    make_differentiator,
    run_pipeline,
)

#: label -> (bidirectional, cross_loss)
VARIANTS: Dict[str, Tuple[bool, bool]] = {
    "Bidirectional + cross loss": (True, True),
    "Bidirectional, no cross loss": (True, False),
    "Forward only": (False, False),
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide",),
) -> ExperimentResult:
    config = config or default_config()
    rows: Dict[str, List[float]] = {label: [] for label in VARIANTS}
    for venue in venues:
        ds = get_dataset(venue, config)
        differentiator = make_differentiator("TopoAC", ds, config)
        for label, (bidir, cross) in VARIANTS.items():
            imputer = BiSIMImputer(
                config=BiSIMConfig(
                    hidden_size=config.hidden_size,
                    epochs=config.epochs,
                    batch_size=config.batch_size,
                    bidirectional=bidir,
                    cross_loss=cross,
                ),
                trainer_cache=TRAINER_CACHE,
            )
            result = run_pipeline(
                ds.radio_map, differentiator, imputer, ("WKNN",), config
            )
            rows[label].append(result.ape["WKNN"])
    rendered = render_table(
        "Bidirectionality ablation (T-BiSIM APE)",
        list(venues),
        rows,
        unit="meter",
    )
    return ExperimentResult(
        experiment_id="Ablation (bidirectional)",
        rendered=rendered,
        data={v: {k: rows[k][i] for k in rows} for i, v in enumerate(venues)},
    )
