"""Experiment configuration and quick/full presets.

The paper trains on a GPU (500 epochs, 671-929 APs).  The default
``quick`` preset keeps every protocol identical but shrinks the venues,
epochs and seed counts so the whole suite runs on a laptop in minutes;
``full`` pushes the sizes up for overnight runs.  Select via the
``REPRO_EXPERIMENT_PRESET`` environment variable or explicitly in code.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Tuple

from ..exceptions import ExperimentError


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for every experiment module.

    Attributes
    ----------
    venue_scale:
        Linear venue shrink factor for the synthetic datasets.
    n_passes:
        Survey coverage repetitions (controls record counts).
    epochs / hidden_size:
        Neural-imputer training budget.
    seeds:
        Evaluation seeds; results are averaged over them.
    dasakm_upper_bound / dasakm_proportions:
        DasaKM's K search budget (paper: U=200, Γ=1..20).
    """

    name: str = "quick"
    venue_scale: float = 0.4
    n_passes: int = 3
    epochs: int = 40
    hidden_size: int = 48
    batch_size: int = 32
    seeds: Tuple[int, ...] = (42, 43)
    dataset_seed: int = 5
    dasakm_upper_bound: int = 12
    dasakm_proportions: Tuple[float, ...] = (1, 2, 4)
    elbow_upper_bound: int = 20
    mf_iterations: int = 20
    test_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not 0 < self.venue_scale <= 1:
            raise ExperimentError("venue_scale must be in (0, 1]")
        if not self.seeds:
            raise ExperimentError("need at least one seed")


PRESETS = {
    "smoke": ExperimentConfig(
        name="smoke",
        venue_scale=0.28,
        n_passes=2,
        epochs=8,
        hidden_size=24,
        seeds=(42,),
        dasakm_upper_bound=6,
        dasakm_proportions=(1, 4),
        elbow_upper_bound=8,
        mf_iterations=8,
    ),
    "bench": ExperimentConfig(
        name="bench",
        venue_scale=0.4,
        n_passes=3,
        epochs=40,
        hidden_size=48,
        seeds=(42,),
        dasakm_upper_bound=8,
        dasakm_proportions=(1, 4),
        elbow_upper_bound=10,
        mf_iterations=12,
    ),
    "quick": ExperimentConfig(name="quick"),
    "full": ExperimentConfig(
        name="full",
        venue_scale=0.7,
        n_passes=5,
        epochs=150,
        hidden_size=64,
        seeds=(42, 43, 44, 45, 46),
        dasakm_upper_bound=40,
        dasakm_proportions=(1, 2, 4, 8, 16),
        elbow_upper_bound=60,
        mf_iterations=40,
    ),
}


def default_config() -> ExperimentConfig:
    """Preset selected by ``REPRO_EXPERIMENT_PRESET`` (default quick)."""
    name = os.environ.get("REPRO_EXPERIMENT_PRESET", "quick")
    if name not in PRESETS:
        raise ExperimentError(
            f"unknown preset {name!r}; options: {sorted(PRESETS)}"
        )
    return PRESETS[name]
