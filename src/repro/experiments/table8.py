"""Table VIII: APE on the Bluetooth venue (Longhu).

Generalisability check: the same nine imputers and three estimators on
Bluetooth fingerprints.  Expected shape: *-BiSIM keeps a clear lead.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .runner import ESTIMATOR_NAMES, IMPUTER_NAMES
from .table6 import run as run_table6


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    imputers: Sequence[str] = IMPUTER_NAMES,
    estimators: Sequence[str] = ESTIMATOR_NAMES,
) -> ExperimentResult:
    config = config or default_config()
    result = run_table6(
        config,
        venues=("longhu",),
        imputers=imputers,
        estimators=estimators,
    )
    return ExperimentResult(
        experiment_id="Table VIII",
        rendered=result.rendered.replace(
            "[longhu] overall APE", "[longhu / Bluetooth] APE"
        ),
        data=result.data,
    )
