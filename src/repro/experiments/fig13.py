"""Fig. 13: fraction threshold η vs APE for the differentiators.

η = 0 makes every differentiator behave like MAR-only; large η pushes
them towards MNAR-only.  The paper finds η = 0.1 the sweet spot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_series
from .runner import get_dataset, make_differentiator, make_imputer, run_pipeline

DIFFERENTIATORS = ("TopoAC", "DasaKM", "ElbowKM", "MAR-only", "MNAR-only")
ETAS = (0.0, 0.1, 0.2, 0.3)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    etas: Sequence[float] = ETAS,
    differentiators: Sequence[str] = DIFFERENTIATORS,
) -> ExperimentResult:
    config = config or default_config()
    sections: List[str] = []
    data: Dict[str, Dict[str, List[float]]] = {}
    for venue in venues:
        ds = get_dataset(venue, config)
        series: Dict[str, List[float]] = {d: [] for d in differentiators}
        for eta in etas:
            for diff_name in differentiators:
                differentiator = make_differentiator(
                    diff_name, ds, config, eta=eta
                )
                imputer = make_imputer("BiSIM", ds, config)
                result = run_pipeline(
                    ds.radio_map,
                    differentiator,
                    imputer,
                    ("WKNN",),
                    config,
                )
                series[diff_name].append(result.ape["WKNN"])
        sections.append(
            render_series(
                f"[{venue}] threshold eta vs APE",
                "eta",
                list(etas),
                series,
                unit="meter",
            )
        )
        data[venue] = series
    return ExperimentResult(
        experiment_id="Fig. 13",
        rendered="\n\n".join(sections),
        data=data,
    )
