"""Fig. 15: removal ratio β vs RP Euclidean distance error.

Same protocol as Fig. 14 but removing observed RP labels instead of
RSSIs and scoring the Euclidean distance between imputed and held-back
RPs.  CD/BRITS/SSGAN are excluded (no RP imputation of their own);
expected shape: *-BiSIM best, robust to β.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..imputers import fill_mnars
from ..metrics import rp_euclidean_error
from ..radiomap import remove_for_imputation_eval
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_series
from .runner import (
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_imputer,
)

IMPUTERS = ("T-BiSIM", "D-BiSIM", "LI", "SL", "MICE", "MF")
BETAS = (0.10, 0.20, 0.30, 0.40, 0.50)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    imputers: Sequence[str] = IMPUTERS,
    betas: Sequence[float] = BETAS,
) -> ExperimentResult:
    config = config or default_config()
    sections: List[str] = []
    data: Dict[str, Dict[str, List[float]]] = {}
    for venue in venues:
        ds = get_dataset(venue, config)
        series: Dict[str, List[float]] = {name: [] for name in imputers}
        masks = {}
        for beta in betas:
            for imp_name in imputers:
                diff_name = imputer_differentiator(imp_name)
                if diff_name not in masks:
                    masks[diff_name] = make_differentiator(
                        diff_name, ds, config
                    ).differentiate(ds.radio_map)
                filled, amended = fill_mnars(
                    ds.radio_map, masks[diff_name]
                )
                errors = []
                for seed in config.seeds:
                    perturbed, removed = remove_for_imputation_eval(
                        filled,
                        beta,
                        np.random.default_rng(seed),
                        remove_rssis=False,
                    )
                    imputer = make_imputer(imp_name, ds, config)
                    result = imputer.impute(perturbed, amended)
                    # Map removed rows through kept_indices (CD-safe,
                    # though CD is not in this figure).
                    errors.append(
                        rp_euclidean_error(result.rps, removed)
                    )
                series[imp_name].append(float(np.mean(errors)))
        sections.append(
            render_series(
                f"[{venue}] removal ratio beta vs RP Euclidean distance",
                "beta",
                list(betas),
                series,
                unit="meter",
            )
        )
        data[venue] = series
    return ExperimentResult(
        experiment_id="Fig. 15",
        rendered="\n\n".join(sections),
        data=data,
    )
