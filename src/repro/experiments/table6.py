"""Table VI: overall APE — 9 imputers × 3 estimators × 2 venues.

Expected shape: *-BiSIM best and second best everywhere; neural >
traditional and autocorrelation imputers; WKNN the strongest estimator
in most cells; T-BiSIM ≥ D-BiSIM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import (
    ESTIMATOR_NAMES,
    IMPUTER_NAMES,
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_imputer,
    run_pipeline,
)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    imputers: Sequence[str] = IMPUTER_NAMES,
    estimators: Sequence[str] = ESTIMATOR_NAMES,
) -> ExperimentResult:
    config = config or default_config()
    sections: List[str] = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    times: Dict[str, Dict[str, float]] = {}
    for venue in venues:
        ds = get_dataset(venue, config)
        rows: Dict[str, List[float]] = {}
        data[venue] = {}
        times[venue] = {}
        for imp_name in imputers:
            differentiator = make_differentiator(
                imputer_differentiator(imp_name), ds, config
            )
            imputer = make_imputer(imp_name, ds, config)
            result = run_pipeline(
                ds.radio_map, differentiator, imputer, estimators, config
            )
            rows[imp_name] = [result.ape[e] for e in estimators]
            data[venue][imp_name] = dict(result.ape)
            times[venue][imp_name] = result.imputation_seconds
        sections.append(
            render_table(
                f"[{venue}] overall APE",
                list(estimators),
                rows,
                unit="meter",
            )
        )
    return ExperimentResult(
        experiment_id="Table VI",
        rendered="\n\n".join(sections),
        data={"ape": data, "times": times},
    )
