"""Fig. 17: attention ablation on T-BiSIM.

Adapted (sparsity-friendly) Bahdanau vs vanilla Bahdanau vs no
attention.  Expected ordering: adapted < vanilla < none (APE).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..bisim import BiSIMConfig, BiSIMImputer
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import (
    TRAINER_CACHE,
    get_dataset,
    make_differentiator,
    run_pipeline,
)

VARIANTS = {
    "Adapted Bahdanau": "sparsity",
    "Bahdanau": "vanilla",
    "No Attention": "none",
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
) -> ExperimentResult:
    config = config or default_config()
    rows: Dict[str, List[float]] = {label: [] for label in VARIANTS}
    for venue in venues:
        ds = get_dataset(venue, config)
        differentiator = make_differentiator("TopoAC", ds, config)
        mask = differentiator.differentiate(ds.radio_map)
        for label, kind in VARIANTS.items():
            imputer = BiSIMImputer(
                config=BiSIMConfig(
                    hidden_size=config.hidden_size,
                    epochs=config.epochs,
                    batch_size=config.batch_size,
                    attention=kind,
                ),
                trainer_cache=TRAINER_CACHE,
            )
            result = run_pipeline(
                ds.radio_map, differentiator, imputer, ("WKNN",), config
            )
            rows[label].append(result.ape["WKNN"])
    rendered = render_table(
        "Attention ablation (T-BiSIM APE)",
        list(venues),
        rows,
        unit="meter",
    )
    return ExperimentResult(
        experiment_id="Fig. 17",
        rendered=rendered,
        data={v: {k: rows[k][i] for k in rows} for i, v in enumerate(venues)},
    )
