"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(config) -> ExperimentResult``; the rendered
text matches the paper's rows/series.  See DESIGN.md's per-experiment
index for the mapping.
"""

from . import (
    ablation_bidir,
    fig5,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig67,
    marshare,
    table5,
    table6,
    table7,
    table8,
)
from .base import ExperimentResult
from .config import PRESETS, ExperimentConfig, default_config
from .runner import (
    DIFFERENTIATOR_NAMES,
    ESTIMATOR_NAMES,
    IMPUTER_NAMES,
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_estimator,
    make_imputer,
    run_pipeline,
    run_pipeline_once,
)

__all__ = [
    "DIFFERENTIATOR_NAMES",
    "ESTIMATOR_NAMES",
    "ExperimentConfig",
    "ExperimentResult",
    "IMPUTER_NAMES",
    "PRESETS",
    "ablation_bidir",
    "default_config",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig5",
    "fig67",
    "get_dataset",
    "imputer_differentiator",
    "make_differentiator",
    "make_estimator",
    "make_imputer",
    "marshare",
    "run_pipeline",
    "run_pipeline_once",
    "table5",
    "table6",
    "table7",
    "table8",
]
