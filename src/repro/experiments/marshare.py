"""Section V-B text result: the MAR share of all missing RSSIs.

The paper reports TopoAC's differentiation classifying 10.12 % of
Kaide's and 7.06 % of Wanda's missing RSSIs as MARs.  With synthetic
data we can additionally score the differentiation against the
channel's true missing types — something the paper could not do.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..constants import MASK_MAR, MASK_OBSERVED
from ..metrics import differentiation_accuracy
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .runner import get_dataset, make_differentiator

VENUES = ("kaide", "wanda")


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = config or default_config()
    lines = ["TopoAC differentiation: MAR share of missing RSSIs"]
    data = {}
    for venue in VENUES:
        ds = get_dataset(venue, config)
        topo = make_differentiator("TopoAC", ds, config)
        mask = topo.differentiate(ds.radio_map)
        missing = mask != MASK_OBSERVED
        mar_share = float((mask[missing] == MASK_MAR).mean())
        entry = {"mar_share": mar_share}
        line = f"{venue:<8} MAR share = {100 * mar_share:5.2f}%"
        truth = ds.radio_map.truth
        if truth is not None and truth.missing_type is not None:
            sel = missing & (truth.missing_type != 1)
            da = differentiation_accuracy(
                truth.missing_type[sel], mask[sel]
            )
            true_share = float(
                (truth.missing_type[sel] == 0).mean()
            )
            entry["da_vs_truth"] = da
            entry["true_mar_share"] = true_share
            line += (
                f"   (true MAR share = {100 * true_share:5.2f}%, "
                f"DA vs channel truth = {da:.3f})"
            )
        lines.append(line)
        data[venue] = entry
    return ExperimentResult(
        experiment_id="Section V-B (MAR share)",
        rendered="\n".join(lines),
        data=data,
    )
