"""Table VII: data-imputation time cost per imputer.

Expected shape: LI/SL cheapest; MICE/MF slower (iterative matrix
passes, MF slowest among them); the neural imputers in between to
above, with SSGAN the slowest neural model (alternating GAN updates)
and *-BiSIM slightly above BRITS (it trains a decoder and attention on
top of the same encoder).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..imputers import run_imputer
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import (
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_imputer,
)

IMPUTERS = ("LI", "SL", "MICE", "MF", "BRITS", "SSGAN", "D-BiSIM", "T-BiSIM")


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    imputers: Sequence[str] = IMPUTERS,
) -> ExperimentResult:
    config = config or default_config()
    rows: Dict[str, List[float]] = {name: [] for name in imputers}
    for venue in venues:
        ds = get_dataset(venue, config)
        masks = {}
        for imp_name in imputers:
            diff_name = imputer_differentiator(imp_name)
            if diff_name not in masks:
                differentiator = make_differentiator(
                    diff_name, ds, config
                )
                masks[diff_name] = differentiator.differentiate(
                    ds.radio_map
                )
            imputer = make_imputer(imp_name, ds, config)
            start = time.perf_counter()
            run_imputer(imputer, ds.radio_map, masks[diff_name])
            rows[imp_name].append(time.perf_counter() - start)
    rendered = render_table(
        "Data imputation time cost",
        list(venues),
        rows,
        unit="seconds",
        fmt="{:8.3f}",
    )
    return ExperimentResult(
        experiment_id="Table VII",
        rendered=rendered,
        data={v: {k: rows[k][i] for k in rows} for i, v in enumerate(venues)},
    )
