"""Text rendering of experiment outputs in the paper's table shapes."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    title: str,
    col_names: Sequence[str],
    rows: Dict[str, Sequence[float]],
    *,
    unit: str = "",
    fmt: str = "{:8.2f}",
) -> str:
    """Render a labelled numeric table.

    Parameters
    ----------
    rows:
        Mapping from row label to one value per column.
    """
    width = max((len(r) for r in rows), default=8)
    width = max(width, 10)
    lines = [title + (f" (unit: {unit})" if unit else "")]
    header = " " * width + "".join(f"{c:>10}" for c in col_names)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = "".join(
            f"{fmt.format(v):>10}" if v == v else f"{'n/a':>10}"
            for v in values
        )
        lines.append(f"{label:<{width}}{cells}")
    return "\n".join(lines)


def render_series(
    title: str,
    x_name: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    unit: str = "",
) -> str:
    """Render figure-style series (one row per x value)."""
    labels = list(series)
    lines = [title + (f" (unit: {unit})" if unit else "")]
    header = f"{x_name:>12}" + "".join(f"{s:>12}" for s in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_values):
        cells = "".join(f"{series[s][i]:>12.2f}" for s in labels)
        lines.append(f"{x:>12}" + cells)
    return "\n".join(lines)


def render_ranking_check(
    description: str, ordered_labels: List[str], values: Dict[str, float]
) -> str:
    """State whether measured values respect an expected ordering."""
    actual = sorted(values, key=values.get)
    ok = actual == ordered_labels
    lines = [
        f"expected ordering: {' < '.join(ordered_labels)}",
        f"measured ordering: {' < '.join(actual)}",
        f"{description}: {'HOLDS' if ok else 'DIFFERS'}",
    ]
    return "\n".join(lines)
