"""Fig. 12: removal ratio α vs APE for five differentiators.

Protocol (Section V-B): randomly nullify a fraction α of the observed
RSSIs, differentiate with each method, impute with BiSIM, estimate with
WKNN, report APE.  Expected shape: all methods degrade with α; the
three differentiators beat MAR-only which beats MNAR-only; ElbowKM
trails DasaKM and TopoAC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..radiomap import remove_rssi_fraction
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_series
from .runner import get_dataset, make_differentiator, make_imputer, run_pipeline

DIFFERENTIATORS = ("TopoAC", "DasaKM", "ElbowKM", "MAR-only", "MNAR-only")
ALPHAS = (0.0, 0.05, 0.10, 0.15, 0.20)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    alphas: Sequence[float] = ALPHAS,
    differentiators: Sequence[str] = DIFFERENTIATORS,
) -> ExperimentResult:
    config = config or default_config()
    sections: List[str] = []
    data: Dict[str, Dict[str, List[float]]] = {}
    for venue in venues:
        ds = get_dataset(venue, config)
        series: Dict[str, List[float]] = {d: [] for d in differentiators}
        for alpha in alphas:
            perturbed = remove_rssi_fraction(
                ds.radio_map,
                alpha,
                np.random.default_rng(config.dataset_seed + 70),
            )
            for diff_name in differentiators:
                differentiator = make_differentiator(
                    diff_name, ds, config
                )
                imputer = make_imputer("BiSIM", ds, config)
                result = run_pipeline(
                    perturbed,
                    differentiator,
                    imputer,
                    ("WKNN",),
                    config,
                )
                series[diff_name].append(result.ape["WKNN"])
        sections.append(
            render_series(
                f"[{venue}] removal ratio alpha vs APE",
                "alpha",
                list(alphas),
                series,
                unit="meter",
            )
        )
        data[venue] = series
    return ExperimentResult(
        experiment_id="Fig. 12",
        rendered="\n\n".join(sections),
        data=data,
    )
