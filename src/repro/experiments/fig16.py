"""Fig. 16: RP density vs APE for T-BiSIM.

RP records are dropped from the *raw survey tables* so only
{60..100} % remain, the radio map is re-created, and the full T-BiSIM
pipeline is evaluated.  Expected shape: APE improves monotonically-ish
with density, and Kaide (denser RPs) stays below Wanda.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..radiomap import create_radio_map, scale_rp_density
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_series
from .runner import (
    get_dataset,
    make_differentiator,
    make_imputer,
    run_pipeline,
)

DENSITIES = (0.6, 0.7, 0.8, 0.9, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    densities: Sequence[float] = DENSITIES,
) -> ExperimentResult:
    config = config or default_config()
    series: Dict[str, List[float]] = {v: [] for v in venues}
    for venue in venues:
        ds = get_dataset(venue, config)
        for density in densities:
            tables = scale_rp_density(
                ds.survey_tables,
                density,
                np.random.default_rng(config.dataset_seed + 90),
            )
            radio_map = create_radio_map(tables)
            differentiator = make_differentiator("TopoAC", ds, config)
            imputer = make_imputer("T-BiSIM", ds, config)
            result = run_pipeline(
                radio_map, differentiator, imputer, ("WKNN",), config
            )
            series[venue].append(result.ape["WKNN"])
    rendered = render_series(
        "T-BiSIM APE vs RP density",
        "density",
        list(densities),
        series,
        unit="meter",
    )
    return ExperimentResult(
        experiment_id="Fig. 16", rendered=rendered, data=series
    )
