"""Fig. 18: time-lag ablation on T-BiSIM.

Where should the temporal-decay mechanism apply?  The paper's design —
encoder only — wins; adding it to the decoder hurts generalisation and
no time-lag at all is worst.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..bisim import BiSIMConfig, BiSIMImputer
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_table
from .runner import (
    TRAINER_CACHE,
    get_dataset,
    make_differentiator,
    run_pipeline,
)

#: label -> (time_lag_encoder, time_lag_decoder)
VARIANTS: Dict[str, Tuple[bool, bool]] = {
    "Time-lag in Enc.": (True, False),
    "Time-lag in Enc. and Dec.": (True, True),
    "Time-lag in Dec.": (False, True),
    "No Time-lag": (False, False),
}


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
) -> ExperimentResult:
    config = config or default_config()
    rows: Dict[str, List[float]] = {label: [] for label in VARIANTS}
    for venue in venues:
        ds = get_dataset(venue, config)
        differentiator = make_differentiator("TopoAC", ds, config)
        for label, (enc, dec) in VARIANTS.items():
            imputer = BiSIMImputer(
                config=BiSIMConfig(
                    hidden_size=config.hidden_size,
                    epochs=config.epochs,
                    batch_size=config.batch_size,
                    time_lag_encoder=enc,
                    time_lag_decoder=dec,
                ),
                trainer_cache=TRAINER_CACHE,
            )
            result = run_pipeline(
                ds.radio_map, differentiator, imputer, ("WKNN",), config
            )
            rows[label].append(result.ape["WKNN"])
    rendered = render_table(
        "Time-lag ablation (T-BiSIM APE)",
        list(venues),
        rows,
        unit="meter",
    )
    return ExperimentResult(
        experiment_id="Fig. 18",
        rendered=rendered,
        data={v: {k: rows[k][i] for k in rows} for i, v in enumerate(venues)},
    )
