"""Fig. 5: AP-profile clusters are spatially local.

The paper's exploratory analysis clusters binarised AP profiles with
K-means and observes that same-cluster RPs are spatially close — the
hypothesis the whole differentiator rests on.  Without a plotting
backend we report the quantitative equivalent: the mean intra-cluster
pairwise distance of the K-means clusters versus the same statistic for
a random partition of equal cluster sizes.  The hypothesis holds when
the cluster value is clearly below the random baseline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster import kmeans
from ..core import build_cluster_samples
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .runner import get_dataset

VENUES = ("kaide", "wanda")


def _mean_intra_cluster_distance(
    locations: np.ndarray, labels: np.ndarray
) -> float:
    dists = []
    for c in np.unique(labels):
        pts = locations[labels == c]
        if pts.shape[0] < 2:
            continue
        diffs = pts[:, None, :] - pts[None, :, :]
        d = np.linalg.norm(diffs, axis=2)
        iu = np.triu_indices(pts.shape[0], k=1)
        dists.append(d[iu].mean())
    return float(np.mean(dists)) if dists else 0.0


def run(config: Optional[ExperimentConfig] = None) -> ExperimentResult:
    config = config or default_config()
    rng = np.random.default_rng(config.dataset_seed)
    lines = ["Spatial locality of AP-profile clusters (K-means, K=8)"]
    data = {}
    for venue in VENUES:
        ds = get_dataset(venue, config)
        samples = build_cluster_samples(ds.radio_map)
        k = min(8, samples.samples.shape[0])
        result = kmeans(samples.profiles, k, rng)
        intra = _mean_intra_cluster_distance(
            samples.locations, result.labels
        )
        random_labels = rng.permutation(result.labels)
        baseline = _mean_intra_cluster_distance(
            samples.locations, random_labels
        )
        ratio = intra / baseline if baseline > 0 else float("nan")
        lines.append(
            f"{venue:<8} intra-cluster dist={intra:6.2f} m   "
            f"random-partition dist={baseline:6.2f} m   "
            f"ratio={ratio:5.2f}  "
            f"({'LOCAL' if ratio < 0.9 else 'NOT LOCAL'})"
        )
        data[venue] = {
            "intra": intra,
            "random": baseline,
            "ratio": ratio,
        }
    return ExperimentResult(
        experiment_id="Fig. 5", rendered="\n".join(lines), data=data
    )
