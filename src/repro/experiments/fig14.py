"""Fig. 14: removal ratio β vs fingerprint MAE.

Protocol (Section V-C): after MNARs are filled with -100 dBm, remove a
fraction β of the (now dense-ish) RSSIs, impute, and score MAE on the
held-back values.  Traditional imputers are excluded (they fill -100 by
default); expected shape: T-BiSIM and D-BiSIM best/second-best, MICE
and MF degrading fastest with β.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..imputers import fill_mnars
from ..metrics import fingerprint_mae
from ..radiomap import remove_for_imputation_eval
from .base import ExperimentResult
from .config import ExperimentConfig, default_config
from .reporting import render_series
from .runner import (
    get_dataset,
    imputer_differentiator,
    make_differentiator,
    make_imputer,
)

IMPUTERS = ("T-BiSIM", "D-BiSIM", "SSGAN", "BRITS", "MF", "MICE")
BETAS = (0.10, 0.20, 0.30, 0.40, 0.50)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    venues: Sequence[str] = ("kaide", "wanda"),
    imputers: Sequence[str] = IMPUTERS,
    betas: Sequence[float] = BETAS,
) -> ExperimentResult:
    config = config or default_config()
    sections: List[str] = []
    data: Dict[str, Dict[str, List[float]]] = {}
    for venue in venues:
        ds = get_dataset(venue, config)
        series: Dict[str, List[float]] = {name: [] for name in imputers}
        masks = {}
        for beta in betas:
            for imp_name in imputers:
                diff_name = imputer_differentiator(imp_name)
                if diff_name not in masks:
                    masks[diff_name] = make_differentiator(
                        diff_name, ds, config
                    ).differentiate(ds.radio_map)
                filled, amended = fill_mnars(
                    ds.radio_map, masks[diff_name]
                )
                maes = []
                for seed in config.seeds:
                    perturbed, removed = remove_for_imputation_eval(
                        filled,
                        beta,
                        np.random.default_rng(seed),
                        remove_rps=False,
                    )
                    pert_mask = amended.copy()
                    idx = removed.rssi_indices
                    pert_mask[idx[:, 0], idx[:, 1]] = 0
                    imputer = make_imputer(imp_name, ds, config)
                    result = imputer.impute(perturbed, pert_mask)
                    maes.append(
                        fingerprint_mae(result.fingerprints, removed)
                    )
                series[imp_name].append(float(np.mean(maes)))
        sections.append(
            render_series(
                f"[{venue}] removal ratio beta vs MAE",
                "beta",
                list(betas),
                series,
                unit="dBm",
            )
        )
        data[venue] = series
    return ExperimentResult(
        experiment_id="Fig. 14",
        rendered="\n\n".join(sections),
        data=data,
    )
