"""The positioning service: batched, cached, multi-venue serving.

Serving API
-----------
A deployment is a registry of :class:`VenueShard` objects, one per
venue/floor radio map.  Each shard owns the full online pipeline for
its map — differentiate (offline, at build time) → impute (online,
batched) → estimate (online, batched) — so routing a request is a
dictionary lookup and everything after it is vectorized.

:class:`PositioningService` accepts batches of *raw* online
fingerprints (NaN = unheard AP) tagged with venue keys, groups them by
shard, answers repeats from an LRU cache keyed on quantized
fingerprints, and keeps latency/throughput counters::

    service = PositioningService()
    service.deploy("kaide/f1", radio_map, differentiator)
    locations = service.query_batch(keys, fingerprints)  # (n, 2)
    print(service.stats.render())

Shards built with a :class:`~repro.bisim.BiSIMConfig` run the trained
BiSIM encoder over each query batch
(:meth:`~repro.bisim.OnlineImputer.impute_batch`); shards built
without one fall back to per-AP mean imputation, which keeps
deployment instant for venues that cannot afford training.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bisim import BiSIMConfig, OnlineImputer
from ..constants import MNAR_FILL
from ..core import Differentiator
from ..exceptions import ServingError
from ..imputers import fill_mnars
from ..positioning import LocationEstimator, WKNNEstimator
from ..radiomap import RadioMap


@dataclass
class ServiceStats:
    """Latency/throughput counters of one :class:`PositioningService`.

    ``seconds`` accumulates wall-clock time spent inside
    :meth:`PositioningService.query_batch`; ``per_venue`` counts
    queries routed to each shard.
    """

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    per_venue: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Served queries per second of service time."""
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"queries={self.queries} batches={self.batches} "
            f"throughput={self.throughput:.0f}/s "
            f"cache hit rate={100 * self.hit_rate:.0f}%",
        ]
        for venue in sorted(self.per_venue):
            lines.append(f"  {venue}: {self.per_venue[venue]} queries")
        return "\n".join(lines)


class VenueShard:
    """One venue's deployed pipeline: imputer + fitted estimator."""

    def __init__(
        self,
        key: str,
        n_aps: int,
        estimator: LocationEstimator,
        online_imputer: Optional[OnlineImputer] = None,
        fill_values: Optional[np.ndarray] = None,
    ):
        self.key = key
        self.n_aps = int(n_aps)
        self.estimator = estimator
        self.online_imputer = online_imputer
        self.fill_values = fill_values

    @classmethod
    def build(
        cls,
        key: str,
        radio_map: RadioMap,
        differentiator: Differentiator,
        *,
        estimator: Optional[LocationEstimator] = None,
        bisim_config: Optional[BiSIMConfig] = None,
    ) -> "VenueShard":
        """Run the offline half of the pipeline and fit the estimator.

        Differentiates the radio map, MNAR-fills it, then either trains
        a BiSIM (``bisim_config`` given) — whose encoder both imputes
        the map the estimator trains on and serves the online queries —
        or falls back to per-AP mean imputation for instant deploys.
        """
        estimator = estimator or WKNNEstimator()
        mask = differentiator.differentiate(radio_map)
        filled, amended = fill_mnars(radio_map, mask)
        observed = np.isfinite(filled.fingerprints)
        counts = observed.sum(axis=0)
        sums = np.where(observed, filled.fingerprints, 0.0).sum(axis=0)
        means = sums / np.maximum(counts, 1)
        fill_values = np.where(counts > 0, means, MNAR_FILL)

        if bisim_config is not None:
            online = OnlineImputer.fit(filled, amended, bisim_config)
            fp_complete, rps_complete = online.trainer.impute(
                filled, amended
            )
            estimator.fit(fp_complete, rps_complete)
            return cls(
                key, radio_map.n_aps, estimator, online, fill_values
            )

        train_fp = np.where(
            observed, filled.fingerprints, fill_values[None, :]
        )
        labelled = radio_map.rp_observed_mask
        if not labelled.any():
            raise ServingError(f"venue {key!r} has no labelled records")
        estimator.fit(train_fp[labelled], radio_map.rps[labelled])
        return cls(key, radio_map.n_aps, estimator, None, fill_values)

    def impute(self, queries: np.ndarray) -> np.ndarray:
        """Complete a ``(n, D)`` query batch (NaN = missing)."""
        if self.online_imputer is not None:
            return self.online_imputer.impute_batch(
                queries, squeeze=False
            )
        assert self.fill_values is not None
        return np.where(
            np.isfinite(queries), queries, self.fill_values[None, :]
        )

    def locate(self, queries: np.ndarray) -> np.ndarray:
        """Full online path: impute, then batched estimation → (n, 2)."""
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.n_aps:
            raise ServingError(
                f"venue {self.key!r} expects (n, {self.n_aps}) queries"
            )
        return self.estimator.predict(self.impute(queries), squeeze=False)


class PositioningService:
    """Routes mixed-venue fingerprint batches through venue shards.

    Parameters
    ----------
    cache_size:
        Maximum number of cached (venue, quantized fingerprint) →
        location entries; 0 disables caching.
    cache_quantum:
        RSSI quantization step (dBm) for cache keys — readings within
        the same quantum map to the same entry, which turns device
        re-scans into cache hits without measurably moving the
        estimate.
    """

    def __init__(
        self, *, cache_size: int = 4096, cache_quantum: float = 1.0
    ):
        if cache_quantum <= 0:
            raise ServingError("cache_quantum must be positive")
        self._shards: Dict[str, VenueShard] = {}
        self._cache: "OrderedDict[Tuple[str, bytes], np.ndarray]" = (
            OrderedDict()
        )
        self.cache_size = int(cache_size)
        self.cache_quantum = float(cache_quantum)
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Registry (sharding by venue/floor key)
    # ------------------------------------------------------------------
    @property
    def venues(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    def register(self, shard: VenueShard) -> VenueShard:
        if shard.key in self._shards:
            raise ServingError(f"venue {shard.key!r} already registered")
        self._shards[shard.key] = shard
        return shard

    def deploy(
        self,
        key: str,
        radio_map: RadioMap,
        differentiator: Differentiator,
        *,
        estimator: Optional[LocationEstimator] = None,
        bisim_config: Optional[BiSIMConfig] = None,
    ) -> VenueShard:
        """Build a shard from a raw radio map and register it."""
        return self.register(
            VenueShard.build(
                key,
                radio_map,
                differentiator,
                estimator=estimator,
                bisim_config=bisim_config,
            )
        )

    def shard(self, key: str) -> VenueShard:
        try:
            return self._shards[key]
        except KeyError:
            raise ServingError(
                f"unknown venue {key!r}; deployed: {list(self.venues)}"
            ) from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, venue: str, fingerprint: np.ndarray) -> np.ndarray:
        """Locate one raw online fingerprint → ``(2,)``."""
        fp = np.asarray(fingerprint, dtype=float)
        return self.query_batch([venue], fp[None, :])[0]

    def query_batch(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Locate a batch of raw fingerprints → ``(n, 2)``.

        ``venues[i]`` names the shard for ``fingerprints[i]``; rows may
        mix venues freely (and venues may differ in AP count, so the
        batch is a sequence of ``(D_venue,)`` vectors — a uniform
        ``(n, D)`` array works when all rows share a venue).  Cache
        hits are answered immediately; misses are grouped per venue and
        go through each shard's batched impute→estimate path in one
        call.
        """
        start = time.perf_counter()
        n = len(venues)
        if n != len(fingerprints):
            raise ServingError("venues/fingerprints length mismatch")
        # Validate every row before touching stats or the cache, so a
        # bad row cannot leave the counters half-updated.
        rows_fp: List[np.ndarray] = []
        for venue, fingerprint in zip(venues, fingerprints):
            shard = self.shard(venue)
            fp = np.asarray(fingerprint, dtype=float)
            if fp.shape != (shard.n_aps,):
                raise ServingError(
                    f"venue {venue!r} expects ({shard.n_aps},) "
                    "fingerprints"
                )
            rows_fp.append(fp)

        out = np.empty((n, 2))
        keys: List[Optional[Tuple[str, bytes]]] = [None] * n
        misses: Dict[str, List[int]] = {}
        for i, venue in enumerate(venues):
            self.stats.per_venue[venue] = (
                self.stats.per_venue.get(venue, 0) + 1
            )
            if self.cache_size:
                key = self._cache_key(venue, rows_fp[i])
                keys[i] = key
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    out[i] = cached
                    continue
                self.stats.cache_misses += 1
            misses.setdefault(venue, []).append(i)

        for venue, rows in misses.items():
            batch = np.stack([rows_fp[i] for i in rows])
            located = self._shards[venue].locate(batch)
            for i, loc in zip(rows, located):
                out[i] = loc
                self._cache_put(keys[i], loc)

        self.stats.queries += n
        self.stats.batches += 1
        self.stats.seconds += time.perf_counter() - start
        return out

    def reset_stats(self) -> None:
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # LRU cache on quantized fingerprints
    # ------------------------------------------------------------------
    def _cache_key(
        self, venue: str, fingerprint: np.ndarray
    ) -> Tuple[str, bytes]:
        fp = np.asarray(fingerprint, dtype=float)
        quantized = np.round(fp / self.cache_quantum)
        # Missing readings get a sentinel far outside the RSSI range so
        # the observability pattern is part of the key; clipping keeps
        # tiny quanta from wrapping the integer cast into collisions.
        quantized = np.where(np.isfinite(quantized), quantized, 1e9)
        quantized = np.clip(quantized, -(2**31) + 1, 2**31 - 1)
        return venue, quantized.astype(np.int32).tobytes()

    def _cache_put(
        self, key: Optional[Tuple[str, bytes]], location: np.ndarray
    ) -> None:
        if not self.cache_size or key is None:
            return
        self._cache[key] = location.copy()
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
