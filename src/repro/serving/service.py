"""The positioning service: batched, cached, multi-venue serving.

Serving API
-----------
A deployment is a registry of :class:`VenueShard` objects, one per
venue/floor radio map.  Each shard owns the full online pipeline for
its map — differentiate (offline, at build time) → impute (online,
batched) → estimate (online, batched) — so routing a request is a
dictionary lookup and everything after it is vectorized.

:class:`PositioningService` accepts batches of *raw* online
fingerprints (NaN = unheard AP) tagged with venue keys, groups them by
shard, answers repeats from an LRU cache keyed on quantized
fingerprints, and keeps latency/throughput counters::

    service = PositioningService()
    service.deploy("kaide/f1", radio_map, differentiator)
    locations = service.query_batch(keys, fingerprints)  # (n, 2)
    print(service.stats.render())

Shards built with a :class:`~repro.bisim.BiSIMConfig` run the trained
BiSIM encoder over each query batch
(:meth:`~repro.bisim.OnlineImputer.impute_batch`); shards built
without one fall back to per-AP mean imputation, which keeps
deployment instant for venues that cannot afford training.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..artifacts import (
    Artifact,
    load_artifact,
    merge_prefixed,
    save_artifact,
    split_prefixed,
)
from ..bisim import BiSIMConfig, OnlineImputer
from ..bisim.checkpoint import online_from_payload, online_payload
from ..constants import MNAR_FILL
from ..core import Differentiator
from ..exceptions import ServingError
from ..imputers import fill_mnars
from ..positioning import LocationEstimator, WKNNEstimator
from ..positioning.io import estimator_from_payload, estimator_payload
from ..radiomap import RadioMap

#: Artifact kind of a full warm-start shard bundle.
SHARD_KIND = "serving.shard"


@dataclass
class ServiceStats:
    """Latency/throughput counters of one :class:`PositioningService`.

    ``seconds`` accumulates wall-clock time spent inside
    :meth:`PositioningService.query_batch`; ``per_venue`` counts
    queries routed to each shard.
    """

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    per_venue: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Served queries per second of service time."""
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"queries={self.queries} batches={self.batches} "
            f"throughput={self.throughput:.0f}/s "
            f"cache hit rate={100 * self.hit_rate:.0f}%",
        ]
        for venue in sorted(self.per_venue):
            lines.append(f"  {venue}: {self.per_venue[venue]} queries")
        return "\n".join(lines)


class VenueShard:
    """One venue's deployed pipeline: imputer + fitted estimator."""

    def __init__(
        self,
        key: str,
        n_aps: int,
        estimator: LocationEstimator,
        online_imputer: Optional[OnlineImputer] = None,
        fill_values: Optional[np.ndarray] = None,
    ):
        self.key = key
        self.n_aps = int(n_aps)
        self.estimator = estimator
        self.online_imputer = online_imputer
        self.fill_values = fill_values

    @classmethod
    def build(
        cls,
        key: str,
        radio_map: RadioMap,
        differentiator: Differentiator,
        *,
        estimator: Optional[LocationEstimator] = None,
        bisim_config: Optional[BiSIMConfig] = None,
    ) -> "VenueShard":
        """Run the offline half of the pipeline and fit the estimator.

        Differentiates the radio map, MNAR-fills it, then either trains
        a BiSIM (``bisim_config`` given) — whose encoder both imputes
        the map the estimator trains on and serves the online queries —
        or falls back to per-AP mean imputation for instant deploys.
        """
        estimator = estimator or WKNNEstimator()
        mask = differentiator.differentiate(radio_map)
        filled, amended = fill_mnars(radio_map, mask)
        observed = np.isfinite(filled.fingerprints)
        counts = observed.sum(axis=0)
        sums = np.where(observed, filled.fingerprints, 0.0).sum(axis=0)
        means = sums / np.maximum(counts, 1)
        fill_values = np.where(counts > 0, means, MNAR_FILL)

        if bisim_config is not None:
            online = OnlineImputer.fit(filled, amended, bisim_config)
            fp_complete, rps_complete = online.trainer.impute(
                filled, amended
            )
            estimator.fit(fp_complete, rps_complete)
            return cls(
                key, radio_map.n_aps, estimator, online, fill_values
            )

        train_fp = np.where(
            observed, filled.fingerprints, fill_values[None, :]
        )
        labelled = radio_map.rp_observed_mask
        if not labelled.any():
            raise ServingError(f"venue {key!r} has no labelled records")
        estimator.fit(train_fp[labelled], radio_map.rps[labelled])
        return cls(key, radio_map.n_aps, estimator, None, fill_values)

    # ------------------------------------------------------------------
    # Warm start: the whole shard as one artifact file
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the deployed shard as one warm-start artifact.

        The bundle (kind ``"serving.shard"``) embeds the fitted
        estimator, the trained online imputer (when present) and the
        per-AP fill values, so :meth:`load` boots an identical shard
        in a fresh process without touching the radio map or training.
        """
        est_kind, est_config, est_arrays = estimator_payload(
            self.estimator
        )
        arrays: Dict[str, np.ndarray] = {}
        merge_prefixed(arrays, "estimator.", est_arrays)
        config = {
            "key": self.key,
            "n_aps": self.n_aps,
            "estimator": {"kind": est_kind, "config": est_config},
            "imputer": None,
        }
        metrics: Dict[str, float] = {}
        if self.online_imputer is not None:
            imp_config, imp_arrays, imp_metrics = online_payload(
                self.online_imputer
            )
            merge_prefixed(arrays, "imputer.", imp_arrays)
            config["imputer"] = imp_config
            metrics.update(imp_metrics)
        if self.fill_values is not None:
            arrays["fill_values"] = np.asarray(
                self.fill_values, dtype=float
            )
        save_artifact(
            Artifact(
                kind=SHARD_KIND,
                arrays=arrays,
                config=config,
                metrics=metrics,
            ),
            path,
        )

    @classmethod
    def load(cls, path, *, key: Optional[str] = None) -> "VenueShard":
        """Rebuild a serving-ready shard from a :meth:`save` artifact.

        ``key`` overrides the venue key stored in the artifact, so one
        trained bundle can be deployed under several venue names.
        """
        artifact = load_artifact(path, expected_kind=SHARD_KIND)
        config = artifact.config
        est_spec = config["estimator"]
        estimator = estimator_from_payload(
            est_spec["kind"],
            est_spec["config"],
            split_prefixed(artifact.arrays, "estimator."),
        )
        online = None
        if config.get("imputer") is not None:
            online = online_from_payload(
                config["imputer"],
                split_prefixed(artifact.arrays, "imputer."),
            )
        fill_values = artifact.arrays.get("fill_values")
        return cls(
            key or config["key"],
            int(config["n_aps"]),
            estimator,
            online,
            fill_values,
        )

    def reload(self, path) -> None:
        """Hot-swap this shard's pipeline from a shard artifact.

        The venue key is kept; estimator, online imputer and fill
        values are replaced atomically (the new shard is fully loaded
        and validated before anything is swapped).  The AP
        dimensionality must match — a reload cannot silently change
        the query contract.
        """
        fresh = VenueShard.load(path, key=self.key)
        if fresh.n_aps != self.n_aps:
            raise ServingError(
                f"cannot reload venue {self.key!r}: artifact has "
                f"{fresh.n_aps} APs, shard expects {self.n_aps}"
            )
        self.estimator = fresh.estimator
        self.online_imputer = fresh.online_imputer
        self.fill_values = fresh.fill_values

    def impute(self, queries: np.ndarray) -> np.ndarray:
        """Complete a ``(n, D)`` query batch (NaN = missing)."""
        if self.online_imputer is not None:
            return self.online_imputer.impute_batch(
                queries, squeeze=False
            )
        assert self.fill_values is not None
        return np.where(
            np.isfinite(queries), queries, self.fill_values[None, :]
        )

    def locate(self, queries: np.ndarray) -> np.ndarray:
        """Full online path: impute, then batched estimation → (n, 2)."""
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.n_aps:
            raise ServingError(
                f"venue {self.key!r} expects (n, {self.n_aps}) queries"
            )
        return self.estimator.predict(self.impute(queries), squeeze=False)


class PositioningService:
    """Routes mixed-venue fingerprint batches through venue shards.

    Parameters
    ----------
    cache_size:
        Maximum number of cached (venue, quantized fingerprint) →
        location entries; 0 disables caching.
    cache_quantum:
        RSSI quantization step (dBm) for cache keys — readings within
        the same quantum map to the same entry, which turns device
        re-scans into cache hits without measurably moving the
        estimate.
    """

    def __init__(
        self, *, cache_size: int = 4096, cache_quantum: float = 1.0
    ):
        if cache_quantum <= 0:
            raise ServingError("cache_quantum must be positive")
        self._shards: Dict[str, VenueShard] = {}
        self._cache: "OrderedDict[Tuple[str, bytes], np.ndarray]" = (
            OrderedDict()
        )
        self.cache_size = int(cache_size)
        self.cache_quantum = float(cache_quantum)
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # Registry (sharding by venue/floor key)
    # ------------------------------------------------------------------
    @property
    def venues(self) -> Tuple[str, ...]:
        return tuple(sorted(self._shards))

    def register(self, shard: VenueShard) -> VenueShard:
        if shard.key in self._shards:
            raise ServingError(f"venue {shard.key!r} already registered")
        self._shards[shard.key] = shard
        return shard

    def deploy(
        self,
        key: str,
        radio_map: RadioMap,
        differentiator: Differentiator,
        *,
        estimator: Optional[LocationEstimator] = None,
        bisim_config: Optional[BiSIMConfig] = None,
    ) -> VenueShard:
        """Build a shard from a raw radio map and register it."""
        return self.register(
            VenueShard.build(
                key,
                radio_map,
                differentiator,
                estimator=estimator,
                bisim_config=bisim_config,
            )
        )

    def deploy_from_artifact(
        self, path, *, key: Optional[str] = None
    ) -> VenueShard:
        """Warm-start a venue from a shard artifact and register it.

        No training, no radio map: the shard boots straight from the
        bundle written by :meth:`VenueShard.save` (or by
        ``python -m repro train``).
        """
        return self.register(VenueShard.load(path, key=key))

    def reload(self, key: str, path) -> VenueShard:
        """Hot-swap a deployed venue's pipeline from a shard artifact.

        The shard object (and thus any reference held by callers)
        survives; its estimator/imputer are replaced and every cached
        answer for the venue is invalidated so stale locations cannot
        be served.
        """
        shard = self.shard(key)
        shard.reload(path)
        for cache_key in [k for k in self._cache if k[0] == key]:
            del self._cache[cache_key]
        return shard

    def shard(self, key: str) -> VenueShard:
        try:
            return self._shards[key]
        except KeyError:
            raise ServingError(
                f"unknown venue {key!r}; deployed: {list(self.venues)}"
            ) from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, venue: str, fingerprint: np.ndarray) -> np.ndarray:
        """Locate one raw online fingerprint → ``(2,)``."""
        fp = np.asarray(fingerprint, dtype=float)
        return self.query_batch([venue], fp[None, :])[0]

    def query_batch(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Locate a batch of raw fingerprints → ``(n, 2)``.

        ``venues[i]`` names the shard for ``fingerprints[i]``; rows may
        mix venues freely (and venues may differ in AP count, so the
        batch is a sequence of ``(D_venue,)`` vectors — a uniform
        ``(n, D)`` array works when all rows share a venue).  Cache
        hits are answered immediately; misses are grouped per venue and
        go through each shard's batched impute→estimate path in one
        call.
        """
        start = time.perf_counter()
        n = len(venues)
        if n != len(fingerprints):
            raise ServingError("venues/fingerprints length mismatch")
        # Validate every row before touching stats or the cache, so a
        # bad row cannot leave the counters half-updated.
        rows_fp: List[np.ndarray] = []
        for venue, fingerprint in zip(venues, fingerprints):
            shard = self.shard(venue)
            fp = np.asarray(fingerprint, dtype=float)
            if fp.shape != (shard.n_aps,):
                raise ServingError(
                    f"venue {venue!r} expects ({shard.n_aps},) "
                    "fingerprints"
                )
            rows_fp.append(fp)

        out = np.empty((n, 2))
        keys: List[Optional[Tuple[str, bytes]]] = [None] * n
        misses: Dict[str, List[int]] = {}
        for i, venue in enumerate(venues):
            self.stats.per_venue[venue] = (
                self.stats.per_venue.get(venue, 0) + 1
            )
            if self.cache_size:
                key = self._cache_key(venue, rows_fp[i])
                keys[i] = key
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    out[i] = cached
                    continue
                self.stats.cache_misses += 1
            misses.setdefault(venue, []).append(i)

        for venue, rows in misses.items():
            batch = np.stack([rows_fp[i] for i in rows])
            located = self._shards[venue].locate(batch)
            for i, loc in zip(rows, located):
                out[i] = loc
                self._cache_put(keys[i], loc)

        self.stats.queries += n
        self.stats.batches += 1
        self.stats.seconds += time.perf_counter() - start
        return out

    def reset_stats(self) -> None:
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # LRU cache on quantized fingerprints
    # ------------------------------------------------------------------
    def _cache_key(
        self, venue: str, fingerprint: np.ndarray
    ) -> Tuple[str, bytes]:
        fp = np.asarray(fingerprint, dtype=float)
        quantized = np.round(fp / self.cache_quantum)
        # Missing readings get a sentinel far outside the RSSI range so
        # the observability pattern is part of the key; clipping keeps
        # tiny quanta from wrapping the integer cast into collisions.
        quantized = np.where(np.isfinite(quantized), quantized, 1e9)
        quantized = np.clip(quantized, -(2**31) + 1, 2**31 - 1)
        return venue, quantized.astype(np.int32).tobytes()

    def _cache_put(
        self, key: Optional[Tuple[str, bytes]], location: np.ndarray
    ) -> None:
        if not self.cache_size or key is None:
            return
        self._cache[key] = location.copy()
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
