"""The positioning service: batched, cached, multi-venue serving.

Serving API
-----------
A deployment is a registry of :class:`VenueShard` objects, one per
venue/floor radio map.  Each shard owns the full online pipeline for
its map — differentiate (offline, at build time) → impute (online,
batched) → estimate (online, batched) — so routing a request is a
dictionary lookup and everything after it is vectorized.

:class:`PositioningService` accepts batches of *raw* online
fingerprints (NaN = unheard AP) tagged with venue keys, groups them by
shard, answers repeats from an LRU cache keyed on quantized
fingerprints, and keeps latency/throughput counters::

    service = PositioningService()
    service.deploy("kaide/f1", radio_map, differentiator)
    locations = service.query_batch(keys, fingerprints)  # (n, 2)
    print(service.stats.render())

The serve path never runs the BiSIM encoder.  Shards built with a
:class:`~repro.bisim.BiSIMConfig` precompute the fully-imputed
radio-map tensor at build time and complete queries against it with
:class:`~repro.serving.completion.MapCompletion` (masked KNN over the
observed APs); the trained :class:`~repro.bisim.OnlineImputer` is
retained only for ingest-time refresh in
:meth:`VenueShard.prepare_delta` — and as a degraded serve fallback
when a warm-start artifact's precomputed tensor fails validation
(counted in ``ServiceStats.precompute_fallbacks``).  Shards built
without a BiSIM config use per-AP mean imputation, which keeps
deployment instant for venues that cannot afford training.

Thread safety
-------------
:class:`PositioningService` may be called from many threads at once
(the regime :class:`~repro.serving.pipeline.ServingPipeline` creates):

* the LRU cache and :class:`ServiceStats` counters are guarded by one
  internal lock; shard compute (impute → estimate) runs outside it so
  concurrent batches only serialize on the cheap bookkeeping;
* a shard's pipeline (estimator, online imputer, fill values,
  completion) lives in a single tuple that :meth:`VenueShard.reload`
  swaps with one reference assignment — an in-flight batch reads the
  tuple once and can never observe a torn half-old/half-new pipeline;
* :meth:`PositioningService.reload` swaps the shard and invalidates
  the venue's cache entries under the same lock that cache reads take,
  and every shard carries an ``epoch`` counter so a batch computed
  against the old pipeline cannot re-insert a stale answer after the
  invalidation.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import Counter, OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field, fields, is_dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..artifacts import (
    Artifact,
    backed_by_memmap,
    load_artifact,
    merge_prefixed,
    save_artifact,
    split_prefixed,
)
from ..bisim import BiSIMConfig, OnlineImputer
from ..bisim.checkpoint import online_from_payload, online_payload
from ..constants import MNAR_FILL
from ..core import Differentiator
from ..exceptions import ReproError, ServingError
from ..imputers import fill_mnars
from ..obs import MetricsRegistry, Telemetry
from ..positioning import LocationEstimator, WKNNEstimator
from ..positioning.base import NearestNeighbourEstimator
from ..positioning.index import KERNEL_STATS
from ..positioning.io import estimator_from_payload, estimator_payload
from ..radiomap import RadioMap, RadioMapDelta
from .completion import (
    EncoderCompletion,
    MapCompletion,
    MeanFillCompletion,
    completion_from,
)
from .keys import ShardKey, coerce_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .floors import FloorRouter

#: Artifact kind of a full warm-start shard bundle.
SHARD_KIND = "serving.shard"

#: Cache key: (venue, quantized-fingerprint bytes).
CacheKey = Tuple[str, bytes]

#: A shard's atomically-swappable pipeline: (estimator, online
#: imputer, fill values, completion).  The online imputer no longer
#: serves queries — it is retained for ingest-time refresh only; the
#: completion object owns the serve-path NaN filling.
Pipeline = Tuple[
    LocationEstimator,
    Optional[OnlineImputer],
    Optional[np.ndarray],
    Any,
]


@dataclass
class ServiceStats:
    """Latency/throughput counters of one :class:`PositioningService`.

    ``seconds`` accumulates wall-clock time spent inside
    :meth:`PositioningService.query_batch` (and, when a
    :class:`~repro.serving.pipeline.ServingPipeline` fronts the
    service, its submit-time cache probes); ``per_venue`` counts
    queries routed to each shard.  A query is a hit when it is
    answered from the LRU cache *or* when it repeats an identical
    ``(venue, cache key)`` row earlier in the same batch — either way
    the shard computed it once and the repeat was free.

    Since the unified telemetry layer landed this dataclass is a
    *view*: the service keeps its counters in a
    :class:`~repro.obs.MetricsRegistry` (names ``serving.*``) and
    :attr:`PositioningService.stats` materialises this snapshot from
    the registry under the service lock — same fields, same atomic
    invariants, one metrics substrate.
    """

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    seconds: float = 0.0
    deltas_applied: int = 0
    delta_rows: int = 0
    keys_invalidated: int = 0
    keys_kept: int = 0
    #: Shards serving through a degraded completion because their
    #: artifact's precomputed tensor failed validation (old artifact,
    #: manifest drift) — each one pays encoder/mean-fill costs the
    #: precompute was supposed to remove, so alert on this going up.
    precompute_fallbacks: int = 0
    #: Queries that arrived addressed to a bare stacked venue and were
    #: rewritten to a per-floor shard key by its floor classifier.
    floor_routed: int = 0
    per_venue: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Served queries per second of service time."""
        return self.queries / self.seconds if self.seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"queries={self.queries} batches={self.batches} "
            f"throughput={self.throughput:.0f}/s "
            f"cache hit rate={100 * self.hit_rate:.0f}%",
        ]
        if self.deltas_applied:
            lines.append(
                f"  deltas applied={self.deltas_applied} "
                f"({self.delta_rows} rows); cache keys "
                f"invalidated={self.keys_invalidated} "
                f"kept={self.keys_kept}"
            )
        if self.precompute_fallbacks:
            lines.append(
                f"  precompute fallbacks={self.precompute_fallbacks} "
                "(shards serving without their precomputed tensor)"
            )
        if self.floor_routed:
            lines.append(
                f"  floor routed={self.floor_routed} "
                "(bare-venue queries classified onto a floor shard)"
            )
        for venue in sorted(self.per_venue):
            lines.append(f"  {venue}: {self.per_venue[venue]} queries")
        return "\n".join(lines)


@dataclass
class _ShardSource:
    """Build inputs a shard retains to support incremental deltas.

    ``mask`` caches the differentiator's output over ``radio_map`` and
    ``imputed_fp`` / ``imputed_rps`` the trainer-imputed training set
    (BiSIM shards only), so :meth:`VenueShard.prepare_delta` only
    recomputes the rows of dirty paths and stitches the rest.
    """

    radio_map: RadioMap
    differentiator: Differentiator
    mask: np.ndarray
    imputed_fp: Optional[np.ndarray] = None
    imputed_rps: Optional[np.ndarray] = None


@dataclass
class _PreparedUpdate:
    """A fully-built delta update, ready for one atomic install."""

    pipeline: Pipeline
    source: _ShardSource
    rows: int
    paths: int


@dataclass
class DeltaApplyReport:
    """What one :meth:`PositioningService.apply_delta` did."""

    venue: str
    epoch: int
    rows: int
    paths: int
    invalidated: int
    kept: int
    seconds: float

    def describe(self) -> str:
        return (
            f"applied delta to {self.venue!r}: {self.rows} rows over "
            f"{self.paths} paths in {1e3 * self.seconds:.1f}ms "
            f"(epoch {self.epoch}; cache: {self.invalidated} "
            f"invalidated, {self.kept} kept)"
        )


def _clone_unfitted(
    estimator: LocationEstimator,
) -> LocationEstimator:
    """A fresh estimator with the same hyperparameters, not yet fitted.

    Delta application must never refit the live estimator in place —
    the new one is fitted off to the side and swapped in atomically.
    """
    if not is_dataclass(estimator):
        raise ServingError(
            f"{type(estimator).__name__} cannot be cloned for delta "
            "application"
        )
    config = {
        f.name: getattr(estimator, f.name)
        for f in fields(estimator)
        if not f.name.startswith("_")
    }
    return type(estimator)(**config)


def _rows_by_path(path_ids: np.ndarray) -> Dict[int, np.ndarray]:
    return {
        int(pid): np.where(path_ids == pid)[0]
        for pid in np.unique(path_ids)
    }


class VenueShard:
    """One venue's deployed pipeline: imputer + fitted estimator.

    The pipeline components live in one ``(estimator, online_imputer,
    fill_values)`` tuple so a :meth:`reload` replaces all three with a
    single reference assignment — concurrent :meth:`locate` calls read
    the tuple once and always see a consistent pipeline.  ``epoch``
    increments on every swap; the service uses it to drop cache
    insertions computed against a pipeline that has since been
    replaced.

    Shards built from a radio map (:meth:`build`) additionally retain
    their build inputs, which enables **incremental hot updates**:
    :meth:`apply_delta` folds a
    :class:`~repro.radiomap.RadioMapDelta` in by recomputing only the
    dirty paths' differentiation/imputation and refitting the
    estimator, then swaps the pipeline under the same epoch machinery
    a reload uses.  Warm-started shards opt in via
    :meth:`attach_source`.
    """

    def __init__(
        self,
        key: str,
        n_aps: int,
        estimator: LocationEstimator,
        online_imputer: Optional[OnlineImputer] = None,
        fill_values: Optional[np.ndarray] = None,
        completion: Any = None,
    ):
        self.key = key
        self.n_aps = int(n_aps)
        if completion is None:
            completion = completion_from(online_imputer, fill_values)
        self._pipeline: Pipeline = (
            estimator,
            online_imputer,
            fill_values,
            completion,
        )
        self._source: Optional[_ShardSource] = None
        #: True when a warm start could not validate its precomputed
        #: tensor and serves through a degraded completion instead.
        self.precompute_fallback = False
        self.epoch = 0

    @property
    def estimator(self) -> LocationEstimator:
        return self._pipeline[0]

    @property
    def online_imputer(self) -> Optional[OnlineImputer]:
        return self._pipeline[1]

    @property
    def fill_values(self) -> Optional[np.ndarray]:
        return self._pipeline[2]

    @property
    def completion(self) -> Any:
        """The serve-path NaN-filling strategy (see
        :mod:`repro.serving.completion`)."""
        return self._pipeline[3]

    @classmethod
    def build(
        cls,
        key: str,
        radio_map: RadioMap,
        differentiator: Differentiator,
        *,
        estimator: Optional[LocationEstimator] = None,
        bisim_config: Optional[BiSIMConfig] = None,
    ) -> "VenueShard":
        """Run the offline half of the pipeline and fit the estimator.

        Differentiates the radio map, MNAR-fills it, then either trains
        a BiSIM (``bisim_config`` given) — whose encoder imputes the
        map once, at build time; the resulting precomputed tensor both
        trains the estimator and completes online queries — or falls
        back to per-AP mean imputation for instant deploys.
        """
        estimator = estimator or WKNNEstimator()
        mask = differentiator.differentiate(radio_map)
        filled, amended = fill_mnars(radio_map, mask)
        fill_values = cls._fill_values_from(filled.fingerprints)

        if bisim_config is not None:
            online = OnlineImputer.fit(filled, amended, bisim_config)
            fp_complete, rps_complete = online.trainer.impute(
                filled, amended
            )
            estimator.fit(fp_complete, rps_complete)
            shard = cls(
                key,
                radio_map.n_aps,
                estimator,
                online,
                fill_values,
                MapCompletion(fp_complete, fill_values),
            )
            shard._source = _ShardSource(
                radio_map,
                differentiator,
                mask,
                fp_complete,
                rps_complete,
            )
            return shard

        cls._mean_fill_fit(key, estimator, radio_map, filled, fill_values)
        shard = cls(key, radio_map.n_aps, estimator, None, fill_values)
        shard._source = _ShardSource(radio_map, differentiator, mask)
        return shard

    @staticmethod
    def _fill_values_from(filled_fp: np.ndarray) -> np.ndarray:
        """Per-AP mean fill values over a MNAR-filled map."""
        observed = np.isfinite(filled_fp)
        counts = observed.sum(axis=0)
        sums = np.where(observed, filled_fp, 0.0).sum(axis=0)
        means = sums / np.maximum(counts, 1)
        return np.where(counts > 0, means, MNAR_FILL)

    @staticmethod
    def _mean_fill_fit(
        key: str,
        estimator: LocationEstimator,
        radio_map: RadioMap,
        filled: RadioMap,
        fill_values: np.ndarray,
    ) -> None:
        """Fit an estimator on the mean-filled labelled records."""
        observed = np.isfinite(filled.fingerprints)
        train_fp = np.where(
            observed, filled.fingerprints, fill_values[None, :]
        )
        labelled = radio_map.rp_observed_mask
        if not labelled.any():
            raise ServingError(f"venue {key!r} has no labelled records")
        estimator.fit(train_fp[labelled], radio_map.rps[labelled])

    # ------------------------------------------------------------------
    # Warm start: the whole shard as one artifact file
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the deployed shard as one warm-start artifact.

        The bundle (kind ``"serving.shard"``) embeds the fitted
        estimator, the trained online imputer (when present), the
        per-AP fill values and — for shards completing against a
        precomputed map — the precomputed tensor itself, so
        :meth:`load` boots an identical shard in a fresh process
        without touching the radio map or training.  Shard artifacts
        are written uncompressed so the precomputed tensor can be
        memory-mapped straight out of the file at load time.
        """
        estimator, online_imputer, fill_values, completion = (
            self._pipeline
        )
        est_kind, est_config, est_arrays = estimator_payload(estimator)
        arrays: Dict[str, np.ndarray] = {}
        merge_prefixed(arrays, "estimator.", est_arrays)
        config: Dict[str, Any] = {
            "key": self.key,
            "n_aps": self.n_aps,
            "estimator": {"kind": est_kind, "config": est_config},
            "imputer": None,
        }
        metrics: Dict[str, float] = {}
        if online_imputer is not None:
            imp_config, imp_arrays, imp_metrics = online_payload(
                online_imputer
            )
            merge_prefixed(arrays, "imputer.", imp_arrays)
            config["imputer"] = imp_config
            metrics.update(imp_metrics)
        if fill_values is not None:
            arrays["fill_values"] = np.asarray(fill_values, dtype=float)
        if isinstance(completion, MapCompletion):
            tensor = np.ascontiguousarray(
                completion.precomputed, dtype=float
            )
            arrays["precomputed"] = tensor
            config["precomputed"] = {
                "shape": list(tensor.shape),
                "sha256": hashlib.sha256(tensor.tobytes()).hexdigest(),
                "k": completion.k,
            }
        save_artifact(
            Artifact(
                kind=SHARD_KIND,
                arrays=arrays,
                config=config,
                metrics=metrics,
            ),
            path,
            compress=False,
        )

    @classmethod
    def load(cls, path, *, key: Optional[str] = None) -> "VenueShard":
        """Rebuild a serving-ready shard from a :meth:`save` artifact.

        ``key`` overrides the venue key stored in the artifact, so one
        trained bundle can be deployed under several venue names.

        The precomputed completion tensor (when the artifact declares
        one) is memory-mapped rather than copied, and validated
        against the manifest's recorded shape and SHA-256 before use.
        A tensor that is missing, misshapen or hash-mismatched does
        **not** fail the load: the shard falls back to on-the-fly
        completion (encoder or mean fill, whatever the bundle carries)
        with :attr:`precompute_fallback` set, so old artifacts stay
        servable and the service can count the degradation.
        """
        artifact = load_artifact(
            path, expected_kind=SHARD_KIND, mmap_arrays=("precomputed",)
        )
        return cls.from_artifact(artifact, key=key)

    @classmethod
    def from_artifact(
        cls,
        artifact: Artifact,
        *,
        key: Optional[str] = None,
        verify_precompute: bool = True,
    ) -> "VenueShard":
        """Build a shard from an already-loaded shard :class:`Artifact`.

        The back half of :meth:`load`, split out so callers that manage
        artifact bytes themselves (the shard-fleet registry re-attaching
        an evicted venue from cached member offsets) can skip the file
        walk.  ``verify_precompute=False`` trusts the precomputed
        tensor's bytes and checks only its declared shape — correct
        exactly when the same file already passed a fully-verified load
        and is known unchanged (the registry pins mtime+size); anything
        less re-verifies.
        """
        config = artifact.config
        est_spec = config["estimator"]
        estimator = estimator_from_payload(
            est_spec["kind"],
            est_spec["config"],
            split_prefixed(artifact.arrays, "estimator."),
        )
        online = None
        if config.get("imputer") is not None:
            online = online_from_payload(
                config["imputer"],
                split_prefixed(artifact.arrays, "imputer."),
            )
        fill_values = artifact.arrays.get("fill_values")
        completion, fallback = cls._completion_from_artifact(
            artifact, online, fill_values, verify=verify_precompute
        )
        shard = cls(
            key or config["key"],
            int(config["n_aps"]),
            estimator,
            online,
            fill_values,
            completion,
        )
        shard.precompute_fallback = fallback
        return shard

    @staticmethod
    def _completion_from_artifact(
        artifact: Artifact,
        online: Optional[OnlineImputer],
        fill_values: Optional[np.ndarray],
        *,
        verify: bool = True,
    ) -> Tuple[Any, bool]:
        """``(completion, is_fallback)`` for a loaded shard artifact.

        Validates the precomputed tensor against the manifest's
        declared shape and (with ``verify``) SHA-256; any mismatch
        degrades to the legacy on-the-fly completion instead of
        raising.
        """
        spec = artifact.config.get("precomputed")
        if spec is None:
            # Pre-precompute artifact (or a mean-fill shard, which
            # never carries a tensor): legacy completion, and only a
            # *fallback* when an encoder is being pressed into the
            # serve path the precompute was meant to retire.
            return completion_from(online, fill_values), online is not None
        tensor = artifact.arrays.get("precomputed")
        valid = tensor is not None and list(tensor.shape) == list(
            spec.get("shape", [])
        )
        if valid and verify:
            valid = (
                hashlib.sha256(
                    np.ascontiguousarray(tensor, dtype=float).tobytes()
                ).hexdigest()
                == spec.get("sha256")
            )
        if not valid:
            fallback = completion_from(online, fill_values)
            if isinstance(fallback, EncoderCompletion):
                fallback.fallback = True
            return fallback, True
        return (
            MapCompletion(
                tensor, fill_values, k=int(spec.get("k", 3))
            ),
            False,
        )

    def reload(self, path) -> None:
        """Hot-swap this shard's pipeline from a shard artifact.

        The venue key is kept; estimator, online imputer and fill
        values are replaced atomically (the new shard is fully loaded
        and validated before anything is swapped, and the swap is a
        single reference assignment, so a concurrent :meth:`locate`
        sees either the whole old or the whole new pipeline).  The AP
        dimensionality must match — a reload cannot silently change
        the query contract.
        """
        self._install(VenueShard.load(path, key=self.key))

    def _install(self, fresh: "VenueShard") -> None:
        """Swap in a fully-built shard's pipeline and bump the epoch."""
        if fresh.n_aps != self.n_aps:
            raise ServingError(
                f"cannot reload venue {self.key!r}: artifact has "
                f"{fresh.n_aps} APs, shard expects {self.n_aps}"
            )
        self._pipeline = fresh._pipeline
        # The old source described the replaced pipeline's radio map;
        # a reloaded artifact carries none, so deltas need a fresh
        # attach_source() after a reload.
        self._source = fresh._source
        self.precompute_fallback = fresh.precompute_fallback
        self.epoch += 1

    # ------------------------------------------------------------------
    # Incremental hot updates (streaming ingestion deltas)
    # ------------------------------------------------------------------
    @property
    def supports_deltas(self) -> bool:
        """Whether this shard retains the state deltas fold into."""
        return self._source is not None

    @property
    def radio_map(self) -> Optional[RadioMap]:
        """The retained source radio map (``None`` after warm start)."""
        return None if self._source is None else self._source.radio_map

    def attach_source(
        self, radio_map: RadioMap, differentiator: Differentiator
    ) -> None:
        """Enable delta application on a warm-started shard.

        Recomputes the cached differentiation mask (and, for BiSIM
        shards, the imputed training set) the incremental update path
        stitches against — a one-time cost that makes every later
        :meth:`apply_delta` touch only dirty paths.
        """
        if radio_map.n_aps != self.n_aps:
            raise ServingError(
                f"venue {self.key!r} serves {self.n_aps} APs, source "
                f"map has {radio_map.n_aps}"
            )
        mask = differentiator.differentiate(radio_map)
        filled, amended = fill_mnars(radio_map, mask)
        online = self._pipeline[1]
        imputed_fp = imputed_rps = None
        if online is not None:
            imputed_fp, imputed_rps = online.trainer.impute(
                filled, amended
            )
        self._source = _ShardSource(
            radio_map, differentiator, mask, imputed_fp, imputed_rps
        )

    def detach_source(self) -> None:
        """Drop the retained build inputs (frees memory, no deltas)."""
        self._source = None

    def prepare_delta(
        self, delta: RadioMapDelta, *, refresh_mask: str = "dirty"
    ) -> _PreparedUpdate:
        """Build the post-delta pipeline without installing it.

        All the heavy work happens here, off the serving path: merge
        the delta into the retained radio map, re-differentiate the
        *dirty* paths (``refresh_mask="dirty"``, the default — exact
        for row-local differentiators like MAR/MNAR-only and a
        documented per-path approximation for clustering ones;
        ``"full"`` re-runs the differentiator over the whole merged
        map for exact parity with a cold build), refresh the online
        imputer's context index for the dirty paths, and refit a
        *clone* of the estimator.  The result installs atomically via
        :meth:`apply_delta` / the service's epoch machinery.
        """
        if refresh_mask not in ("dirty", "full"):
            raise ServingError("refresh_mask must be 'dirty' or 'full'")
        src = self._source
        if src is None:
            raise ServingError(
                f"venue {self.key!r} cannot apply deltas: the shard "
                "was warm-started without its radio map; call "
                "attach_source() first"
            )
        if delta.records.n_aps != self.n_aps:
            raise ServingError(
                f"delta carries {delta.records.n_aps} APs, venue "
                f"{self.key!r} serves {self.n_aps}"
            )
        merged = delta.apply_to(src.radio_map)
        dirty = {int(p) for p in delta.path_ids}
        new_rows = _rows_by_path(merged.path_ids)
        old_rows = _rows_by_path(src.radio_map.path_ids)
        dirty_idx = np.where(
            np.isin(merged.path_ids, np.asarray(sorted(dirty), dtype=int))
        )[0]

        # Differentiation: stitch cached clean-path rows with a pass
        # over the dirty sub-map, falling back to a full pass when the
        # differentiator cannot handle the sub-map alone.
        stitched = False
        mask: Optional[np.ndarray] = None
        if refresh_mask == "dirty":
            mask = np.empty(merged.fingerprints.shape, dtype=src.mask.dtype)
            for pid, rows in new_rows.items():
                if pid not in dirty:
                    mask[rows] = src.mask[old_rows[pid]]
            if dirty_idx.size:
                try:
                    sub_mask = src.differentiator.differentiate(
                        merged.subset(dirty_idx)
                    )
                except ReproError:
                    mask = None
                else:
                    mask[dirty_idx] = sub_mask
            stitched = mask is not None
        if mask is None:
            mask = src.differentiator.differentiate(merged)
        filled, amended = fill_mnars(merged, mask)
        fill_values = self._fill_values_from(filled.fingerprints)

        estimator_old, online_old = self._pipeline[0], self._pipeline[1]
        estimator = _clone_unfitted(estimator_old)
        if online_old is not None:
            refresh_ids = (
                delta.path_ids
                if stitched
                else np.unique(merged.path_ids)
            )
            online = online_old.refreshed(filled, amended, refresh_ids)
            n = merged.n_records
            if stitched and src.imputed_fp is not None:
                # Patch the precomputed tensor in place of a full
                # re-imputation: clean paths keep their rows, only the
                # dirty paths go back through the trainer.
                fp_c = np.empty((n, self.n_aps))
                rps_c = np.empty((n, 2))
                for pid, rows in new_rows.items():
                    if pid not in dirty:
                        fp_c[rows] = src.imputed_fp[old_rows[pid]]
                        rps_c[rows] = src.imputed_rps[old_rows[pid]]
                if dirty_idx.size:
                    sub_fp, sub_rps = online.trainer.impute(
                        filled.subset(dirty_idx), amended[dirty_idx]
                    )
                    fp_c[dirty_idx] = sub_fp
                    rps_c[dirty_idx] = sub_rps
            else:
                fp_c, rps_c = online.trainer.impute(filled, amended)
            self._refit(
                estimator, estimator_old, fp_c, rps_c,
                dirty, new_rows, old_rows,
            )
            return _PreparedUpdate(
                pipeline=(
                    estimator,
                    online,
                    fill_values,
                    MapCompletion(fp_c, fill_values),
                ),
                source=_ShardSource(
                    merged, src.differentiator, mask, fp_c, rps_c
                ),
                rows=delta.n_rows,
                paths=delta.n_paths,
            )

        self._mean_fill_fit(
            self.key, estimator, merged, filled, fill_values
        )
        return _PreparedUpdate(
            pipeline=(
                estimator,
                None,
                fill_values,
                MeanFillCompletion(fill_values),
            ),
            source=_ShardSource(merged, src.differentiator, mask),
            rows=delta.n_rows,
            paths=delta.n_paths,
        )

    @staticmethod
    def _refit(
        estimator: LocationEstimator,
        estimator_old: LocationEstimator,
        fingerprints: np.ndarray,
        locations: np.ndarray,
        dirty: set,
        new_rows: Dict[int, np.ndarray],
        old_rows: Dict[int, np.ndarray],
    ) -> None:
        """Fit the cloned estimator, reusing the old spatial index.

        When the outgoing estimator carries a spatial index, the rows
        of clean (non-dirty) paths keep their bucket assignment and
        only dirty-path rows are re-placed
        (:meth:`~repro.positioning.base.NearestNeighbourEstimator.fit_incremental`);
        otherwise this is a plain :meth:`fit`.  Results are identical
        either way — the index is exact under any bucket assignment.
        """
        old_index = (
            estimator_old.index
            if isinstance(estimator_old, NearestNeighbourEstimator)
            and estimator_old.fitted
            else None
        )
        if old_index is None or not isinstance(
            estimator, NearestNeighbourEstimator
        ):
            estimator.fit(fingerprints, locations)
            return
        clean = [
            pid
            for pid in new_rows
            if pid not in dirty and pid in old_rows
        ]
        if clean:
            keep_old = np.concatenate([old_rows[p] for p in clean])
            keep_new = np.concatenate([new_rows[p] for p in clean])
        else:
            keep_old = keep_new = np.empty(0, dtype=np.int64)
        estimator._index = old_index
        estimator.fit_incremental(
            fingerprints, locations, keep_old, keep_new
        )

    def _install_update(self, prepared: _PreparedUpdate) -> None:
        """Swap in a prepared delta update and bump the epoch."""
        self._pipeline = prepared.pipeline
        self._source = prepared.source
        self.epoch += 1

    def apply_delta(
        self, delta: RadioMapDelta, *, refresh_mask: str = "dirty"
    ) -> DeltaApplyReport:
        """Fold a delta into this shard in place (atomic swap).

        Standalone-shard variant; a shard registered in a
        :class:`PositioningService` should go through
        :meth:`PositioningService.apply_delta`, which also invalidates
        the venue's affected cache entries.
        """
        start = time.perf_counter()
        prepared = self.prepare_delta(delta, refresh_mask=refresh_mask)
        self._install_update(prepared)
        return DeltaApplyReport(
            venue=self.key,
            epoch=self.epoch,
            rows=prepared.rows,
            paths=prepared.paths,
            invalidated=0,
            kept=0,
            seconds=time.perf_counter() - start,
        )

    def _validate(self, queries: np.ndarray) -> np.ndarray:
        queries = np.asarray(queries, dtype=float)
        if queries.ndim != 2 or queries.shape[1] != self.n_aps:
            raise ServingError(
                f"venue {self.key!r} expects (n, {self.n_aps}) "
                f"queries, got {queries.shape}"
            )
        return queries

    def impute(self, queries: np.ndarray) -> np.ndarray:
        """Complete a ``(n, D)`` query batch (NaN = missing).

        Runs the pipeline's completion strategy — masked KNN against
        the precomputed tensor, mean fill, or (fallback only) the
        BiSIM encoder.  Wrong-width batches fail with a
        :class:`ServingError` naming the venue contract, the same
        check :meth:`locate` performs — not a deep imputer/broadcast
        error.
        """
        queries = self._validate(queries)
        completion = self._pipeline[3]
        if completion is None:
            raise ServingError(
                f"venue {self.key!r} has no completion strategy"
            )
        return completion.complete(queries)

    @staticmethod
    def _locate_with(
        pipeline: Pipeline, queries: np.ndarray
    ) -> np.ndarray:
        """Complete → estimate through an explicit pipeline tuple.

        Lets the delta-apply path evaluate cached queries against both
        the outgoing and the incoming pipeline for targeted cache
        invalidation.
        """
        estimator, _, _, completion = pipeline
        if completion is not None:
            queries = completion.complete(queries)
        return estimator.predict(queries, squeeze=False)

    def locate(
        self, queries: np.ndarray, *, tracer=None
    ) -> np.ndarray:
        """Full online path: complete, then batched estimation → (n, 2).

        ``tracer`` (a :class:`~repro.obs.Tracer` with an active span)
        opt-ins stage spans: a ``shard:<key>`` span with ``complete``
        and ``estimate`` children, plus per-stage kernel children
        reconstructed from ``KERNEL_STATS`` deltas when the spatial
        index's stage timers are enabled.
        """
        queries = self._validate(queries)
        # One tuple read = one consistent pipeline, even mid-reload.
        if tracer is None or tracer.current() is None:
            return self._locate_with(self._pipeline, queries)
        return self._locate_traced(self._pipeline, queries, tracer)

    def _locate_traced(
        self, pipeline: Pipeline, queries: np.ndarray, tracer
    ) -> np.ndarray:
        """:meth:`_locate_with`, with stage spans under ``tracer``.

        Kernel stage durations come from ``KERNEL_STATS`` snapshot
        deltas around the estimate — per-process, so attribution is
        exact only while one traced batch runs the kernel at a time
        (the pipeline's single flusher, a fleet worker's single loop).
        """
        estimator, _, _, completion = pipeline
        with tracer.span(
            f"shard:{self.key}",
            meta={"rows": int(queries.shape[0]), "epoch": self.epoch},
        ):
            if completion is not None:
                with tracer.span("complete"):
                    queries = completion.complete(queries)
            with tracer.span("estimate") as est_span:
                before = (
                    KERNEL_STATS.snapshot()
                    if KERNEL_STATS.enabled
                    else None
                )
                out = estimator.predict(queries, squeeze=False)
                if before is not None and est_span is not None:
                    after = KERNEL_STATS.snapshot()
                    if after["calls"] > before["calls"]:
                        for stage in KERNEL_STATS._FIELDS:
                            est_span.child(
                                f"kernel.{stage[:-2]}",
                                duration=after[stage] - before[stage],
                            )
        return out

    def footprint(self) -> Tuple[int, int]:
        """``(resident_bytes, mapped_bytes)`` of this shard's pipeline.

        Best-effort accounting for memory-budgeted registries:
        estimator state (including a spatial index's derived bucket
        blocks), fill values, completion state and — when the shard
        retains a trained online imputer for ingest refresh — the
        imputer's checkpoint payload.  Memory-mapped arrays count as
        *mapped* (they release to the page cache on eviction) and
        everything else as *resident*.
        """
        estimator, online, fill_values, completion = self._pipeline
        resident = mapped = 0

        def tally(array) -> None:
            nonlocal resident, mapped
            a = np.asarray(array)
            if backed_by_memmap(a):
                mapped += int(a.nbytes)
            else:
                resident += int(a.nbytes)

        try:
            _, _, est_arrays = estimator_payload(estimator)
        except (ReproError, TypeError, AttributeError):
            est_arrays = {}
        for a in est_arrays.values():
            tally(a)
        if isinstance(estimator, NearestNeighbourEstimator):
            index = estimator.index
            if index is not None:
                # The persisted arrays above miss the derived
                # bucket-contiguous blocks, which dominate the index.
                tally(index._centered32)
                tally(index._c2_32)
        if fill_values is not None:
            tally(fill_values)
        if completion is not None and hasattr(
            completion, "resident_nbytes"
        ):
            resident += int(completion.resident_nbytes())
            mapped += int(completion.mapped_nbytes())
        if online is not None and not isinstance(
            completion, EncoderCompletion
        ):
            # EncoderCompletion already counted the imputer payload.
            try:
                _, imp_arrays, _ = online_payload(online)
            except (ReproError, TypeError, AttributeError):
                imp_arrays = {}
            for a in imp_arrays.values():
                tally(a)
        return resident, mapped


class PositioningService:
    """Routes mixed-venue fingerprint batches through venue shards.

    Safe to call from many threads at once: cache and stats mutations
    take an internal lock, shard compute does not (see the module
    docstring for the full guarantees).

    Parameters
    ----------
    cache_size:
        Maximum number of cached (venue, quantized fingerprint) →
        location entries; 0 disables caching (and with it the
        duplicate-row coalescing inside a batch, which is keyed on the
        quantized fingerprints).
    cache_quantum:
        RSSI quantization step (dBm) for cache keys — readings within
        the same quantum map to the same entry, which turns device
        re-scans into cache hits without measurably moving the
        estimate.
    """

    def __init__(
        self,
        *,
        cache_size: int = 4096,
        cache_quantum: float = 1.0,
        telemetry: Optional[Telemetry] = None,
    ):
        if cache_quantum <= 0:
            raise ServingError("cache_quantum must be positive")
        self._shards: Dict[str, VenueShard] = {}
        self._floor_routers: Dict[str, "FloorRouter"] = {}
        self._cache: "OrderedDict[CacheKey, np.ndarray]" = OrderedDict()
        self._lock = threading.RLock()
        self.cache_size = int(cache_size)
        self.cache_quantum = float(cache_quantum)
        #: The unified telemetry registry backing :attr:`stats`.  A
        #: service without an attached :class:`~repro.obs.Telemetry`
        #: still gets a private registry (the counters must live
        #: somewhere); attaching one additionally enables sampled
        #: request tracing via its tracer.
        self.telemetry = telemetry
        self.metrics: MetricsRegistry = (
            telemetry.metrics if telemetry is not None
            else MetricsRegistry()
        )
        self.tracer = telemetry.tracer if telemetry is not None else None
        m = self.metrics
        self._c_queries = m.counter("serving.queries")
        self._c_batches = m.counter("serving.batches")
        self._c_hits = m.counter("serving.cache_hits")
        self._c_misses = m.counter("serving.cache_misses")
        self._c_seconds = m.counter("serving.seconds")
        self._c_deltas = m.counter("serving.deltas_applied")
        self._c_delta_rows = m.counter("serving.delta_rows")
        self._c_invalidated = m.counter("serving.keys_invalidated")
        self._c_kept = m.counter("serving.keys_kept")
        self._c_fallbacks = m.counter("serving.precompute_fallbacks")
        self._c_floor_routed = m.counter("serving.floor_routed")
        #: Per-request serve latency (batch wall-clock attributed to
        #: every request in the batch) — the live p50/p95/p99 source.
        self._h_latency = m.histogram("serving.request_seconds")
        self._venue_counters: Dict[str, Any] = {}

    def _venue_counter(self, venue: str):
        # Caller holds self._lock (the dict doubles as the per-venue
        # label cache, so lookups on the publish path stay O(1)).
        counter = self._venue_counters.get(venue)
        if counter is None:
            counter = self.metrics.counter(
                "serving.venue_queries", venue=venue
            )
            self._venue_counters[venue] = counter
        return counter

    @property
    def stats(self) -> ServiceStats:
        """A consistent point-in-time snapshot of the counters.

        Every internal counter mutation publishes its related fields
        in one critical section (a batch's hits, misses, queries and
        per-venue counts land together), and this property builds the
        :class:`ServiceStats` view from the registry under the same
        lock — so a reader under concurrent traffic always sees an
        atomic snapshot satisfying the service's invariants (with
        caching enabled, ``queries == cache_hits + cache_misses`` and
        ``sum(per_venue) == queries``), never a torn mix of old and
        new counters.  The returned object (including ``per_venue``)
        is detached: mutating it cannot corrupt the live registry.
        """
        with self._lock:
            per_venue: Dict[str, int] = {}
            for venue, counter in self._venue_counters.items():
                count = int(counter.value)
                if count:
                    per_venue[venue] = count
            return ServiceStats(
                queries=int(self._c_queries.value),
                batches=int(self._c_batches.value),
                cache_hits=int(self._c_hits.value),
                cache_misses=int(self._c_misses.value),
                seconds=self._c_seconds.value,
                deltas_applied=int(self._c_deltas.value),
                delta_rows=int(self._c_delta_rows.value),
                keys_invalidated=int(self._c_invalidated.value),
                keys_kept=int(self._c_kept.value),
                precompute_fallbacks=int(self._c_fallbacks.value),
                floor_routed=int(self._c_floor_routed.value),
                per_venue=per_venue,
            )

    # ------------------------------------------------------------------
    # Registry (sharding by venue/floor key)
    # ------------------------------------------------------------------
    @property
    def venues(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._shards))

    def register(self, shard: VenueShard) -> VenueShard:
        with self._lock:
            if shard.key in self._shards:
                raise ServingError(
                    f"venue {shard.key!r} already registered"
                )
            self._shards[shard.key] = shard
            if shard.precompute_fallback:
                self._c_fallbacks.add(1)
        return shard

    def unregister(
        self, key: Union[str, ShardKey]
    ) -> Optional[VenueShard]:
        """Remove a venue and drop its cached answers (LRU eviction
        hook for memory-budgeted registries).

        Returns the removed shard, or ``None`` when the venue was not
        registered — eviction races with nothing.  In-flight
        :meth:`query_batch` calls that already resolved the shard
        finish against it; new queries for the venue fail with the
        usual unknown-venue :class:`ServingError` until it is
        registered again.
        """
        key = coerce_key(key)
        with self._lock:
            shard = self._shards.pop(key, None)
            if shard is not None:
                for cache_key in [
                    k for k in self._cache if k[0] == key
                ]:
                    del self._cache[cache_key]
        return shard

    # ------------------------------------------------------------------
    # Floor routing (stacked venues)
    # ------------------------------------------------------------------
    def attach_floor_router(
        self, venue: str, router: "FloorRouter"
    ) -> "FloorRouter":
        """Route bare-``venue`` queries onto its per-floor shards.

        Once attached, a :meth:`query_batch` row addressed to the bare
        venue name is classified by the router and rewritten to the
        winning ``"venue/floor"`` shard key before serving — stacked
        venues never register a shard under the bare name, so without
        a router those rows would be rejected as unknown.  Venues with
        no router attached are untouched: the single-floor path stays
        bit-identical.
        """
        with self._lock:
            self._floor_routers[venue] = router
        return router

    def detach_floor_router(self, venue: str) -> Optional["FloorRouter"]:
        """Remove a venue's floor router (floor shards stay)."""
        with self._lock:
            return self._floor_routers.pop(venue, None)

    def floor_router(self, venue: str) -> Optional["FloorRouter"]:
        """The router attached for ``venue``, or ``None``."""
        return self._floor_routers.get(venue)

    def _route_floors(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
    ) -> Sequence[str]:
        """Rewrite bare stacked-venue rows to their floor shard keys.

        Rows naming a venue with an attached router are grouped,
        batch-classified, and re-addressed; all other rows (including
        explicit ``"venue/floor"`` keys) pass through untouched.
        """
        routers = self._floor_routers
        by_venue: Dict[str, List[int]] = {}
        for i, venue in enumerate(venues):
            if venue in routers:
                by_venue.setdefault(venue, []).append(i)
        if not by_venue:
            return venues
        routed = list(venues)
        n_routed = 0
        for venue, rows in by_venue.items():
            batch = np.stack(
                [
                    np.asarray(fingerprints[i], dtype=float)
                    for i in rows
                ]
            )
            for i, key in zip(rows, routers[venue].route(batch)):
                routed[i] = key
            n_routed += len(rows)
        with self._lock:
            self._c_floor_routed.add(n_routed)
        return routed

    def deploy(
        self,
        key: Union[str, ShardKey],
        radio_map: RadioMap,
        differentiator: Differentiator,
        *,
        estimator: Optional[LocationEstimator] = None,
        bisim_config: Optional[BiSIMConfig] = None,
    ) -> VenueShard:
        """Build a shard from a raw radio map and register it."""
        return self.register(
            VenueShard.build(
                coerce_key(key),
                radio_map,
                differentiator,
                estimator=estimator,
                bisim_config=bisim_config,
            )
        )

    def deploy_from_artifact(
        self, path, *, key: Optional[str] = None
    ) -> VenueShard:
        """Warm-start a venue from a shard artifact and register it.

        No training, no radio map: the shard boots straight from the
        bundle written by :meth:`VenueShard.save` (or by
        ``python -m repro train``).
        """
        return self.register(VenueShard.load(path, key=key))

    def reload(self, key: Union[str, ShardKey], path) -> VenueShard:
        """Hot-swap a deployed venue's pipeline from a shard artifact.

        The shard object (and thus any reference held by callers)
        survives; its estimator/imputer are replaced and every cached
        answer for the venue is invalidated so stale locations cannot
        be served.  Atomic with respect to in-flight
        :meth:`query_batch` calls: the artifact is loaded and
        validated outside the lock, then the swap and the cache
        invalidation happen under the same lock cache reads take, and
        the shard's epoch bump stops batches computed against the old
        pipeline from re-caching stale answers afterwards.
        """
        key = coerce_key(key)
        shard = self.shard(key)
        fresh = VenueShard.load(path, key=key)
        with self._lock:
            shard._install(fresh)
            if fresh.precompute_fallback:
                self._c_fallbacks.add(1)
            for cache_key in [k for k in self._cache if k[0] == key]:
                del self._cache[cache_key]
        return shard

    def apply_delta(
        self,
        key: str,
        delta: RadioMapDelta,
        *,
        invalidate: str = "targeted",
        refresh_mask: str = "dirty",
    ) -> DeltaApplyReport:
        """Hot-apply an ingestion delta to a deployed venue.

        The post-delta pipeline is built entirely off the serving path
        (:meth:`VenueShard.prepare_delta`), then installed under the
        same lock cache reads take; the shard's epoch bump stops
        batches computed against the outgoing pipeline from re-caching
        stale answers, exactly as :meth:`reload` does.

        ``invalidate`` picks the cache policy:

        * ``"targeted"`` (default) — reconstruct each cached key's
          quantized fingerprint and evaluate it through the outgoing
          *and* incoming pipelines; only keys whose answer moved are
          dropped.  Resolution matches the cache's own contract
          (fingerprints within one ``cache_quantum`` share an entry),
          so an unaffected hot venue keeps its hit rate through the
          update.  Entries inserted while the update was being built
          are dropped conservatively.
        * ``"venue"`` — drop every entry of the venue (cheaper than
          two evaluation passes when the shard runs a heavy BiSIM
          imputer over a large cache).

        Applies are optimistic about concurrency: if another reload
        or apply swaps the venue's pipeline while this delta's update
        is being built, the install is aborted with a
        :class:`ServingError` (installing would silently discard the
        winner's data) — serialize appliers, or catch and re-apply.
        """
        if invalidate not in ("targeted", "venue"):
            raise ServingError(
                "invalidate must be 'targeted' or 'venue'"
            )
        start = time.perf_counter()
        shard = self.shard(key)
        old_pipeline = shard._pipeline
        old_epoch = shard.epoch
        prepared = shard.prepare_delta(delta, refresh_mask=refresh_mask)

        fresh_keys: set = set()
        if invalidate == "targeted" and self.cache_size:
            with self._lock:
                snapshot = [k for k in self._cache if k[0] == key]
            if snapshot:
                fps = self._fingerprints_from_keys(
                    [k[1] for k in snapshot]
                )
                old_loc = VenueShard._locate_with(old_pipeline, fps)
                new_loc = VenueShard._locate_with(
                    prepared.pipeline, fps
                )
                same = np.all(
                    np.isclose(old_loc, new_loc, rtol=0.0, atol=1e-9),
                    axis=1,
                )
                fresh_keys = {
                    k for k, keep in zip(snapshot, same) if keep
                }

        invalidated = kept = 0
        with self._lock:
            if shard.epoch != old_epoch:
                # Someone swapped the pipeline while we were building
                # (a concurrent reload or apply won the race).  Our
                # prepared update was built from the replaced source —
                # installing it would silently discard the winner's
                # data, so surface the conflict instead; the caller
                # re-applies against the fresh state.
                raise ServingError(
                    f"venue {key!r} changed while the delta was "
                    f"being prepared (epoch {old_epoch} -> "
                    f"{shard.epoch}); re-apply against the current "
                    "state"
                )
            shard._install_update(prepared)
            for cache_key in [k for k in self._cache if k[0] == key]:
                if cache_key in fresh_keys:
                    kept += 1
                else:
                    del self._cache[cache_key]
                    invalidated += 1
            self._c_deltas.add(1)
            self._c_delta_rows.add(prepared.rows)
            self._c_invalidated.add(invalidated)
            self._c_kept.add(kept)
        return DeltaApplyReport(
            venue=key,
            epoch=shard.epoch,
            rows=prepared.rows,
            paths=prepared.paths,
            invalidated=invalidated,
            kept=kept,
            seconds=time.perf_counter() - start,
        )

    def shard(self, key: Union[str, ShardKey]) -> VenueShard:
        if not isinstance(key, str):
            # Hot path: plain-string keys skip parsing entirely;
            # ShardKey instances render to their canonical string.
            key = coerce_key(key)
        try:
            return self._shards[key]
        except KeyError:
            raise ServingError(
                f"unknown venue {key!r}; deployed: {list(self.venues)}"
            ) from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, venue: str, fingerprint: np.ndarray) -> np.ndarray:
        """Locate one raw online fingerprint → ``(2,)``."""
        fp = np.asarray(fingerprint, dtype=float)
        return self.query_batch([venue], fp[None, :])[0]

    def query_batch(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Locate a batch of raw fingerprints → ``(n, 2)``.

        ``venues[i]`` names the shard for ``fingerprints[i]``; rows may
        mix venues freely.  ``fingerprints`` is either an ``(n, D)``
        ndarray — served zero-copy, whatever the venue mix, as long as
        every named shard expects ``D`` APs — or a sequence of
        ``(D_venue,)`` vectors, which also lets rows differ in AP
        count.  Cache hits are answered immediately; rows repeating an
        identical (venue, cache key) within the batch are computed
        once and fanned out (the repeats count as hits); the remaining
        misses are grouped per venue and go through each shard's
        batched complete→estimate path in one call.

        An ndarray batch never round-trips through per-row Python
        lists: rows are grouped into one contiguous stack per venue,
        and with caching disabled a batch goes straight to the shards
        with no key machinery at all (one venue: no grouping either).

        With a :class:`~repro.obs.Telemetry` attached, a sampled call
        opens a ``service.query_batch`` root span whose children
        cover the cache probe and each shard's complete→estimate
        stages (down to the spatial-index kernel stages when their
        timers are on); unsampled calls pay one counter read.
        """
        tracer = self.tracer
        if (
            tracer is not None
            and tracer.current() is None
            and tracer.sample()
        ):
            with tracer.trace(
                "service.query_batch", meta={"rows": len(venues)}
            ):
                return self._query_batch(venues, fingerprints)
        return self._query_batch(venues, fingerprints)

    def _query_batch(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
    ) -> np.ndarray:
        start = time.perf_counter()
        n = len(venues)
        if n != len(fingerprints):
            raise ServingError("venues/fingerprints length mismatch")

        if self._floor_routers and n:
            # Stacked venues: classify bare-venue rows onto their
            # floor shards before any shard is resolved.  Guarded so
            # a service with no routers attached takes the exact
            # single-floor code path.
            venues = self._route_floors(venues, fingerprints)

        if (
            n > 0
            and isinstance(fingerprints, np.ndarray)
            and fingerprints.ndim == 2
        ):
            distinct = set(venues)
            if len(distinct) == 1:
                venue = next(iter(distinct))
                shard = self.shard(venue)
                batch = shard._validate(fingerprints)
                if not self.cache_size:
                    return self._serve_uniform(
                        venue, shard, batch, start
                    )
                keys = self.cache_keys(venue, batch)
                return self._serve_rows(
                    venues, batch, keys, start, {venue: batch}
                )
            # Mixed venues over one (n, D) array: group rows into a
            # contiguous per-venue stack each — no per-row round trip.
            batch = np.asarray(fingerprints, dtype=float)
            varr = np.asarray(venues, dtype=object)
            groups: Dict[str, np.ndarray] = {}
            stacks = {}
            for venue in distinct:
                shard = self.shard(venue)
                if batch.shape[1] != shard.n_aps:
                    raise ServingError(
                        f"venue {venue!r} expects (n, {shard.n_aps}) "
                        f"queries, got {batch.shape}"
                    )
                rows = np.flatnonzero(varr == venue)
                groups[venue] = rows
                stacks[venue] = np.ascontiguousarray(batch[rows])
            if not self.cache_size:
                return self._serve_grouped(groups, stacks, n, start)
            keys = [None] * n
            for venue, rows in groups.items():
                venue_keys = self.cache_keys(venue, stacks[venue])
                for i, key in zip(rows.tolist(), venue_keys):
                    keys[i] = key
            return self._serve_rows(venues, batch, keys, start, stacks)

        # Ragged sequence batch (possibly mixed AP counts): validate
        # every row before touching stats or the cache, so a bad row
        # cannot leave the counters half-updated.
        rows_fp: List[np.ndarray] = []
        by_venue: Dict[str, List[int]] = {}
        for i, (venue, fingerprint) in enumerate(
            zip(venues, fingerprints)
        ):
            shard = self.shard(venue)
            fp = np.asarray(fingerprint, dtype=float)
            if fp.shape != (shard.n_aps,):
                raise ServingError(
                    f"venue {venue!r} expects ({shard.n_aps},) "
                    "fingerprints"
                )
            rows_fp.append(fp)
            by_venue.setdefault(venue, []).append(i)

        keys: List[Optional[CacheKey]] = [None] * n
        stacks: Dict[str, np.ndarray] = {}
        if self.cache_size:
            for venue, rows in by_venue.items():
                batch = np.stack([rows_fp[i] for i in rows])
                stacks[venue] = batch
                for i, key in zip(rows, self.cache_keys(venue, batch)):
                    keys[i] = key
        return self._serve_rows(venues, rows_fp, keys, start, stacks)

    def _serve_grouped(
        self,
        groups: Dict[str, np.ndarray],
        stacks: Dict[str, np.ndarray],
        n: int,
        start: float,
    ) -> np.ndarray:
        """Cache-off mixed-venue fast path: one locate per venue
        stack, vectorized fan-in, one stats publish."""
        tracer = self.tracer
        if tracer is not None and tracer.current() is None:
            tracer = None
        out = np.empty((n, 2))
        for venue, rows in groups.items():
            shard = self._shards[venue]
            out[rows] = (
                shard.locate(stacks[venue]) if tracer is None
                else shard.locate(stacks[venue], tracer=tracer)
            )
        with self._lock:
            for venue, rows in groups.items():
                self._venue_counter(venue).add(int(rows.size))
            elapsed = time.perf_counter() - start
            self._c_queries.add(n)
            self._c_batches.add(1)
            self._c_seconds.add(elapsed)
            self._h_latency.record_n(elapsed, n)
        return out

    def _serve_uniform(
        self,
        venue: str,
        shard: VenueShard,
        batch: np.ndarray,
        start: float,
    ) -> np.ndarray:
        """Cache-off single-venue fast path: one locate, one stats
        publish, no per-row bookkeeping."""
        tracer = self.tracer
        if tracer is not None and tracer.current() is None:
            tracer = None
        out = (
            shard.locate(batch) if tracer is None
            else shard.locate(batch, tracer=tracer)
        )
        n = batch.shape[0]
        with self._lock:
            self._venue_counter(venue).add(n)
            elapsed = time.perf_counter() - start
            self._c_queries.add(n)
            self._c_batches.add(1)
            self._c_seconds.add(elapsed)
            self._h_latency.record_n(elapsed, n)
        return out

    def _serve_rows(
        self,
        venues: Sequence[str],
        rows_fp: Sequence[np.ndarray],
        keys: Sequence[Optional[CacheKey]],
        start: float,
        stacks: Optional[Dict[str, np.ndarray]] = None,
    ) -> np.ndarray:
        """Serve pre-validated rows (the shared back half of
        :meth:`query_batch` and the micro-batching pipeline's flush).

        Three phases: cache lookup + duplicate coalescing under the
        lock, per-venue shard compute outside it, then fan-out /
        cache insertion / stats under the lock again.  ``stacks`` may
        carry per-venue ``(n_venue, D)`` arrays already stacked by the
        caller (for the cache keys); a venue whose rows all missed
        reuses its stack instead of re-stacking.
        """
        n = len(venues)
        tracer = self.tracer
        if tracer is not None and tracer.current() is None:
            tracer = None
        out = np.empty((n, 2))
        misses: Dict[str, List[int]] = {}
        fanout: Dict[int, List[int]] = {}
        leaders: Dict[CacheKey, int] = {}
        epochs: Dict[str, int] = {}
        # Counters accumulate locally and publish in ONE critical
        # section at the end, so a concurrent stats snapshot never
        # sees this batch's hits without its queries (or vice versa).
        hits = misses_count = 0
        with (
            tracer.span("cache") if tracer is not None
            else nullcontext()
        ):
            with self._lock:
                for i, venue in enumerate(venues):
                    key = keys[i]
                    if key is not None:
                        cached = self._cache.get(key)
                        if cached is not None:
                            self._cache.move_to_end(key)
                            hits += 1
                            out[i] = cached
                            continue
                        leader = leaders.get(key)
                        if leader is not None:
                            # Repeat of an in-batch miss: compute
                            # once, fan the answer out, count the
                            # repeat as a hit — the shard never sees
                            # the duplicate.
                            fanout[leader].append(i)
                            hits += 1
                            continue
                        leaders[key] = i
                        misses_count += 1
                    fanout[i] = []
                    misses.setdefault(venue, []).append(i)
                for venue in misses:
                    epochs[venue] = self._shards[venue].epoch

        # Per-venue tallies fold outside the lock; the critical
        # section below just merges one small dict.
        venue_counts = Counter(venues)
        computed: Dict[str, Tuple[List[int], np.ndarray]] = {}
        for venue, rows in misses.items():
            stack = stacks.get(venue) if stacks else None
            if stack is not None and len(rows) == len(stack):
                # Every row of the venue missed (cold cache): the
                # miss list equals the stacked batch, in order.
                batch = stack
            else:
                batch = np.stack([rows_fp[i] for i in rows])
            shard = self._shards[venue]
            located = (
                shard.locate(batch) if tracer is None
                else shard.locate(batch, tracer=tracer)
            )
            computed[venue] = (rows, located)

        with self._lock:
            for venue, (rows, located) in computed.items():
                # A reload between the phases means these answers came
                # from the replaced pipeline: still correct for their
                # requests (which arrived before the reload), but they
                # must not repopulate the freshly-invalidated cache.
                fresh = self._shards[venue].epoch == epochs[venue]
                for i, loc in zip(rows, located):
                    out[i] = loc
                    for j in fanout[i]:
                        out[j] = loc
                    if fresh:
                        self._cache_put(keys[i], loc)
            for venue, count in venue_counts.items():
                self._venue_counter(venue).add(count)
            elapsed = time.perf_counter() - start
            self._c_hits.add(hits)
            self._c_misses.add(misses_count)
            self._c_queries.add(n)
            self._c_batches.add(1)
            self._c_seconds.add(elapsed)
            self._h_latency.record_n(elapsed, n)
        return out

    def try_cached(
        self, venue: str, batch: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, List[Optional[CacheKey]]]:
        """Answer whatever of a pre-validated ``(n, D)`` single-venue
        batch the cache already holds.

        Returns ``(locations, hit_mask, keys)``: rows with
        ``hit_mask[i]`` set were answered (and counted as hits /
        queries); the rest should be served through
        :meth:`query_batch` or the pipeline, reusing ``keys`` to skip
        re-quantization.  With caching disabled every row misses.
        This is the submit-time fast path of the micro-batching
        pipeline — hits never enqueue at all.
        """
        n = batch.shape[0]
        out = np.empty((n, 2))
        hit = np.zeros(n, dtype=bool)
        if not self.cache_size:
            return out, hit, [None] * n
        start = time.perf_counter()
        keys: List[Optional[CacheKey]] = list(
            self.cache_keys(venue, batch)
        )
        with self._lock:
            hits = 0
            for i, key in enumerate(keys):
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    out[i] = cached
                    hit[i] = True
                    hits += 1
            if hits:
                elapsed = time.perf_counter() - start
                self._c_hits.add(hits)
                self._c_queries.add(hits)
                self._venue_counter(venue).add(hits)
                self._c_seconds.add(elapsed)
                self._h_latency.record_n(elapsed, hits)
        return out, hit, keys

    def reset_stats(self) -> None:
        """Zero every ``serving.*`` metric (and anything else living
        in this service's registry); counter handles stay valid."""
        with self._lock:
            self.metrics.reset()

    # ------------------------------------------------------------------
    # LRU cache on quantized fingerprints
    # ------------------------------------------------------------------
    def cache_keys(
        self, venue: str, batch: np.ndarray
    ) -> List[CacheKey]:
        """Cache keys for a ``(n, D)`` batch, quantized in one pass.

        Vectorizing the quantization over the batch is ~25x cheaper
        than keying row by row, which matters because every cached
        query pays this on the hot path.
        """
        quantized = np.round(batch / self.cache_quantum)
        # Missing readings get a sentinel far outside the RSSI range so
        # the observability pattern is part of the key; clipping keeps
        # tiny quanta from wrapping the integer cast into collisions.
        quantized = np.where(np.isfinite(quantized), quantized, 1e9)
        quantized = np.clip(quantized, -(2**31) + 1, 2**31 - 1)
        ints = quantized.astype(np.int32)
        return [(venue, ints[i].tobytes()) for i in range(len(ints))]

    def _fingerprints_from_keys(
        self, key_bytes: Sequence[bytes]
    ) -> np.ndarray:
        """Reconstruct quantized fingerprints from cache-key bytes.

        The inverse of :meth:`cache_keys` up to quantization: readings
        come back on the ``cache_quantum`` grid and the missing-AP
        sentinel maps back to NaN.  Good enough for delta-apply cache
        triage, because entries within one quantum already share a key
        (and an answer) by the cache's own design.
        """
        ints = np.stack(
            [np.frombuffer(b, dtype=np.int32) for b in key_bytes]
        )
        fps = ints.astype(float) * self.cache_quantum
        # The missing-reading sentinel (1e9, see cache_keys) sits far
        # outside any quantized RSSI, so it maps back unambiguously.
        fps[ints == 1_000_000_000] = np.nan
        return fps

    def _cache_key(
        self, venue: str, fingerprint: np.ndarray
    ) -> CacheKey:
        fp = np.asarray(fingerprint, dtype=float)
        return self.cache_keys(venue, fp[None, :])[0]

    def _cache_put(
        self, key: Optional[CacheKey], location: np.ndarray
    ) -> None:
        # Caller holds self._lock.
        if not self.cache_size or key is None:
            return
        self._cache[key] = location.copy()
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
