"""Thread-safe micro-batching front end for the positioning service.

Many worker threads submit *individual* queries; a single flusher
thread coalesces them into micro-batches and routes each batch through
:meth:`PositioningService.query_batch`'s batched impute→estimate path,
so concurrent traffic gets batched-path throughput without any caller
seeing more than its own request::

    pipeline = ServingPipeline(service, max_batch=256, max_delay_ms=2)
    with pipeline:
        ticket = pipeline.submit("kaide", scan)      # non-blocking
        location = ticket.result(timeout=5.0)        # (2,)
        location = pipeline.locate("kaide", scan)    # submit + wait

A micro-batch flushes when it reaches ``max_batch`` rows or when its
oldest request has waited ``max_delay_ms`` — the classic
size-or-deadline policy, so a lone request is never stuck behind an
empty queue and a burst is never chopped into tiny batches.

Two hot-path optimisations keep the per-request overhead near the
single-caller batched path:

* **submit-time cache fast path** — :meth:`ServingPipeline.submit_many`
  probes the service's LRU cache (vectorized quantization over the
  whole burst) before enqueueing anything; hits resolve their tickets
  immediately and never occupy a batch slot;
* **slim tickets** — completion is a plain flag plus one shared
  condition variable the flusher notifies once per batch, an order of
  magnitude cheaper than a :class:`concurrent.futures.Future` per
  request.

Requests are validated at submit time (unknown venue, wrong
fingerprint width) so a bad request fails fast in its caller and can
never poison the micro-batch it would have joined.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ServingError
from .service import CacheKey, PositioningService


@dataclass
class PipelineStats:
    """Counters of one :class:`ServingPipeline`.

    ``submitted`` counts every accepted request; ``fast_path_hits``
    the subset answered from the cache at submit time (they never
    enqueue); ``flushed`` the requests served through micro-batches.
    ``full_flushes`` / ``deadline_flushes`` / ``drain_flushes`` break
    the batches down by what triggered them (size reached, oldest
    request timed out, pipeline stop).
    """

    submitted: int = 0
    fast_path_hits: int = 0
    flushed: int = 0
    failed: int = 0
    batches: int = 0
    full_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    largest_batch: int = 0

    @property
    def mean_batch(self) -> float:
        return self.flushed / self.batches if self.batches else 0.0

    def render(self) -> str:
        return (
            f"submitted={self.submitted} "
            f"fast-path hits={self.fast_path_hits} "
            f"batches={self.batches} "
            f"(mean {self.mean_batch:.1f}, max {self.largest_batch}; "
            f"{self.full_flushes} full / "
            f"{self.deadline_flushes} deadline / "
            f"{self.drain_flushes} drain) failed={self.failed}"
        )


class Ticket:
    """One in-flight request's handle; resolved by the flusher.

    ``done_at`` is stamped (``time.perf_counter()``) when the result
    lands, so load harnesses can measure per-request latency without
    serializing on :meth:`result` calls.
    """

    __slots__ = ("_done_cv", "value", "error", "done", "done_at")

    def __init__(self, done_cv: threading.Condition):
        self._done_cv = done_cv
        self.value: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.done = False
        self.done_at = 0.0

    @classmethod
    def resolved(cls, value: np.ndarray) -> "Ticket":
        ticket = cls.__new__(cls)
        ticket._done_cv = None
        ticket.value = value
        ticket.error = None
        ticket.done = True
        ticket.done_at = time.perf_counter()
        return ticket

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the answer arrives → ``(2,)`` location."""
        if not self.done:
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            with self._done_cv:
                while not self.done:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise ServingError(
                            f"request timed out after {timeout}s"
                        )
                    self._done_cv.wait(remaining)
        if self.error is not None:
            raise self.error
        assert self.value is not None
        return self.value


#: One queued request: (venue, fingerprint, cache key, ticket,
#: enqueue time, span) — the enqueue stamp anchors the flush
#: deadline; ``span`` is the sampled request's root trace span (or
#: ``None``), opened in the submitting thread and finished by the
#: flusher when the answer lands.
_Entry = Tuple[
    str, np.ndarray, Optional[CacheKey], Ticket, float, object
]


class ServingPipeline:
    """Coalesces single queries from many threads into micro-batches.

    Parameters
    ----------
    service:
        The (thread-safe) :class:`PositioningService` to route through.
    max_batch:
        Flush as soon as this many requests are queued.
    max_delay_ms:
        Flush when the oldest queued request has waited this long,
        even if the batch is not full.  0 flushes eagerly (whatever is
        queued when the flusher wakes).

    Use as a context manager, or call :meth:`start` / :meth:`stop`
    explicitly; :meth:`stop` drains every queued request before
    returning.
    """

    def __init__(
        self,
        service: PositioningService,
        *,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
    ):
        if max_batch < 1:
            raise ServingError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ServingError("max_delay_ms must be >= 0")
        self.service = service
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1e3
        self.stats = PipelineStats()
        #: Queue-inclusive per-request latency (submit → ticket
        #: resolution), recorded into the service's registry — this
        #: is the histogram whose live p50/p95/p99 must agree with
        #: loadgen-measured percentiles, since both span queueing.
        self._h_latency = service.metrics.histogram(
            "pipeline.request_seconds"
        )
        self._queue: List[_Entry] = []
        self._mu = threading.Condition()
        self._done_cv = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingPipeline":
        with self._mu:
            if self._started:
                raise ServingError("pipeline already started")
            self._started = True
            self._thread = threading.Thread(
                target=self._run, name="serving-pipeline", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Drain the queue, resolve every ticket, stop the flusher."""
        with self._mu:
            if not self._started or self._stopping:
                return
            self._stopping = True
            self._mu.notify_all()
        assert self._thread is not None
        self._thread.join()

    def __enter__(self) -> "ServingPipeline":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self._stopping

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, venue: str, fingerprint: np.ndarray) -> Ticket:
        """Queue one raw fingerprint; returns immediately.

        Venue and shape are validated in the caller's thread (inside
        :meth:`submit_many`), so a bad request raises
        :class:`ServingError` at the call site instead of failing a
        whole micro-batch later.
        """
        fp = np.asarray(fingerprint, dtype=float)
        return self.submit_many(venue, fp[None, :])[0]

    def submit_many(
        self, venue: str, batch: np.ndarray
    ) -> List[Ticket]:
        """Queue a burst of same-venue scans; one ticket per row.

        The burst amortizes validation, cache probing (vectorized
        quantization) and queue locking over all its rows — this is
        the high-throughput submission path a gateway thread should
        use for a device's scan burst.
        """
        if not self.running:
            # Checked again under the lock below; failing before the
            # cache probe keeps a dead pipeline from mutating the
            # service stats for answers it will never deliver.
            raise ServingError("pipeline is not running")
        t0 = time.perf_counter()
        shard = self.service.shard(venue)
        rows = shard._validate(batch)
        out, hit, keys = self.service.try_cached(venue, rows)
        tracer = self.service.tracer
        tickets: List[Ticket] = []
        entries: List[_Entry] = []
        n_hits = 0
        now = time.perf_counter()
        for i in range(len(rows)):
            if hit[i]:
                tickets.append(Ticket.resolved(out[i]))
                n_hits += 1
            else:
                ticket = Ticket(self._done_cv)
                tickets.append(ticket)
                span = (
                    tracer.start("pipeline.request", {"venue": venue})
                    if tracer is not None and tracer.sample()
                    else None
                )
                entries.append(
                    (venue, rows[i], keys[i], ticket, now, span)
                )
        if n_hits:
            # Fast-path hits resolve in the submitting thread; their
            # queue-inclusive latency is just the probe time.
            self._h_latency.record_n(
                time.perf_counter() - t0, n_hits
            )
        with self._mu:
            if not self._started or self._stopping:
                raise ServingError("pipeline is not running")
            self.stats.submitted += len(rows)
            self.stats.fast_path_hits += n_hits
            if entries:
                self._queue.extend(entries)
                self._mu.notify()
        return tickets

    def locate(
        self,
        venue: str,
        fingerprint: np.ndarray,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Submit one scan and wait for its location → ``(2,)``."""
        return self.submit(venue, fingerprint).result(timeout)

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._mu:
                while not self._queue and not self._stopping:
                    self._mu.wait()
                if not self._queue:
                    return  # stopping, fully drained
                if self._stopping:
                    reason = "drain_flushes"
                elif len(self._queue) < self.max_batch:
                    # Deadline is anchored to the oldest request's
                    # enqueue time, so time already spent waiting
                    # behind a previous flush counts against it.
                    deadline = self._queue[0][4] + self.max_delay
                    while (
                        len(self._queue) < self.max_batch
                        and not self._stopping
                    ):
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            break
                        self._mu.wait(remaining)
                    reason = (
                        "full_flushes"
                        if len(self._queue) >= self.max_batch
                        else "drain_flushes"
                        if self._stopping
                        else "deadline_flushes"
                    )
                else:
                    reason = "full_flushes"
                batch = self._queue[: self.max_batch]
                del self._queue[: self.max_batch]
                setattr(
                    self.stats, reason, getattr(self.stats, reason) + 1
                )
            self._flush(batch)

    def _flush(self, batch: List[_Entry]) -> None:
        venues = [entry[0] for entry in batch]
        rows = [entry[1] for entry in batch]
        keys = [entry[2] for entry in batch]
        tracer = self.service.tracer
        spans = [entry[5] for entry in batch if entry[5] is not None]
        serve_span = None
        try:
            start = time.perf_counter()
            if spans and tracer is not None:
                # One serve span is shared by every sampled request
                # in the batch — the flusher serves them together, so
                # their trees share the batched stage breakdown.
                serve_span = tracer.start(
                    "serve", {"batch": len(batch)}
                )
                with tracer.activate(serve_span):
                    out = self.service._serve_rows(
                        venues, rows, keys, start
                    )
                serve_span.duration = time.perf_counter() - start
            else:
                out = self.service._serve_rows(venues, rows, keys, start)
        except BaseException as exc:  # resolve tickets, never die silent
            now = time.perf_counter()
            with self._done_cv:
                for entry in batch:
                    ticket = entry[3]
                    ticket.error = exc
                    ticket.done_at = now
                    ticket.done = True
                self._done_cv.notify_all()
            for entry in batch:
                if entry[5] is not None and tracer is not None:
                    entry[5].meta = {"error": type(exc).__name__}
                    tracer.finish(entry[5])
            self.stats.failed += len(batch)
            self.stats.batches += 1
            return
        now = time.perf_counter()
        with self._done_cv:
            for i, entry in enumerate(batch):
                ticket = entry[3]
                ticket.value = out[i]
                ticket.done_at = now
                ticket.done = True
            self._done_cv.notify_all()
        # Queue-inclusive per-request latency, vectorized over the
        # batch (one searchsorted, one scatter-add).
        self._h_latency.record_many(
            now - np.asarray([entry[4] for entry in batch])
        )
        if spans and tracer is not None:
            for entry in batch:
                root = entry[5]
                if root is None:
                    continue
                root.child(
                    "queue", duration=max(0.0, start - entry[4])
                )
                root.children.append(serve_span)
                root.duration = now - root.start
                tracer.finish(root)
        self.stats.flushed += len(batch)
        self.stats.batches += 1
        self.stats.largest_batch = max(
            self.stats.largest_batch, len(batch)
        )
