"""Fleet benchmark: multi-process shard fleet vs one-process service.

``python -m repro serve-bench --workers 4 --memory-budget-mb auto``
(and ``benchmarks/bench_fleet.py``) run this head-to-head:

* **baseline** — the existing single-process stack serving a
  city-scale venue pool the only way it can: a
  :class:`~repro.serving.ShardRegistry` lazily loading/evicting
  shards into a :class:`~repro.serving.PositioningService` under the
  memory budget, answering one request at a time (closed loop, the
  per-device gateway pattern).
* **fleet** — the same store, mapping and budget behind a
  :class:`~repro.serving.ShardFleet`: venues hash-partitioned across
  worker processes, requests bundled over pipes and served batched
  per venue per tick.

Both sides replay the *same* pre-generated Zipf-skewed request
stream (:func:`~repro.serving.loadgen.fleet_schedule`) from cold —
every lazy load, fast reload and eviction is paid inside the timed
window on both sides — and the per-request answers are compared
**bit-for-bit** (the pool's estimators use the batch-shape-invariant
exact-distance kernel, so batching must not change a single float).

The venues are deliberately small (default 96 records × 24 APs):
city fleets are many small maps, and small maps are the worst case
for per-request overhead — exactly what per-tick batching amortises.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

from ..artifacts import ArtifactStore
from ..experiments.base import ExperimentResult
from ..experiments.config import ExperimentConfig
from ..obs import histogram_percentiles_ms, percentiles_ms
from .fleet import ShardFleet, ShardRegistry
from .loadgen import fleet_schedule, synthetic_venue_pool
from .service import PositioningService


def _auto_budget_mb(
    store: ArtifactStore,
    mapping: Dict[str, str],
    *,
    fraction: float,
) -> float:
    """Budget sized to keep ~``fraction`` of the pool resident.

    Probes two venues (the pool alternates completion strategies, so
    adjacent venues bracket the footprint range) and scales their mean
    total footprint — resident plus mapped, the same sum the registry
    enforces — by the pool size.
    """
    probe = ShardRegistry(store, mapping)
    venues = sorted(mapping)
    samples = []
    for venue in venues[: min(2, len(venues))]:
        resident, mapped = probe.get(venue).footprint()
        samples.append(resident + mapped)
    probe.evict_all()
    per_shard = float(np.mean(samples))
    return fraction * len(mapping) * per_shard / (1 << 20)


def run(
    config: Optional[ExperimentConfig] = None,
    *,
    n_venues: int = 500,
    workers: int = 4,
    memory_budget_mb: Optional[float] = None,
    requests: Optional[int] = None,
    zipf_exponent: float = 1.1,
    bundle_size: int = 4096,
    window: int = 16384,
    resident_fraction: float = 0.4,
    seed: Optional[int] = None,
    store_root: Optional[str] = None,
) -> ExperimentResult:
    """Replay one Zipf stream against the fleet and the baseline.

    ``memory_budget_mb=None`` sizes the budget to hold roughly
    ``resident_fraction`` of the pool (default 40% — under half, so
    the Zipf tail keeps the eviction machinery honest on both sides).
    ``window`` is the fleet's open-loop backpressure limit: submission
    pauses while more than this many requests are in flight, which
    also bounds how much queueing delay the fleet's latency
    percentiles absorb.  The defaults run the fleet open-loop with
    large bundles — throughput mode: big ticks coalesce many requests
    per venue into one batched ``locate``, which is where the speedup
    comes from (fleet p50 latency is then dominated by queueing; drop
    ``bundle_size``/``window`` for a latency-oriented operating
    point).  ``seed`` fixes the venue pool and the request stream, so
    runs replay identically.

    The returned data carries everything the acceptance bars assert
    on: ``speedup``, both sides' lazy-load / fast-reload / eviction
    counters, per-worker utilization, and ``parity_exact`` — whether
    every fleet answer matched the baseline bit-for-bit.
    """
    if config is not None and seed is None:
        seed = config.dataset_seed
    base_seed = 0 if seed is None else int(seed)
    if requests is None:
        # Enough traffic that each open-loop tick revisits most of a
        # worker's venue partition — that coalescing is the fleet's
        # whole advantage, so undersized streams understate it.
        requests = max(2048, 32 * n_venues)

    rng = np.random.default_rng(base_seed)
    shards, pools = synthetic_venue_pool(n_venues, rng)
    schedule = fleet_schedule(
        pools,
        requests,
        np.random.default_rng(base_seed + 1),
        zipf_exponent=zipf_exponent,
    )

    tmp = None
    if store_root is None:
        tmp = tempfile.TemporaryDirectory(prefix="fleet-bench-")
        store_root = tmp.name
    try:
        store = ArtifactStore(store_root)
        mapping = {}
        t0 = time.perf_counter()
        for venue, shard in shards.items():
            shard.save(store.path_for(venue))
            mapping[venue] = venue
        build_s = time.perf_counter() - t0
        del shards  # both sides must serve from the store, not RAM

        if memory_budget_mb is None:
            memory_budget_mb = _auto_budget_mb(
                store, mapping, fraction=resident_fraction
            )

        # -- baseline: single process, one request at a time ---------
        # Both sides replay the stream twice: an untimed cold pass
        # (first-touch loads, spec caching, page cache, hot code
        # paths), then the timed steady-state pass — the same
        # methodology the load-test harness uses.  The reported
        # registry counters span both passes, so the cold lazy loads
        # are visible alongside the steady-state reload/evict churn.
        service = PositioningService(cache_size=0)
        registry = ShardRegistry(
            store,
            mapping,
            memory_budget_mb=memory_budget_mb,
            service=service,
        )
        for venue, row in schedule:  # untimed warm-up
            registry.get(venue)
            service.query(venue, row)
        base_lat: List[float] = []
        base_out = np.empty((len(schedule), 2))
        t0 = time.perf_counter()
        for i, (venue, row) in enumerate(schedule):
            t_req = time.perf_counter()
            registry.get(venue)
            base_out[i] = service.query(venue, row)
            base_lat.append(time.perf_counter() - t_req)
        base_elapsed = time.perf_counter() - t0
        base_stats = registry.stats

        # -- fleet: same store, same stream, same budget -------------
        fleet_lat: List[float] = []
        chunk = max(1, min(bundle_size, window // 2))
        with ShardFleet(
            store,
            mapping,
            workers=workers,
            memory_budget_mb=memory_budget_mb,
            bundle_size=bundle_size,
        ) as fleet:
            for start in range(0, len(schedule), chunk):  # warm-up
                fleet.submit_many(schedule[start : start + chunk])
                if fleet.outstanding > window:
                    fleet.wait_outstanding(window // 2, timeout=60.0)
            fleet.flush()
            fleet.wait_outstanding(0, timeout=120.0)
            # Re-baseline the live latency histogram so it spans
            # exactly the timed pass — the same requests the
            # ticket-derived percentiles below are computed from.
            fleet.telemetry.metrics.histogram(
                "fleet.request_seconds"
            ).reset()
            tickets = []
            submit_at = np.empty(len(schedule))
            t0 = time.perf_counter()
            for start in range(0, len(schedule), chunk):
                piece = schedule[start : start + chunk]
                submit_at[start : start + len(piece)] = (
                    time.perf_counter()
                )
                tickets.extend(fleet.submit_many(piece))
                if fleet.outstanding > window:
                    fleet.wait_outstanding(window // 2, timeout=60.0)
            fleet.flush()
            fleet.wait_outstanding(0, timeout=120.0)
            fleet_elapsed = time.perf_counter() - t0
            fleet_stats = fleet.stats()
            # Live percentiles straight off the server-side histogram
            # (submit → resolution, both passes) — the fleet's own
            # view of the latency distribution, no loadgen needed.
            live_pct = histogram_percentiles_ms(
                fleet.telemetry.metrics.histogram(
                    "fleet.request_seconds"
                )
            )

        parity_exact = True
        errors = 0
        for i, ticket in enumerate(tickets):
            if ticket.error is not None or ticket.value is None:
                errors += 1
                parity_exact = False
                continue
            fleet_lat.append(ticket.done_at - submit_at[i])
            if not np.array_equal(ticket.value, base_out[i]):
                parity_exact = False
    finally:
        if tmp is not None:
            tmp.cleanup()

    base_tput = len(schedule) / base_elapsed
    fleet_tput = len(schedule) / fleet_elapsed
    speedup = fleet_tput / base_tput if base_tput > 0 else 0.0
    base_pct = percentiles_ms(base_lat)
    fleet_pct = percentiles_ms(fleet_lat)
    per_worker = [
        {
            "worker": w.worker,
            "requests": w.requests,
            "utilization": w.utilization,
            "kernel_utilization": w.kernel_utilization,
            "mean_tick": w.mean_tick,
            "lazy_loads": w.registry.lazy_loads,
            "fast_reloads": w.registry.fast_reloads,
            "evictions": w.registry.evictions,
            "resident_venues": w.registry.resident_venues,
        }
        for w in fleet_stats.workers
    ]

    lines = [
        f"{n_venues} venues (zipf s={zipf_exponent}), "
        f"{len(schedule)} requests, budget "
        f"{memory_budget_mb:.1f}MB, seed {base_seed} "
        f"(pool built+saved in {build_s:.1f}s)",
        f"baseline 1-proc: {base_tput:>7.0f}/s "
        f"p50={base_pct['p50_ms']:.2f}ms "
        f"p95={base_pct['p95_ms']:.2f}ms "
        f"p99={base_pct['p99_ms']:.2f}ms | {base_stats.render()}",
        f"fleet {workers}-proc:  {fleet_tput:>7.0f}/s "
        f"p50={fleet_pct['p50_ms']:.2f}ms "
        f"p95={fleet_pct['p95_ms']:.2f}ms "
        f"p99={fleet_pct['p99_ms']:.2f}ms "
        f"(live hist p50={live_pct['p50_ms']:.2f}ms "
        f"p95={live_pct['p95_ms']:.2f}ms "
        f"p99={live_pct['p99_ms']:.2f}ms)",
        fleet_stats.render(),
        f"speedup {speedup:.2f}x | parity "
        f"{'bit-exact' if parity_exact else 'MISMATCH'} | "
        f"errors {errors}",
    ]

    return ExperimentResult(
        experiment_id="Shard fleet bench",
        rendered="\n".join(lines),
        data={
            "n_venues": n_venues,
            "workers": workers,
            "requests": len(schedule),
            "zipf_exponent": zipf_exponent,
            "memory_budget_mb": float(memory_budget_mb),
            "seed": base_seed,
            "speedup": speedup,
            "parity_exact": parity_exact,
            "errors": errors,
            "baseline": {
                "throughput": base_tput,
                **base_pct,
                "lazy_loads": base_stats.lazy_loads,
                "fast_reloads": base_stats.fast_reloads,
                "evictions": base_stats.evictions,
                "resident_venues": base_stats.resident_venues,
                "resident_bytes": base_stats.resident_bytes,
                "mapped_bytes": base_stats.mapped_bytes,
            },
            "fleet": {
                "throughput": fleet_tput,
                **fleet_pct,
                "lazy_loads": fleet_stats.lazy_loads,
                "fast_reloads": fleet_stats.fast_reloads,
                "evictions": fleet_stats.evictions,
                "resident_venues": fleet_stats.resident_venues,
                "resident_bytes": fleet_stats.resident_bytes,
                "mapped_bytes": fleet_stats.mapped_bytes,
                "respawns": fleet_stats.respawns,
                "kernel_utilization": fleet_stats.kernel_utilization,
                "per_worker": per_worker,
                "live_histogram": live_pct,
            },
        },
    )
