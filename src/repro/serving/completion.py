"""Query completion strategies (filling a fingerprint's unheard APs).

Every query reaching an estimator must be fully finite.  How the NaNs
get filled is the *completion* step of a shard's pipeline, and it is
where the PR-5 serving path spent most of its time on BiSIM venues:
:meth:`~repro.bisim.OnlineImputer.impute_batch` ran the trained
encoder over every batch.  The completers here make that a build-time
decision instead:

* :class:`MapCompletion` — the serving default for BiSIM shards.  The
  fully-imputed radio-map tensor is precomputed once at artifact-build
  time; at serve time a query's missing APs are filled from its
  nearest map records *measured over the observed APs only* (masked
  KNN against the precomputed tensor — two matmuls, no encoder).
  Fully-missing queries fall back to the per-AP fill values.
* :class:`MeanFillCompletion` — per-AP mean fill, the instant-deploy
  path for venues without a trained BiSIM.
* :class:`EncoderCompletion` — the PR-5 behaviour, kept for
  ingest-time refresh and as the degraded fallback when a shard
  artifact's precomputed tensor fails validation (``fallback=True``
  marks that case so the service can count it).

All completers are immutable after construction and safe to share
across threads; ``complete`` never mutates its input.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bisim import OnlineImputer
from ..exceptions import ServingError

__all__ = [
    "EncoderCompletion",
    "MapCompletion",
    "MeanFillCompletion",
    "completion_from",
]


class MeanFillCompletion:
    """Fill missing APs with the per-AP mean of the filled radio map."""

    def __init__(self, fill_values: np.ndarray):
        self.fill_values = np.asarray(fill_values, dtype=float)

    def complete(self, queries: np.ndarray) -> np.ndarray:
        return np.where(
            np.isfinite(queries), queries, self.fill_values[None, :]
        )


class EncoderCompletion:
    """Run the trained BiSIM encoder over the batch (PR-5 semantics)."""

    def __init__(self, online: OnlineImputer, *, fallback: bool = False):
        self.online = online
        #: True when this completer stands in for a precomputed tensor
        #: that failed validation — the service counts these.
        self.fallback = fallback

    def complete(self, queries: np.ndarray) -> np.ndarray:
        return self.online.impute_batch(queries, squeeze=False)


class MapCompletion:
    """Masked-KNN completion against the precomputed imputed map.

    ``precomputed`` is the fully-imputed ``(n_records, n_aps)``
    radio-map tensor written at artifact-build time (it may be a
    read-only memory map).  A query's missing APs are filled with the
    mean of its ``k`` nearest map records, where nearness is measured
    over the query's *observed* APs only — the masked expansion
    ``‖q_obs‖² + Σ_obs m² − 2·Σ_obs q·m`` costs two matmuls for the
    partially-observed rows and nothing for fully-observed ones.
    """

    def __init__(
        self,
        precomputed: np.ndarray,
        fill_values: Optional[np.ndarray],
        *,
        k: int = 3,
    ):
        tensor = np.asarray(precomputed)
        if tensor.ndim != 2 or tensor.shape[0] == 0:
            raise ServingError(
                "precomputed completion tensor must be (n, D)"
            )
        if not np.isfinite(tensor).all():
            raise ServingError(
                "precomputed completion tensor must be fully imputed"
            )
        self.precomputed = tensor
        self.fill_values = (
            None
            if fill_values is None
            else np.asarray(fill_values, dtype=float)
        )
        self.k = int(k)
        self._lazy: Optional[tuple] = None

    def _gram_state(self) -> tuple:
        # (map^T, per-dim squared map^T) — built on the first
        # partially-observed batch and cached; both are plain f64
        # copies so later matmuls never touch the memory map again.
        if self._lazy is None:
            dense = np.asarray(self.precomputed, dtype=float)
            self._lazy = (
                np.ascontiguousarray(dense.T),
                np.ascontiguousarray((dense * dense).T),
            )
        return self._lazy

    def complete(self, queries: np.ndarray) -> np.ndarray:
        q = np.asarray(queries, dtype=float)
        observed = np.isfinite(q)
        if observed.all():
            return q
        out = q.copy()
        any_obs = observed.any(axis=1)
        if not any_obs.all():
            fill = self.fill_values
            if fill is None:
                raise ServingError(
                    "fully-missing query and no fill values to complete it"
                )
            out[~any_obs] = fill
        partial = np.nonzero(any_obs & ~observed.all(axis=1))[0]
        if partial.size:
            map_t, map_sq_t = self._gram_state()
            qp = q[partial]
            mask = observed[partial]
            qz = np.where(mask, qp, 0.0)
            d2 = (
                (qz * qz).sum(axis=1)[:, None]
                + mask.astype(float) @ map_sq_t
                - 2.0 * (qz @ map_t)
            )
            k = min(self.k, self.precomputed.shape[0])
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            fills = np.asarray(self.precomputed, dtype=float)[idx].mean(
                axis=1
            )
            out[partial] = np.where(mask, qp, fills)
        return out


def completion_from(
    online: Optional[OnlineImputer],
    fill_values: Optional[np.ndarray],
):
    """The legacy completer for a pipeline without a precomputed map.

    Mirrors the PR-5 dispatch: a trained online imputer runs the
    encoder, otherwise per-AP mean fill; ``None`` when the pipeline
    has neither (such a shard cannot complete queries).
    """
    if online is not None:
        return EncoderCompletion(online)
    if fill_values is not None:
        return MeanFillCompletion(fill_values)
    return None
