"""Query completion strategies (filling a fingerprint's unheard APs).

Every query reaching an estimator must be fully finite.  How the NaNs
get filled is the *completion* step of a shard's pipeline, and it is
where the PR-5 serving path spent most of its time on BiSIM venues:
:meth:`~repro.bisim.OnlineImputer.impute_batch` ran the trained
encoder over every batch.  The completers here make that a build-time
decision instead:

* :class:`MapCompletion` — the serving default for BiSIM shards.  The
  fully-imputed radio-map tensor is precomputed once at artifact-build
  time; at serve time a query's missing APs are filled from its
  nearest map records *measured over the observed APs only* (masked
  KNN against the precomputed tensor — two matmuls, no encoder).
  Fully-missing queries fall back to the per-AP fill values.
* :class:`MeanFillCompletion` — per-AP mean fill, the instant-deploy
  path for venues without a trained BiSIM.
* :class:`EncoderCompletion` — the PR-5 behaviour, kept for
  ingest-time refresh and as the degraded fallback when a shard
  artifact's precomputed tensor fails validation (``fallback=True``
  marks that case so the service can count it).

All completers are immutable after construction and safe to share
across threads; ``complete`` never mutates its input.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..artifacts import backed_by_memmap
from ..bisim import OnlineImputer
from ..exceptions import ServingError

__all__ = [
    "EncoderCompletion",
    "MapCompletion",
    "MeanFillCompletion",
    "completion_from",
]


class MeanFillCompletion:
    """Fill missing APs with the per-AP mean of the filled radio map."""

    def __init__(self, fill_values: np.ndarray):
        self.fill_values = np.asarray(fill_values, dtype=float)

    def complete(self, queries: np.ndarray) -> np.ndarray:
        return np.where(
            np.isfinite(queries), queries, self.fill_values[None, :]
        )

    def resident_nbytes(self) -> int:
        return int(self.fill_values.nbytes)

    def mapped_nbytes(self) -> int:
        return 0


class EncoderCompletion:
    """Run the trained BiSIM encoder over the batch (PR-5 semantics)."""

    def __init__(self, online: OnlineImputer, *, fallback: bool = False):
        self.online = online
        #: True when this completer stands in for a precomputed tensor
        #: that failed validation — the service counts these.
        self.fallback = fallback
        self._nbytes: Optional[int] = None

    def complete(self, queries: np.ndarray) -> np.ndarray:
        return self.online.impute_batch(queries, squeeze=False)

    def resident_nbytes(self) -> int:
        # Best effort via the checkpoint payload (model weights +
        # context index); computed once — the registry only asks at
        # load/evict frequency.
        if self._nbytes is None:
            try:
                from ..bisim.checkpoint import online_payload

                _, arrays, _ = online_payload(self.online)
                self._nbytes = int(
                    sum(np.asarray(a).nbytes for a in arrays.values())
                )
            except Exception:
                self._nbytes = 0
        return self._nbytes

    def mapped_nbytes(self) -> int:
        return 0


class MapCompletion:
    """Masked-KNN completion against the precomputed imputed map.

    ``precomputed`` is the fully-imputed ``(n_records, n_aps)``
    radio-map tensor written at artifact-build time (it may be a
    read-only memory map).  A query's missing APs are filled with the
    mean of its ``k`` nearest map records, where nearness is measured
    over the query's *observed* APs only — the masked expansion
    ``‖q_obs‖² + Σ_obs m² − 2·Σ_obs q·m`` costs two matmuls for the
    partially-observed rows and nothing for fully-observed ones.

    A memory-mapped tensor is served *in place*: the cross-term GEMM
    reads the map through a transposed view, so the only derived state
    ever materialised is the per-dim squared matrix the mask term
    needs (built on the first partially-observed batch).  Evicting the
    completer therefore releases everything but that one matrix, and a
    shard whose queries arrive fully observed touches no tensor pages
    at all after the construction-time validation pass.
    """

    def __init__(
        self,
        precomputed: np.ndarray,
        fill_values: Optional[np.ndarray],
        *,
        k: int = 3,
    ):
        if not isinstance(precomputed, np.ndarray):
            precomputed = np.asarray(precomputed)
        if precomputed.ndim != 2 or precomputed.shape[0] == 0:
            raise ServingError(
                "precomputed completion tensor must be (n, D)"
            )
        if not np.isfinite(precomputed).all():
            raise ServingError(
                "precomputed completion tensor must be fully imputed"
            )
        if precomputed.dtype != np.float64:
            # One resident copy beats a per-batch upcast; shard
            # artifacts store float64, so this is the exotic case.
            precomputed = np.ascontiguousarray(precomputed, dtype=float)
        self.precomputed = precomputed
        self.fill_values = (
            None
            if fill_values is None
            else np.asarray(fill_values, dtype=float)
        )
        self.k = int(k)
        self._map_sq_t: Optional[np.ndarray] = None

    def _sq_state(self) -> np.ndarray:
        # Per-dim squared map, (D, N) — the one derived matrix the
        # masked expansion cannot read straight off the tensor.
        if self._map_sq_t is None:
            t = self.precomputed
            self._map_sq_t = np.ascontiguousarray((t * t).T)
        return self._map_sq_t

    def complete(self, queries: np.ndarray) -> np.ndarray:
        q = np.asarray(queries, dtype=float)
        observed = np.isfinite(q)
        if observed.all():
            return q
        out = q.copy()
        any_obs = observed.any(axis=1)
        if not any_obs.all():
            fill = self.fill_values
            if fill is None:
                raise ServingError(
                    "fully-missing query and no fill values to complete it"
                )
            out[~any_obs] = fill
        partial = np.nonzero(any_obs & ~observed.all(axis=1))[0]
        if partial.size:
            map_sq_t = self._sq_state()
            mask = observed[partial]
            # The gathered block doubles as the zero-filled query
            # matrix: fancy indexing already copied it out of ``out``,
            # so zeroing the missing slots in place saves the old
            # ``np.where`` allocation per batch.
            qz = out[partial]
            qz[~mask] = 0.0
            d2 = (
                (qz * qz).sum(axis=1)[:, None]
                + mask.astype(float) @ map_sq_t
                - 2.0 * (qz @ self.precomputed.T)
            )
            k = min(self.k, self.precomputed.shape[0])
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            fills = self.precomputed[idx].mean(axis=1)
            # Observed slots still hold the query values — only the
            # zeroed missing slots take the KNN fills.
            np.copyto(qz, fills, where=~mask)
            out[partial] = qz
        return out

    def resident_nbytes(self) -> int:
        """Bytes of completion state living in anonymous memory."""
        n = 0
        if not backed_by_memmap(self.precomputed):
            n += int(self.precomputed.nbytes)
        if self._map_sq_t is not None:
            n += int(self._map_sq_t.nbytes)
        if self.fill_values is not None:
            n += int(self.fill_values.nbytes)
        return n

    def mapped_nbytes(self) -> int:
        """Bytes of completion state served through a memory map."""
        if backed_by_memmap(self.precomputed):
            return int(self.precomputed.nbytes)
        return 0


def completion_from(
    online: Optional[OnlineImputer],
    fill_values: Optional[np.ndarray],
):
    """The legacy completer for a pipeline without a precomputed map.

    Mirrors the PR-5 dispatch: a trained online imputer runs the
    encoder, otherwise per-AP mean fill; ``None`` when the pipeline
    has neither (such a shard cannot complete queries).
    """
    if online is not None:
        return EncoderCompletion(online)
    if fill_values is not None:
        return MeanFillCompletion(fill_values)
    return None
