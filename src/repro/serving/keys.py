"""Parsed shard keys: the ``"venue/floor"`` convention, made real.

Since the serving layer first shipped, floors have been a *naming
trick*: ``"kaide/f1"`` was just a string the service, registry and
fleet all hashed and compared opaquely.  :class:`ShardKey` parses the
convention once so every layer can reason about it — most importantly
the fleet's partitioner, which must route **all floors of a venue to
the same worker** (one device's scans hop floors mid-walk; splitting a
venue's floors across workers would bounce its traffic between
processes).

Bare venue strings remain first-class (``floor=None``) — the
single-floor world is the compatibility baseline, and every API that
takes a key keeps accepting plain strings via :func:`coerce_key`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..exceptions import ServingError

#: The separator between venue and floor in rendered keys.
KEY_SEPARATOR = "/"


@dataclass(frozen=True)
class ShardKey:
    """One shard address: a venue, optionally a floor within it.

    ``ShardKey("kaide")`` is a whole single-floor venue;
    ``ShardKey("kaide", "f2")`` is one slab of a stacked venue.  The
    rendered form round-trips through :meth:`parse`.
    """

    venue: str
    floor: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.venue:
            raise ServingError("shard key needs a non-empty venue")
        if KEY_SEPARATOR in self.venue:
            raise ServingError(
                f"venue {self.venue!r} must not contain "
                f"{KEY_SEPARATOR!r} (use the floor field)"
            )
        if self.floor is not None and (
            not self.floor
            or any(
                not seg for seg in self.floor.split(KEY_SEPARATOR)
            )
        ):
            raise ServingError(
                f"malformed shard key floor {self.floor!r}"
            )

    @classmethod
    def parse(cls, key: Union[str, "ShardKey"]) -> "ShardKey":
        """Parse ``"venue"`` / ``"venue/floor"`` (or pass through).

        The *first* separator splits venue from floor; anything after
        it belongs to the floor id (artifact-style dotted/dashed floor
        ids survive).
        """
        if isinstance(key, ShardKey):
            return key
        if not isinstance(key, str):
            raise ServingError(
                f"shard key must be a str or ShardKey, got "
                f"{type(key).__name__}"
            )
        if KEY_SEPARATOR not in key:
            return cls(venue=key)
        venue, floor = key.split(KEY_SEPARATOR, 1)
        if not venue or not floor:
            raise ServingError(
                f"malformed shard key {key!r}: expected "
                "'venue' or 'venue/floor'"
            )
        return cls(venue=venue, floor=floor)

    def render(self) -> str:
        if self.floor is None:
            return self.venue
        return f"{self.venue}{KEY_SEPARATOR}{self.floor}"

    def __str__(self) -> str:
        return self.render()

    def with_floor(self, floor: Optional[str]) -> "ShardKey":
        return ShardKey(venue=self.venue, floor=floor)


def coerce_key(key: Union[str, "ShardKey"]) -> str:
    """Canonical string form of any accepted key spelling.

    The deprecation shim for the stringly-typed era: plain strings
    pass through *validated* (so ``"a//b"`` fails loudly instead of
    routing nowhere), and :class:`ShardKey` instances render to the
    same canonical string the registries index on.
    """
    return ShardKey.parse(key).render()
