"""Serving subsystem: deployable multi-venue positioning on the
batched query path.

Serving API
-----------
* :class:`VenueShard` — one venue/floor deployment; built from a raw
  radio map by running differentiate → impute → fit-estimator offline
  (cold start), or loaded from a shard artifact written by
  :meth:`VenueShard.save` / ``python -m repro train`` (warm start,
  no training); ``reload()`` hot-swaps a live shard from an artifact.
  Online queries go through the batched impute→estimate path either
  way.
* :class:`PositioningService` — the shard registry; routes mixed-venue
  fingerprint batches, caches answers in an LRU keyed on quantized
  fingerprints, and tracks latency/throughput in
  :class:`ServiceStats`.
* :class:`ServingPipeline` — thread-safe micro-batching front end:
  many worker threads submit individual queries, one flusher thread
  coalesces them (flush on ``max_batch`` rows or ``max_delay_ms``)
  and routes them through the batched query path; a submit-time cache
  fast path answers re-scans without enqueueing.
* :mod:`repro.serving.loadgen` — the ``python -m repro load-test``
  concurrent workload generator: replays scenario mixes (Zipf venue
  skew, device re-scan duplicates, burst vs steady arrival) and
  reports p50/p95/p99 latency plus aggregate throughput.
* :mod:`repro.serving.bench` — the ``python -m repro serve-bench``
  throughput benchmark comparing the batched path against the old
  per-query loop.

Fleet API (city scale)
----------------------
* :class:`ShardRegistry` — venue → artifact-key registry that lazily
  loads shards from an :class:`~repro.artifacts.ArtifactStore` on
  first query (memory-mapping the precomputed tensors), keeps an LRU
  over resident venues, and evicts the coldest when a configurable
  memory budget is exceeded; :class:`RegistryStats` counts lazy
  loads, fast (mmap re-attach) reloads, evictions and bytes.
* :class:`ShardFleet` — multi-process serving: venues are
  hash-partitioned (:func:`partition_venue`) across worker processes,
  each owning a private registry; requests are bundled over pipes,
  served batched per venue per tick (bit-identical to per-request
  serving), and crashed workers are respawned with their in-flight
  work resubmitted.  :class:`FleetStats` /
  :class:`WorkerStats` aggregate per-worker counters.
* :mod:`repro.serving.fleetbench` — the
  ``python -m repro serve-bench --workers N`` fleet-vs-single-process
  benchmark over a synthetic city venue pool
  (:func:`~repro.serving.loadgen.synthetic_venue_pool`).

Floor routing (stacked venues)
------------------------------
* :class:`ShardKey` — parsed ``"venue/floor"`` shard address;
  :func:`coerce_key` is the deprecation shim keeping bare venue
  strings first-class everywhere a key is accepted.
* :class:`FloorClassifier` / :class:`FloorRouter` — fingerprint →
  floor classification ahead of 2D positioning, so a query addressed
  to a bare stacked venue is routed to the right per-floor shard
  (``PositioningService.attach_floor_router``), not rejected.
* :func:`deploy_floors` / :func:`save_floor_deployment` /
  :func:`load_floor_deployment` — deploy every floor of a
  :class:`~repro.venue.Venue` as per-floor shards plus one
  ``serving.floors`` classifier artifact, and warm-start the whole
  stack from an :class:`~repro.artifacts.ArtifactStore`.

See ``examples/serving_demo.py`` for an end-to-end mixed-venue demo
and ``examples/concurrent_serving.py`` for the pipeline under
multi-threaded load.
"""

from .completion import (
    EncoderCompletion,
    MapCompletion,
    MeanFillCompletion,
)
from .fleet import (
    FleetStats,
    RegistryStats,
    ShardFleet,
    ShardRegistry,
    WorkerStats,
    partition_venue,
)
from .floors import (
    FLOORS_KIND,
    FloorClassifier,
    FloorRouter,
    deploy_floors,
    load_floor_deployment,
    save_floor_deployment,
)
from .keys import KEY_SEPARATOR, ShardKey, coerce_key
from .loadgen import (
    DEFAULT_MIX,
    DEFAULT_SCENARIO,
    DRIFT_SCENARIO,
    LoadReport,
    Scenario,
    fleet_schedule,
    run_scenario,
    scan_pool,
    synthetic_venue_pool,
    zipf_weights,
)
from .pipeline import PipelineStats, ServingPipeline, Ticket
from .service import (
    SHARD_KIND,
    DeltaApplyReport,
    PositioningService,
    ServiceStats,
    VenueShard,
)

__all__ = [
    "DEFAULT_MIX",
    "DEFAULT_SCENARIO",
    "DRIFT_SCENARIO",
    "DeltaApplyReport",
    "EncoderCompletion",
    "FLOORS_KIND",
    "FleetStats",
    "FloorClassifier",
    "FloorRouter",
    "KEY_SEPARATOR",
    "LoadReport",
    "MapCompletion",
    "MeanFillCompletion",
    "PipelineStats",
    "PositioningService",
    "RegistryStats",
    "Scenario",
    "ServingPipeline",
    "SHARD_KIND",
    "ServiceStats",
    "ShardFleet",
    "ShardKey",
    "ShardRegistry",
    "Ticket",
    "VenueShard",
    "WorkerStats",
    "coerce_key",
    "deploy_floors",
    "fleet_schedule",
    "load_floor_deployment",
    "partition_venue",
    "run_scenario",
    "save_floor_deployment",
    "scan_pool",
    "synthetic_venue_pool",
    "zipf_weights",
]
