"""Serving subsystem: deployable multi-venue positioning on the
batched query path.

Serving API
-----------
* :class:`VenueShard` — one venue/floor deployment; built from a raw
  radio map by running differentiate → impute → fit-estimator offline,
  then serving online queries through the batched impute→estimate path.
* :class:`PositioningService` — the shard registry; routes mixed-venue
  fingerprint batches, caches answers in an LRU keyed on quantized
  fingerprints, and tracks latency/throughput in
  :class:`ServiceStats`.
* :mod:`repro.serving.bench` — the ``python -m repro serve-bench``
  throughput benchmark comparing the batched path against the old
  per-query loop.

See ``examples/serving_demo.py`` for an end-to-end mixed-venue demo.
"""

from .service import PositioningService, ServiceStats, VenueShard

__all__ = [
    "PositioningService",
    "ServiceStats",
    "VenueShard",
]
