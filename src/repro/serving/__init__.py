"""Serving subsystem: deployable multi-venue positioning on the
batched query path.

Serving API
-----------
* :class:`VenueShard` — one venue/floor deployment; built from a raw
  radio map by running differentiate → impute → fit-estimator offline
  (cold start), or loaded from a shard artifact written by
  :meth:`VenueShard.save` / ``python -m repro train`` (warm start,
  no training); ``reload()`` hot-swaps a live shard from an artifact.
  Online queries go through the batched impute→estimate path either
  way.
* :class:`PositioningService` — the shard registry; routes mixed-venue
  fingerprint batches, caches answers in an LRU keyed on quantized
  fingerprints, and tracks latency/throughput in
  :class:`ServiceStats`.
* :mod:`repro.serving.bench` — the ``python -m repro serve-bench``
  throughput benchmark comparing the batched path against the old
  per-query loop.

See ``examples/serving_demo.py`` for an end-to-end mixed-venue demo.
"""

from .service import (
    SHARD_KIND,
    PositioningService,
    ServiceStats,
    VenueShard,
)

__all__ = [
    "PositioningService",
    "SHARD_KIND",
    "ServiceStats",
    "VenueShard",
]
