"""Serving subsystem: deployable multi-venue positioning on the
batched query path.

Serving API
-----------
* :class:`VenueShard` — one venue/floor deployment; built from a raw
  radio map by running differentiate → impute → fit-estimator offline
  (cold start), or loaded from a shard artifact written by
  :meth:`VenueShard.save` / ``python -m repro train`` (warm start,
  no training); ``reload()`` hot-swaps a live shard from an artifact.
  Online queries go through the batched impute→estimate path either
  way.
* :class:`PositioningService` — the shard registry; routes mixed-venue
  fingerprint batches, caches answers in an LRU keyed on quantized
  fingerprints, and tracks latency/throughput in
  :class:`ServiceStats`.
* :class:`ServingPipeline` — thread-safe micro-batching front end:
  many worker threads submit individual queries, one flusher thread
  coalesces them (flush on ``max_batch`` rows or ``max_delay_ms``)
  and routes them through the batched query path; a submit-time cache
  fast path answers re-scans without enqueueing.
* :mod:`repro.serving.loadgen` — the ``python -m repro load-test``
  concurrent workload generator: replays scenario mixes (Zipf venue
  skew, device re-scan duplicates, burst vs steady arrival) and
  reports p50/p95/p99 latency plus aggregate throughput.
* :mod:`repro.serving.bench` — the ``python -m repro serve-bench``
  throughput benchmark comparing the batched path against the old
  per-query loop.

See ``examples/serving_demo.py`` for an end-to-end mixed-venue demo
and ``examples/concurrent_serving.py`` for the pipeline under
multi-threaded load.
"""

from .completion import (
    EncoderCompletion,
    MapCompletion,
    MeanFillCompletion,
)
from .loadgen import (
    DEFAULT_MIX,
    DEFAULT_SCENARIO,
    DRIFT_SCENARIO,
    LoadReport,
    Scenario,
    run_scenario,
    scan_pool,
    zipf_weights,
)
from .pipeline import PipelineStats, ServingPipeline, Ticket
from .service import (
    SHARD_KIND,
    DeltaApplyReport,
    PositioningService,
    ServiceStats,
    VenueShard,
)

__all__ = [
    "DEFAULT_MIX",
    "DEFAULT_SCENARIO",
    "DRIFT_SCENARIO",
    "DeltaApplyReport",
    "EncoderCompletion",
    "LoadReport",
    "MapCompletion",
    "MeanFillCompletion",
    "PipelineStats",
    "PositioningService",
    "Scenario",
    "ServingPipeline",
    "SHARD_KIND",
    "ServiceStats",
    "Ticket",
    "VenueShard",
    "run_scenario",
    "scan_pool",
    "zipf_weights",
]
