"""Concurrent-workload generator and latency harness
(``python -m repro load-test``).

Replays configurable scenario mixes against a deployed
:class:`~repro.serving.PositioningService` through the micro-batching
:class:`~repro.serving.ServingPipeline`, from many worker threads,
and reports per-request latency percentiles (p50/p95/p99) plus
aggregate throughput — the serving numbers that matter under real
traffic, which a single-caller benchmark cannot measure.

A :class:`Scenario` controls the traffic shape along the axes the
paper's serving regime cares about:

* **venue skew** — workers pick a venue per burst from a Zipf
  distribution over the deployed venues (``zipf_exponent=0`` is
  uniform), so hot venues dominate like real mall traffic;
* **device re-scans** — with probability ``duplicate_rate`` a worker
  repeats its previous scan exactly (phones re-scan several times per
  second while stationary), which the service should answer from its
  quantized-fingerprint cache;
* **arrival pattern** — ``"burst"`` workers submit ``burst_size``
  scans back to back then collect the results (a device gateway
  draining a scan buffer); ``"steady"`` workers wait for each answer
  before sending the next (closed-loop, one outstanding request).

Venues may differ in AP count — each worker burst targets one venue,
so mixed-AP-count deployments exercise the per-venue routing.

Every worker's whole request schedule (venues, scan indices,
duplicate flags) is pre-generated before the clock starts, so the
measured window contains only submit → serve → collect work.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import TopoACDifferentiator
from ..datasets import Dataset
from ..exceptions import ServingError
from ..experiments.base import ExperimentResult
from ..experiments.config import ExperimentConfig
from ..experiments.runner import get_dataset
from ..obs import Telemetry, histogram_percentiles_ms, percentiles_ms
from ..positioning import WKNNEstimator
from .completion import MapCompletion
from .pipeline import ServingPipeline, Ticket
from .service import PositioningService, VenueShard

#: Venues the CLI stage deploys (mixed AP counts: WiFi + Bluetooth).
LOAD_VENUES = ("kaide", "longhu")


@dataclass(frozen=True)
class Scenario:
    """One traffic shape for the load generator.

    ``drift_applies`` turns the scenario into a *drift* workload: that
    many ingestion deltas are hot-applied to a venue while the query
    traffic runs (see :func:`run_scenario`'s ``drift_fn``), exercising
    the epoch/atomic-swap machinery and targeted cache invalidation
    under fire.
    """

    name: str
    duplicate_rate: float = 0.0
    zipf_exponent: float = 0.0
    arrival: str = "burst"
    burst_size: int = 32
    drift_applies: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ServingError("duplicate_rate must be in [0, 1]")
        if self.zipf_exponent < 0:
            raise ServingError("zipf_exponent must be >= 0")
        if self.arrival not in ("burst", "steady"):
            raise ServingError("arrival must be 'burst' or 'steady'")
        if self.burst_size < 1:
            raise ServingError("burst_size must be >= 1")
        if self.drift_applies < 0:
            raise ServingError("drift_applies must be >= 0")


#: The default scenario: skewed venues, device re-scans, gateway
#: bursts — the mix the acceptance throughput bar is measured on.
DEFAULT_SCENARIO = Scenario(
    "default",
    duplicate_rate=0.5,
    zipf_exponent=1.1,
    arrival="burst",
    burst_size=64,
)

#: Signal drift under traffic: crowdsourced survey deltas hot-apply
#: to a live venue while skewed re-scan-heavy queries keep coming.
#: Opt-in via ``load-test --drift`` (it mutates the deployed shards).
DRIFT_SCENARIO = Scenario(
    "drift",
    duplicate_rate=0.3,
    zipf_exponent=1.1,
    arrival="burst",
    burst_size=32,
    drift_applies=4,
)

#: The CLI's default scenario mix.
DEFAULT_MIX: Tuple[Scenario, ...] = (
    DEFAULT_SCENARIO,
    Scenario("steady-uniform", arrival="steady"),
    Scenario(
        "zipf-burst",
        zipf_exponent=1.4,
        arrival="burst",
        burst_size=32,
        duplicate_rate=0.2,
    ),
    Scenario(
        "rescan-heavy",
        duplicate_rate=0.8,
        arrival="burst",
        burst_size=32,
    ),
)


def zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised Zipf rank weights (exponent 0 → uniform)."""
    if n < 1:
        raise ServingError("need at least one venue")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** -float(exponent)
    return weights / weights.sum()


def scan_pool(
    dataset: Dataset, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Simulate ``n`` raw device scans across the venue's RPs."""
    rps = dataset.venue.reference_points
    picks = rng.integers(0, len(rps), size=n)
    return np.stack(
        [dataset.channel.measure(rps[i], rng).rssi for i in picks]
    )


def synthetic_venue_pool(
    n_venues: int,
    rng: np.random.Generator,
    *,
    n_records: int = 96,
    n_aps: int = 24,
    scans_per_venue: int = 32,
    missing_rate: float = 0.25,
    floors_per_venue: int = 1,
) -> Tuple[Dict[str, VenueShard], Dict[str, np.ndarray]]:
    """A city-scale venue pool: ``n_venues`` small shards + scan pools.

    Each venue is an independent log-distance-path-loss radio map
    (its own AP layout), fitted with a
    :class:`~repro.positioning.WKNNEstimator` built with
    ``exact_distances=True`` — the batch-shape-invariant distance
    kernel, so a fleet worker answering a venue's requests as one
    per-tick batch returns **bit-identical** locations to a
    single-process service answering them one at a time.  Alternate
    venues complete queries against a precomputed
    :class:`~repro.serving.MapCompletion` tensor (the memory-mapped
    artifact path) vs plain per-AP mean fill, so a fleet over the pool
    exercises both completion strategies.

    Scan pools carry NaN holes at ``missing_rate`` to exercise the
    completion step.  Returns ``(shards, pools)`` keyed by venue name;
    save the shards into an :class:`~repro.artifacts.ArtifactStore`
    to serve them through a lazy
    :class:`~repro.serving.ShardRegistry`.

    ``floors_per_venue > 1`` turns every venue into a stack: keys
    become ``"venue-0000/f1"``, ``"venue-0000/f2"``, … with an
    independent shard per floor.  All floors of a venue hash to the
    same fleet worker (:func:`~repro.serving.partition_venue` hashes
    the venue component), so the fleet benchmarks can measure
    co-located stacked-venue traffic without any other change.
    """
    if n_venues < 1:
        raise ServingError("need at least one venue")
    if floors_per_venue < 1:
        raise ServingError("need at least one floor per venue")
    side = 150.0
    shards: Dict[str, VenueShard] = {}
    pools: Dict[str, np.ndarray] = {}
    for i in range(n_venues):
        for j in range(floors_per_venue):
            venue = f"venue-{i:04d}"
            if floors_per_venue > 1:
                venue = f"{venue}/f{j + 1}"
            aps = rng.uniform(0.0, side, size=(n_aps, 2))
            rps = rng.uniform(0.0, side, size=(n_records, 2))
            dist = np.linalg.norm(
                rps[:, None, :] - aps[None, :, :], axis=2
            )
            rssi = -30.0 - 30.0 * np.log10(np.maximum(dist, 1.0))
            rssi += rng.normal(0.0, 3.0, size=rssi.shape)
            fp = np.clip(rssi, -95.0, -20.0)
            estimator = WKNNEstimator(exact_distances=True).fit(
                fp, rps
            )
            fill_values = fp.mean(axis=0)
            completion = (
                MapCompletion(fp, fill_values) if i % 2 else None
            )
            shards[venue] = VenueShard(
                venue, n_aps, estimator, None, fill_values, completion
            )
            scan_rps = rps[
                rng.integers(0, n_records, size=scans_per_venue)
            ]
            sdist = np.linalg.norm(
                scan_rps[:, None, :] - aps[None, :, :], axis=2
            )
            scans = np.clip(
                -30.0
                - 30.0 * np.log10(np.maximum(sdist, 1.0))
                + rng.normal(0.0, 3.0, size=sdist.shape),
                -95.0,
                -20.0,
            )
            scans[rng.random(scans.shape) < missing_rate] = np.nan
            pools[venue] = scans
    return shards, pools


def fleet_schedule(
    pools: Dict[str, np.ndarray],
    requests: int,
    rng: np.random.Generator,
    *,
    zipf_exponent: float = 1.1,
) -> List[Tuple[str, np.ndarray]]:
    """A flat Zipf-skewed request stream over the whole venue pool.

    Unlike :func:`_make_schedule` (per-thread device bursts against a
    handful of venues), this draws the venue **per request** from a
    Zipf distribution over all of ``pools`` — hundreds of venues — so
    replaying it against a memory-budgeted fleet produces the real
    mix: a hot head that stays resident and batches well, and a long
    cold tail that forces lazy loads and evictions.  Pre-generated so
    the measured window is submit → serve → collect only.
    """
    if requests < 1:
        raise ServingError("need at least one request")
    venues = sorted(pools)
    weights = zipf_weights(len(venues), zipf_exponent)
    venue_picks = rng.choice(len(venues), size=requests, p=weights)
    schedule: List[Tuple[str, np.ndarray]] = []
    for vi in venue_picks:
        venue = venues[vi]
        pool = pools[venue]
        schedule.append(
            (venue, pool[int(rng.integers(0, len(pool)))])
        )
    return schedule


@dataclass
class LoadReport:
    """Latency/throughput summary of one scenario run."""

    scenario: Scenario
    threads: int
    requests: int
    errors: int
    elapsed: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float
    hit_rate: float
    per_venue: Dict[str, int] = field(default_factory=dict)
    applies: int = 0
    apply_mean_ms: float = 0.0

    @property
    def throughput(self) -> float:
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        venues = " ".join(
            f"{v}:{c}" for v, c in sorted(self.per_venue.items())
        )
        drift = (
            f" applies={self.applies}@{self.apply_mean_ms:.1f}ms"
            if self.applies
            else ""
        )
        return (
            f"{self.scenario.name:>14} {self.threads:>3}thr "
            f"{self.requests:>6}req "
            f"p50={1e3 * self.p50_ms:.0f}us "
            f"p95={1e3 * self.p95_ms:.0f}us "
            f"p99={1e3 * self.p99_ms:.0f}us "
            f"{self.throughput:>8.0f}/s "
            f"hits={100 * self.hit_rate:.0f}% "
            f"errors={self.errors}{drift} [{venues}]"
        )


def _make_schedule(
    pools: Dict[str, np.ndarray],
    scenario: Scenario,
    requests: int,
    rng: np.random.Generator,
) -> List[Tuple[str, np.ndarray]]:
    """Pre-generate one worker's bursts: ``[(venue, (B, D) scans)]``.

    Each burst models one device in one venue; rows repeat the
    previous scan with probability ``duplicate_rate`` (exact repeats,
    so they land on the same quantized cache key).
    """
    venues = sorted(pools)
    weights = zipf_weights(len(venues), scenario.zipf_exponent)
    burst = scenario.burst_size if scenario.arrival == "burst" else 1
    schedule: List[Tuple[str, np.ndarray]] = []
    remaining = requests
    while remaining > 0:
        size = min(burst, remaining)
        remaining -= size
        venue = venues[rng.choice(len(venues), p=weights)]
        pool = pools[venue]
        picks = rng.integers(0, len(pool), size=size)
        dup = rng.random(size) < scenario.duplicate_rate
        dup[0] = False
        for i in range(1, size):
            if dup[i]:
                picks[i] = picks[i - 1]
        schedule.append((venue, pool[picks]))
    return schedule


def run_scenario(
    pipeline: ServingPipeline,
    pools: Dict[str, np.ndarray],
    scenario: Scenario,
    *,
    threads: int = 8,
    requests_per_thread: int = 256,
    seed: int = 0,
    timeout: float = 60.0,
    drift_fn: Optional[Callable[[], object]] = None,
    drift_interval: float = 0.01,
) -> LoadReport:
    """Replay one scenario from ``threads`` workers; measure latency.

    Per-request latency is ``ticket.done_at - submit time`` (the
    flusher stamps completion), so collecting a burst's results in
    order does not inflate later rows' latencies.

    When the scenario carries ``drift_applies > 0`` and a ``drift_fn``
    is given, a driver thread invokes it that many times during the
    run (``drift_interval`` seconds apart) — each call is expected to
    hot-apply one ingestion delta — and the report records the
    successful apply count and mean apply latency; a call that raises
    counts into the report's ``errors`` instead of dying silently.
    """
    if threads < 1:
        raise ServingError("need at least one worker thread")
    schedules = [
        _make_schedule(
            pools,
            scenario,
            requests_per_thread,
            np.random.default_rng(seed * 7919 + wid),
        )
        for wid in range(threads)
    ]
    latencies: List[np.ndarray] = [np.empty(0)] * threads
    errors = [0] * threads
    start_gate = threading.Event()

    def worker(wid: int) -> None:
        lats: List[float] = []
        fails = 0
        start_gate.wait()
        for venue, scans in schedules[wid]:
            if scenario.arrival == "steady":
                for row in scans:
                    t0 = time.perf_counter()
                    try:
                        ticket = pipeline.submit(venue, row)
                        ticket.result(timeout)
                    except Exception:
                        fails += 1
                        continue
                    lats.append(ticket.done_at - t0)
            else:
                t0 = time.perf_counter()
                try:
                    tickets: List[Ticket] = pipeline.submit_many(
                        venue, scans
                    )
                except Exception:
                    fails += len(scans)
                    continue
                for ticket in tickets:
                    try:
                        ticket.result(timeout)
                    except Exception:
                        fails += 1
                        continue
                    lats.append(ticket.done_at - t0)
        latencies[wid] = np.asarray(lats)
        errors[wid] = fails

    apply_seconds: List[float] = []
    apply_errors = [0]

    def drift_driver() -> None:
        start_gate.wait()
        for _ in range(scenario.drift_applies):
            t0 = time.perf_counter()
            try:
                drift_fn()
            except Exception:
                # A failed apply must not kill the driver silently —
                # the remaining applies still run and the failure
                # shows up in the report's error count.
                apply_errors[0] += 1
            else:
                apply_seconds.append(time.perf_counter() - t0)
            time.sleep(drift_interval)

    pool_threads = [
        threading.Thread(target=worker, args=(wid,), daemon=True)
        for wid in range(threads)
    ]
    if scenario.drift_applies and drift_fn is not None:
        pool_threads.append(
            threading.Thread(target=drift_driver, daemon=True)
        )
    stats0 = pipeline.service.stats
    hits0 = stats0.cache_hits
    misses0 = stats0.cache_misses
    for t in pool_threads:
        t.start()
    t_start = time.perf_counter()
    start_gate.set()
    for t in pool_threads:
        t.join()
    elapsed = time.perf_counter() - t_start

    stats1 = pipeline.service.stats
    d_hits = stats1.cache_hits - hits0
    d_total = d_hits + stats1.cache_misses - misses0
    lat = (
        np.concatenate([l for l in latencies if len(l)])
        if any(len(l) for l in latencies)
        else np.zeros(1)
    )
    lat_ms = 1e3 * lat
    served = int(sum(len(l) for l in latencies))
    per_venue: Dict[str, int] = {}
    for schedule in schedules:
        for venue, scans in schedule:
            per_venue[venue] = per_venue.get(venue, 0) + len(scans)
    pct = percentiles_ms(lat)
    return LoadReport(
        scenario=scenario,
        threads=threads,
        requests=served,
        errors=int(sum(errors)) + apply_errors[0],
        elapsed=elapsed,
        p50_ms=pct["p50_ms"],
        p95_ms=pct["p95_ms"],
        p99_ms=pct["p99_ms"],
        mean_ms=float(lat_ms.mean()),
        max_ms=float(lat_ms.max()),
        hit_rate=d_hits / d_total if d_total else 0.0,
        per_venue=per_venue,
        applies=len(apply_seconds),
        apply_mean_ms=(
            1e3 * float(np.mean(apply_seconds)) if apply_seconds else 0.0
        ),
    )


def _baseline_throughput(
    shards, pool: np.ndarray, *, batch: int = 256, rounds: int = 3
) -> float:
    """Single-caller ``query_batch`` throughput at ``batch`` rows —
    the serve-bench number the pipeline is measured against (cache
    disabled, same shards)."""
    service = PositioningService(cache_size=0)
    for shard in shards:
        service.register(shard)
    venue = shards[0].key
    queries = pool[:batch]
    keys = [venue] * len(queries)
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        service.query_batch(keys, queries)
        best = min(best, time.perf_counter() - t0)
    return len(queries) / best


def _make_drift_fn(
    service: PositioningService,
    venue: str,
    dataset: Dataset,
    applies: int,
    seed: int,
) -> Callable[[], object]:
    """Pre-build ``applies`` one-path ingestion deltas for a venue.

    All survey simulation happens here, before any clock starts; the
    returned closure pops the next delta and hot-applies it, so the
    measured drift window contains only apply work (and no-ops
    gracefully if called more often than deltas were prepared).
    """
    from ..ingest import StreamIngestor, simulate_new_survey

    tables = []
    round_ = 0
    while len(tables) < applies:
        tables.extend(
            simulate_new_survey(dataset, n_passes=1, seed=seed + round_)
        )
        round_ += 1
    next_id = int(dataset.radio_map.path_ids.max()) + 1
    deltas = []
    ingestor = StreamIngestor(dataset.radio_map.n_aps)
    for i, table in enumerate(tables[:applies]):
        table.path_id = next_id + i  # unique across rounds
        ingestor.ingest_table(table)
        deltas.append(ingestor.drain())
    lock = threading.Lock()

    def drift_fn():
        with lock:
            if not deltas:
                return None
            delta = deltas.pop(0)
        return service.apply_delta(venue, delta)

    return drift_fn


def run(
    config: ExperimentConfig,
    *,
    threads: int = 8,
    requests_per_thread: int = 1024,
    max_batch: int = 256,
    max_delay_ms: float = 0.0,
    duplicate_rate: Optional[float] = None,
    scenarios: Optional[Sequence[Scenario]] = None,
    venues: Sequence[str] = LOAD_VENUES,
    cache_size: int = 4096,
    pool_size: int = 512,
    warmup_per_thread: Optional[int] = None,
    seed: Optional[int] = None,
    include_drift: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> ExperimentResult:
    """Deploy the preset's venues and replay a scenario mix.

    ``duplicate_rate`` overrides every scenario's re-scan rate (the
    acceptance check re-runs with 0.5 and expects cache hits); other
    knobs mirror the CLI flags.  Returns per-scenario latency
    percentiles and throughput, plus the single-caller batch-256
    baseline for comparison.

    ``seed`` drives *every* random choice downstream — scan pools,
    each worker's schedule (venue picks, scan indices, duplicate
    flags, burst arrivals), and the drift deltas — so two runs with
    the same seed replay identical request streams
    (``--seed`` on the CLI; defaults to the preset's dataset seed).

    ``include_drift`` appends the :data:`DRIFT_SCENARIO`: ingestion
    deltas hot-apply to the first venue while its query traffic runs.

    ``telemetry`` attaches an :class:`~repro.obs.Telemetry` bundle to
    the deployed service: request spans sample through the pipeline,
    and the returned data gains ``live_histogram`` — p50/p95/p99 read
    from the server-side ``pipeline.request_seconds`` histogram over
    the whole run, the live counterpart of the loadgen-computed
    percentiles (the two agree within one histogram bucket width).

    Each scenario is preceded by an untimed warm-up slice
    (``warmup_per_thread`` requests per worker, default half the
    timed count) so the timed window measures steady-state serving —
    warm cache, hot code paths — the same way the single-caller
    baseline takes the best of several rounds over one batch.
    """
    if len(venues) < 2:
        raise ServingError("load-test needs >= 2 venues")
    base_seed = config.dataset_seed if seed is None else int(seed)
    service = PositioningService(
        cache_size=cache_size, telemetry=telemetry
    )
    pools: Dict[str, np.ndarray] = {}
    rng = np.random.default_rng(base_seed)
    for venue in venues:
        dataset = get_dataset(venue, config)
        service.deploy(
            venue,
            dataset.radio_map,
            TopoACDifferentiator(entities=dataset.venue.plan.entities),
            estimator=WKNNEstimator(),
        )
        pools[venue] = scan_pool(dataset, pool_size, rng)

    baseline = _baseline_throughput(
        [service.shard(v) for v in venues], pools[venues[0]]
    )

    mix = list(scenarios if scenarios is not None else DEFAULT_MIX)
    if include_drift:
        mix.append(DRIFT_SCENARIO)
    if duplicate_rate is not None:
        mix = [replace(s, duplicate_rate=duplicate_rate) for s in mix]

    total_applies = sum(s.drift_applies for s in mix)
    drift_fn = None
    if total_applies:
        drift_fn = _make_drift_fn(
            service,
            venues[0],
            get_dataset(venues[0], config),
            total_applies,
            base_seed + 9000,
        )

    reports: List[LoadReport] = []
    lines: List[str] = [
        f"venues: {', '.join(sorted(pools))} | {threads} threads x "
        f"{requests_per_thread} requests | micro-batch <= {max_batch} "
        f"rows, flush after {max_delay_ms}ms | seed {base_seed}"
    ]
    if warmup_per_thread is None:
        warmup_per_thread = max(1, requests_per_thread // 2)
    with ServingPipeline(
        service, max_batch=max_batch, max_delay_ms=max_delay_ms
    ) as pipeline:
        for i, scenario in enumerate(mix):
            if warmup_per_thread:
                run_scenario(  # untimed warm-up slice, no drift
                    pipeline,
                    pools,
                    scenario,
                    threads=threads,
                    requests_per_thread=warmup_per_thread,
                    seed=base_seed + 5000 + i,
                )
            report = run_scenario(
                pipeline,
                pools,
                scenario,
                threads=threads,
                requests_per_thread=requests_per_thread,
                seed=base_seed,
                drift_fn=drift_fn if scenario.drift_applies else None,
            )
            reports.append(report)
            lines.append(report.render())
    lines.append(pipeline.stats.render())

    default = reports[0]
    ratio = (
        default.throughput / baseline if baseline > 0 else float("inf")
    )
    lines.append(
        f"default scenario: {default.throughput:.0f}/s vs "
        f"single-caller batch-256 {baseline:.0f}/s ({ratio:.2f}x)"
    )

    live_pct = None
    if telemetry is not None:
        live_pct = histogram_percentiles_ms(
            telemetry.metrics.histogram("pipeline.request_seconds")
        )
        lines.append(
            f"live histogram (all scenarios): "
            f"p50={live_pct['p50_ms']:.2f}ms "
            f"p95={live_pct['p95_ms']:.2f}ms "
            f"p99={live_pct['p99_ms']:.2f}ms | "
            f"{len(telemetry.spans())} spans retained"
        )

    return ExperimentResult(
        experiment_id="Load test",
        rendered="\n".join(lines),
        data={
            "scenarios": {
                r.scenario.name: {
                    "requests": r.requests,
                    "errors": r.errors,
                    "p50_ms": r.p50_ms,
                    "p95_ms": r.p95_ms,
                    "p99_ms": r.p99_ms,
                    "throughput": r.throughput,
                    "hit_rate": r.hit_rate,
                    "applies": r.applies,
                    "apply_mean_ms": r.apply_mean_ms,
                }
                for r in reports
            },
            "baseline_throughput": baseline,
            "default_throughput": default.throughput,
            "default_vs_baseline": ratio,
            "threads": threads,
            "seed": base_seed,
            "deltas_applied": service.stats.deltas_applied,
            "fast_path_hits": pipeline.stats.fast_path_hits,
            "mean_batch": pipeline.stats.mean_batch,
            **(
                {"live_histogram": live_pct}
                if live_pct is not None
                else {}
            ),
        },
    )
