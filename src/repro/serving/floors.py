"""Floor classification and routing ahead of 2D positioning.

A stacked venue deploys one :class:`~repro.serving.VenueShard` per
floor (keys ``"venue/f1"``, ``"venue/f2"``, …), but online scans
arrive with no floor tag — the phone knows its fingerprint, not its
slab.  :class:`FloorClassifier` answers that from the fingerprint
alone, and :class:`FloorRouter` turns the answer into the floor shard
key the positioning service should serve the scan from, so a query
addressed to the bare venue is *routed*, not rejected.

Two classification modes, both floor-partition-native:

* ``"strongest-ap"`` (default) — every AP has a home floor
  (:meth:`~repro.venue.Venue.ap_floor_index`); a scan's evidence for
  a floor is the summed above-noise signal margin of that floor's
  observed APs.  O(D) per scan, no training data at query time.
* ``"nearest-map"`` — per-floor 1-NN likelihood over the floors'
  radio-map tensors (the same precomputed fingerprints the shards
  serve from): a scan belongs to the floor whose map contains the
  closest fingerprint under the masked distance.  Heavier, but robust
  when AP deployments overlap floors unevenly.

The classifier round-trips through a small ``serving.floors`` artifact
so a warm-started fleet recovers routing without the venue object, and
:func:`save_floor_deployment` / :func:`load_floor_deployment` bundle
the per-floor shard artifacts plus the classifier under one venue in
an :class:`~repro.artifacts.ArtifactStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..artifacts import Artifact, ArtifactStore
from ..constants import RSSI_MIN
from ..exceptions import ServingError
from .keys import ShardKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..radiomap.multifloor import FloorRadioMaps
    from ..venue.multifloor import Venue
    from .service import PositioningService, VenueShard

#: Artifact kind of a persisted floor classifier.
FLOORS_KIND = "serving.floors"

_MODES = ("strongest-ap", "nearest-map")


@dataclass
class FloorClassifier:
    """Fingerprint → floor index over one venue's floor stack.

    Parameters
    ----------
    floors:
        Ordered floor ids (the stacking order).
    ap_floor:
        ``(D,)`` int array mapping each global AP index to its home
        floor's position in ``floors``.
    mode:
        ``"strongest-ap"`` or ``"nearest-map"``.
    maps:
        Per-floor dense ``(N_f, D)`` reference tensors (NaN-free),
        required by ``"nearest-map"``.
    """

    floors: Tuple[str, ...]
    ap_floor: np.ndarray
    mode: str = "strongest-ap"
    maps: Optional[List[np.ndarray]] = None

    def __post_init__(self) -> None:
        if not self.floors:
            raise ServingError("classifier needs at least one floor")
        if self.mode not in _MODES:
            raise ServingError(
                f"mode {self.mode!r} not in {list(_MODES)}"
            )
        self.ap_floor = np.asarray(self.ap_floor, dtype=np.int64)
        if self.ap_floor.ndim != 1:
            raise ServingError("ap_floor must be (D,)")
        n = len(self.floors)
        if self.ap_floor.size and not (
            0 <= self.ap_floor.min() and self.ap_floor.max() < n
        ):
            raise ServingError(
                "ap_floor indexes outside the floor list"
            )
        if self.mode == "nearest-map":
            if not self.maps or len(self.maps) != n:
                raise ServingError(
                    "nearest-map mode needs one map per floor"
                )
            self.maps = [
                np.ascontiguousarray(m, dtype=float) for m in self.maps
            ]
            for fid, m in zip(self.floors, self.maps):
                if m.ndim != 2 or m.shape[1] != self.n_aps:
                    raise ServingError(
                        f"floor {fid!r} map must be (N, {self.n_aps})"
                    )
                if np.isnan(m).any():
                    raise ServingError(
                        f"floor {fid!r} map must be NaN-free "
                        "(fill before classifying)"
                    )

    @property
    def n_aps(self) -> int:
        return int(self.ap_floor.shape[0])

    @property
    def n_floors(self) -> int:
        return len(self.floors)

    # ------------------------------------------------------------------
    def scores(self, batch: np.ndarray) -> np.ndarray:
        """Per-floor evidence ``(n, n_floors)``; argmax is the floor.

        Rows with no observed AP score 0 everywhere and fall back to
        floor 0 in :meth:`classify` (the ground floor — where a
        device that hears nothing most plausibly is).
        """
        fps = np.asarray(batch, dtype=float)
        if fps.ndim == 1:
            fps = fps[None, :]
        if fps.ndim != 2 or fps.shape[1] != self.n_aps:
            raise ServingError(
                f"classifier expects (n, {self.n_aps}) fingerprints, "
                f"got {fps.shape}"
            )
        observed = np.isfinite(fps)
        if self.mode == "strongest-ap":
            # Above-noise margin of every observed reading, summed
            # into its AP's home floor: one masked matmul against the
            # floor one-hot, no per-row Python.
            weights = np.where(
                observed, fps - (RSSI_MIN - 1.0), 0.0
            )
            onehot = np.zeros(
                (self.n_aps, self.n_floors), dtype=float
            )
            onehot[np.arange(self.n_aps), self.ap_floor] = 1.0
            return weights @ onehot
        # nearest-map: negative masked 1-NN squared distance per floor,
        # normalised by the number of observed APs.
        fps_z = np.where(observed, fps, 0.0)
        obs_f = observed.astype(float)
        counts = np.maximum(obs_f.sum(axis=1), 1.0)
        out = np.empty((fps.shape[0], self.n_floors))
        row_sq = (fps_z * fps_z).sum(axis=1)
        for f, ref in enumerate(self.maps):
            # d2[i, r] = sum_d obs[i,d] (fps[i,d] - ref[r,d])^2
            d2 = (
                row_sq[:, None]
                - 2.0 * (fps_z @ ref.T)
                + obs_f @ (ref * ref).T
            )
            out[:, f] = -np.min(d2, axis=1) / counts
        return out

    def classify(self, batch: np.ndarray) -> np.ndarray:
        """Floor indices ``(n,)`` for a fingerprint batch."""
        scores = self.scores(batch)
        out = np.argmax(scores, axis=1)
        fps = np.asarray(batch, dtype=float)
        if fps.ndim == 1:
            fps = fps[None, :]
        blank = ~np.isfinite(fps).any(axis=1)
        out[blank] = 0
        return out

    def classify_one(self, fingerprint: np.ndarray) -> int:
        return int(self.classify(np.asarray(fingerprint)[None, :])[0])

    # ------------------------------------------------------------------
    @classmethod
    def from_venue(
        cls, venue: "Venue", mode: str = "strongest-ap"
    ) -> "FloorClassifier":
        """Build from a stacked venue's AP homing (strongest-ap)."""
        return cls(
            floors=venue.floor_ids,
            ap_floor=venue.ap_floor_index(),
            mode=mode,
        )

    @classmethod
    def from_radio_maps(
        cls,
        radio_maps: "FloorRadioMaps",
        ap_floor: np.ndarray,
        *,
        mode: str = "nearest-map",
    ) -> "FloorClassifier":
        """Build the likelihood mode over per-floor radio-map tensors.

        NaN entries fill with ``RSSI_MIN`` (an unobserved AP reads as
        noise-floor), which keeps the masked distance honest: a scan
        observing an AP a floor's map never saw is pushed away from
        that floor.
        """
        maps = [
            np.where(
                np.isfinite(rmap.fingerprints),
                rmap.fingerprints,
                float(RSSI_MIN),
            )
            for _, rmap in radio_maps.items()
        ]
        return cls(
            floors=radio_maps.floor_ids,
            ap_floor=ap_floor,
            mode=mode,
            maps=maps,
        )

    # ------------------------------------------------------------------
    def to_artifact(self, venue: str) -> Artifact:
        arrays = {"ap_floor": self.ap_floor.astype(np.int64)}
        if self.maps is not None:
            for i, m in enumerate(self.maps):
                arrays[f"map_{i:03d}"] = m
        return Artifact(
            kind=FLOORS_KIND,
            config={
                "venue": venue,
                "floors": list(self.floors),
                "mode": self.mode,
            },
            arrays=arrays,
        )

    @classmethod
    def from_artifact(cls, artifact: Artifact) -> "FloorClassifier":
        if artifact.kind != FLOORS_KIND:
            raise ServingError(
                f"expected a {FLOORS_KIND!r} artifact, got "
                f"{artifact.kind!r}"
            )
        config = artifact.config
        floors = tuple(config["floors"])
        maps = None
        if config["mode"] == "nearest-map":
            maps = [
                artifact.arrays[f"map_{i:03d}"]
                for i in range(len(floors))
            ]
        return cls(
            floors=floors,
            ap_floor=artifact.arrays["ap_floor"],
            mode=config["mode"],
            maps=maps,
        )


@dataclass
class FloorRouter:
    """Routes a bare-venue query row to its floor's shard key."""

    venue: str
    classifier: FloorClassifier

    @property
    def floor_keys(self) -> Tuple[str, ...]:
        return tuple(
            str(ShardKey(self.venue, fid))
            for fid in self.classifier.floors
        )

    def route(self, batch: np.ndarray) -> List[str]:
        """Floor shard keys ``(n,)`` for a fingerprint batch."""
        keys = self.floor_keys
        return [keys[i] for i in self.classifier.classify(batch)]


# ----------------------------------------------------------------------
# Deployment helpers
# ----------------------------------------------------------------------
def deploy_floors(
    service: "PositioningService",
    venue: "Venue",
    radio_maps: "FloorRadioMaps",
    differentiator_factory,
    *,
    estimator_factory=None,
    bisim_config=None,
    classifier: Optional[FloorClassifier] = None,
) -> List[str]:
    """Deploy every floor of a stacked venue and attach its router.

    One shard builds per floor (``differentiator_factory(floor)`` and
    ``estimator_factory()`` make the per-floor pipeline pieces), keyed
    ``"venue/floor"``; the classifier (default: strongest-AP from the
    venue's AP homing) registers on the service so bare-venue queries
    route.  Returns the deployed floor shard keys.
    """
    keys: List[str] = []
    for floor in venue.floors:
        key = str(ShardKey(venue.name, floor.floor_id))
        service.deploy(
            key,
            radio_maps[floor.floor_id],
            differentiator_factory(floor),
            estimator=(
                None if estimator_factory is None else estimator_factory()
            ),
            bisim_config=bisim_config,
        )
        keys.append(key)
    service.attach_floor_router(
        venue.name,
        FloorRouter(
            venue=venue.name,
            classifier=(
                classifier
                if classifier is not None
                else FloorClassifier.from_venue(venue)
            ),
        ),
    )
    return keys


def save_floor_deployment(
    store: ArtifactStore,
    venue: str,
    service: "PositioningService",
) -> List[str]:
    """Persist a deployed stacked venue: per-floor shards + classifier.

    Floor shards save under their own ``"venue/floor"`` store keys
    (each a plain ``serving.shard`` artifact — a legacy single-floor
    loader reads any one of them unchanged) and the classifier under
    ``"venue/floors"``.  Returns the written store keys.
    """
    router = service.floor_router(venue)
    if router is None:
        raise ServingError(
            f"venue {venue!r} has no floor router attached"
        )
    written: List[str] = []
    for key in router.floor_keys:
        shard = service.shard(key)
        shard.save(store.path_for(key))
        written.append(key)
    meta_key = f"{venue}/floors"
    store.save(meta_key, router.classifier.to_artifact(venue))
    written.append(meta_key)
    return written


def load_floor_deployment(
    store: ArtifactStore,
    venue: str,
    service: "PositioningService",
) -> List[str]:
    """Warm-start a stacked venue from its store keys.

    Reads the ``"venue/floors"`` classifier artifact for the floor
    list, deploys each floor shard from its artifact (no retraining),
    and attaches the router.  Returns the deployed floor shard keys.
    """
    from .service import VenueShard  # local: avoid a module cycle

    artifact = store.load(f"{venue}/floors", expected_kind=FLOORS_KIND)
    classifier = FloorClassifier.from_artifact(artifact)
    keys: List[str] = []
    for fid in classifier.floors:
        key = str(ShardKey(venue, fid))
        service.register(
            VenueShard.load(store.path_for(key), key=key)
        )
        keys.append(key)
    service.attach_floor_router(
        venue, FloorRouter(venue=venue, classifier=classifier)
    )
    return keys
