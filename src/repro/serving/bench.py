"""Serving-throughput benchmark (``python -m repro serve-bench``).

Measures the batched online query path against the old per-query
serving pattern (one ``predict`` call per fingerprint) at batch sizes
1/64/256, at two layers:

* **estimator** — the vectorized nearest-neighbour ``predict`` versus
  a per-row loop over the same queries;
* **service** — :meth:`PositioningService.query_batch` versus a loop
  of single :meth:`PositioningService.query` calls (cache disabled),
  plus the warm-cache throughput of an identical repeated batch.

Timing is best-of-``rounds`` wall clock; results render as a table and
land in :attr:`ExperimentResult.data` for assertions.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from ..core import TopoACDifferentiator
from ..datasets import Dataset
from ..experiments.base import ExperimentResult
from ..experiments.config import ExperimentConfig
from ..experiments.runner import get_dataset
from ..positioning import WKNNEstimator
from .service import PositioningService

BATCH_SIZES = (1, 64, 256)


def _best_of(fn: Callable[[], None], rounds: int) -> float:
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _online_queries(
    dataset: Dataset, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Simulate ``n`` raw device scans across the venue's RPs."""
    rps = dataset.venue.reference_points
    picks = rng.integers(0, len(rps), size=n)
    return np.stack(
        [dataset.channel.measure(rps[i], rng).rssi for i in picks]
    )


def run(config: ExperimentConfig, *, rounds: int = 3) -> ExperimentResult:
    """Benchmark the serving path on the preset's kaide venue."""
    dataset = get_dataset("kaide", config)
    rng = np.random.default_rng(config.dataset_seed)
    queries = _online_queries(dataset, max(BATCH_SIZES), rng)

    service = PositioningService(cache_size=0)
    shard = service.deploy(
        "kaide",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        estimator=WKNNEstimator(),
    )
    imputed = shard.impute(queries)

    estimator_speedup: Dict[int, float] = {}
    service_speedup: Dict[int, float] = {}
    batched_throughput: Dict[int, float] = {}
    lines: List[str] = [
        f"{'batch':>6} {'loop (ms)':>10} {'batched (ms)':>13} "
        f"{'speedup':>8} {'queries/s':>10}"
    ]
    for size in BATCH_SIZES:
        q = imputed[:size]
        loop_s = _best_of(
            lambda: [shard.estimator.predict(row) for row in q], rounds
        )
        batched_s = _best_of(
            lambda: shard.estimator.predict(q, squeeze=False), rounds
        )
        estimator_speedup[size] = loop_s / batched_s

        raw = queries[:size]
        keys = ["kaide"] * size
        svc_loop_s = _best_of(
            lambda: [service.query("kaide", row) for row in raw], rounds
        )
        svc_batched_s = _best_of(
            lambda: service.query_batch(keys, raw), rounds
        )
        service_speedup[size] = svc_loop_s / svc_batched_s
        batched_throughput[size] = size / svc_batched_s
        lines.append(
            f"{size:>6} {1e3 * loop_s:>10.2f} {1e3 * batched_s:>13.2f} "
            f"{estimator_speedup[size]:>7.1f}x "
            f"{batched_throughput[size]:>10.0f}"
        )

    # Warm-cache throughput: the same batch served twice.
    cached = PositioningService(cache_size=4096)
    cached.register(shard)
    keys = ["kaide"] * max(BATCH_SIZES)
    cached.query_batch(keys, queries)
    warm_s = _best_of(lambda: cached.query_batch(keys, queries), rounds)
    warm_throughput = max(BATCH_SIZES) / warm_s
    lines.append(
        f"warm cache, batch {max(BATCH_SIZES)}: "
        f"{warm_throughput:.0f} queries/s "
        f"(hit rate {100 * cached.stats.hit_rate:.0f}%)"
    )

    return ExperimentResult(
        experiment_id="Serving bench",
        rendered="\n".join(lines),
        data={
            "batch_sizes": list(BATCH_SIZES),
            "estimator_speedup": estimator_speedup,
            "service_speedup": service_speedup,
            "batched_throughput": batched_throughput,
            "warm_cache_throughput": warm_throughput,
        },
    )
