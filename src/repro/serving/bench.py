"""Serving-throughput benchmark (``python -m repro serve-bench``).

Measures the batched online query path against the old per-query
serving pattern (one ``predict`` call per fingerprint) at batch sizes
1/64/256, at two layers:

* **estimator** — the vectorized nearest-neighbour ``predict`` versus
  a per-row loop over the same queries;
* **service** — :meth:`PositioningService.query_batch` versus a loop
  of single :meth:`PositioningService.query` calls (cache disabled),
  plus the warm-cache throughput of an identical repeated batch.

It also times **cold start** (build the shard from the raw radio map:
differentiate + fit) against **warm start** (load the same shard from
a saved artifact) — the train-once/serve-many win.  Pass
``--artifact PATH`` on the CLI to keep the shard bundle for reuse.

Two sections cover this PR's index-bound serving work:

* **fleet scale** — a synthetic log-distance radio map with
  ``int(81920 * venue_scale)`` records (32768 under the ``bench``
  preset) served through identical shards whose estimators differ only
  in ``spatial_index`` mode; reports brute/indexed throughput, their
  speedup, and the max-abs parity between the two answers (the index
  is exact, so this must be 0).  The indexed side additionally A/Bs
  the two query kernels — the grouped CSR-GEMM path against the
  legacy per-bucket loop, rounds interleaved — and attributes one
  instrumented grouped batch to its pipeline stages
  (probe/select/bound/gemm/finish, via
  :data:`~repro.positioning.index.KERNEL_STATS`); the stage
  breakdown, ``kernel_speedup`` and ``kernel_parity`` land in the
  result data.  ``--no-spatial-index`` skips the indexed side so CI
  can A/B the two CLI runs.
* **precompute** — the kaide venue with a trained BiSIM, served once
  through the PR-5 path (encoder imputation per batch,
  :class:`EncoderCompletion`) and once through this PR's build-time
  precomputed tensor (:class:`MapCompletion`); their ratio is the
  serve-throughput speedup over the PR-5 baseline.

Timing is best-of-``rounds`` wall clock; results render as a table and
land in :attr:`ExperimentResult.data` for assertions.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..bisim import BiSIMConfig
from ..core import TopoACDifferentiator
from ..experiments.base import ExperimentResult
from ..experiments.config import ExperimentConfig
from ..experiments.runner import get_dataset
from ..obs import Telemetry, render_prometheus
from ..positioning import KERNEL_STATS, WKNNEstimator
from .completion import EncoderCompletion
from .loadgen import scan_pool
from .service import PositioningService, VenueShard

BATCH_SIZES = (1, 64, 256)

#: Fleet-scale synthetic venue dimensions; the record count scales
#: with the preset's ``venue_scale`` (32768 under ``bench``).
FLEET_RECORDS = 81920
FLEET_APS = 96


def _best_of(fn: Callable[[], None], rounds: int) -> float:
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _synthetic_fleet_map(
    n_records: int, n_aps: int, rng: np.random.Generator
):
    """A log-distance-path-loss radio map big enough to need an index."""
    side = 200.0
    aps = rng.uniform(0.0, side, size=(n_aps, 2))
    rps = rng.uniform(0.0, side, size=(n_records, 2))
    dist = np.linalg.norm(rps[:, None, :] - aps[None, :, :], axis=2)
    rssi = -30.0 - 30.0 * np.log10(np.maximum(dist, 1.0))
    rssi += rng.normal(0.0, 3.0, size=rssi.shape)
    return np.clip(rssi, -95.0, -20.0), rps


def _fleet_service(
    fingerprints: np.ndarray,
    locations: np.ndarray,
    mode: str,
    kernel: str = "grouped",
    telemetry: Optional[Telemetry] = None,
) -> PositioningService:
    estimator = WKNNEstimator(
        spatial_index=mode, spatial_kernel=kernel
    ).fit(fingerprints, locations)
    service = PositioningService(cache_size=0, telemetry=telemetry)
    service.register(
        VenueShard(
            "fleet",
            fingerprints.shape[1],
            estimator,
            None,
            fingerprints.mean(axis=0),
        )
    )
    return service


def _fleet_qps(
    fingerprints: np.ndarray,
    locations: np.ndarray,
    queries: np.ndarray,
    mode: str,
    rounds: int,
    kernel: str = "grouped",
):
    service = _fleet_service(fingerprints, locations, mode, kernel)
    keys = ["fleet"] * len(queries)
    out = service.query_batch(keys, queries)  # warm-up + answers
    best = _best_of(
        lambda: service.query_batch(keys, queries), rounds
    )
    return len(queries) / best, out


def run(
    config: ExperimentConfig,
    *,
    rounds: int = 3,
    artifact_path: Optional[str] = None,
    spatial_index: bool = True,
    kernel: str = "grouped",
    telemetry: bool = False,
) -> ExperimentResult:
    """Benchmark the serving path on the preset's kaide venue.

    ``artifact_path`` names where to keep the warm-start shard bundle;
    by default it lives in a temporary directory for the duration of
    the benchmark.  ``spatial_index=False`` skips the indexed side of
    the fleet-scale section (the brute baseline still runs), matching
    the CLI's ``--no-spatial-index``.  ``kernel`` picks the headline
    indexed query kernel (``--kernel``); the fleet section A/Bs it
    against the per-bucket loop either way.

    ``telemetry`` (``--telemetry``) appends the observability
    section: the fleet-scale service is re-run twice, interleaved —
    once plain, once with a :class:`~repro.obs.Telemetry` attached
    (span sampling at 1-in-8 plus live kernel-stage accounting) — and
    the throughput delta lands in ``telemetry_overhead_pct`` (the
    acceptance bar holds it under 3%).  A fully-traced batch then
    contributes the covered span stages, a Prometheus text export and
    a JSON snapshot under the ``telemetry`` data key.
    """
    dataset = get_dataset("kaide", config)
    rng = np.random.default_rng(config.dataset_seed)
    queries = scan_pool(dataset, max(BATCH_SIZES), rng)

    # Cold start: the full offline pipeline (differentiate + fit).
    service = PositioningService(cache_size=0)
    cold_start = time.perf_counter()
    shard = service.deploy(
        "kaide",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        estimator=WKNNEstimator(),
    )
    cold_s = time.perf_counter() - cold_start

    # Warm start: the same shard booted from its saved artifact.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(artifact_path or Path(tmp) / "kaide-shard.npz")
        shard.save(path)
        warm_start = time.perf_counter()
        warm_service = PositioningService(cache_size=0)
        warm_shard = warm_service.deploy_from_artifact(path)
        warm_s = time.perf_counter() - warm_start
    warm_parity = float(
        np.abs(
            warm_shard.locate(queries) - shard.locate(queries)
        ).max()
    )

    imputed = shard.impute(queries)

    estimator_speedup: Dict[int, float] = {}
    service_speedup: Dict[int, float] = {}
    batched_throughput: Dict[int, float] = {}
    lines: List[str] = [
        f"{'batch':>6} {'loop (ms)':>10} {'batched (ms)':>13} "
        f"{'speedup':>8} {'queries/s':>10}"
    ]
    for size in BATCH_SIZES:
        q = imputed[:size]
        loop_s = _best_of(
            lambda: [shard.estimator.predict(row) for row in q], rounds
        )
        batched_s = _best_of(
            lambda: shard.estimator.predict(q, squeeze=False), rounds
        )
        estimator_speedup[size] = loop_s / batched_s

        raw = queries[:size]
        keys = ["kaide"] * size
        svc_loop_s = _best_of(
            lambda: [service.query("kaide", row) for row in raw], rounds
        )
        svc_batched_s = _best_of(
            lambda: service.query_batch(keys, raw), rounds
        )
        service_speedup[size] = svc_loop_s / svc_batched_s
        batched_throughput[size] = size / svc_batched_s
        lines.append(
            f"{size:>6} {1e3 * loop_s:>10.2f} {1e3 * batched_s:>13.2f} "
            f"{estimator_speedup[size]:>7.1f}x "
            f"{batched_throughput[size]:>10.0f}"
        )

    # Warm-cache throughput: the same batch served twice.
    cached = PositioningService(cache_size=4096)
    cached.register(shard)
    keys = ["kaide"] * max(BATCH_SIZES)
    cached.query_batch(keys, queries)
    warm_s = _best_of(lambda: cached.query_batch(keys, queries), rounds)
    warm_throughput = max(BATCH_SIZES) / warm_s
    lines.append(
        f"warm cache, batch {max(BATCH_SIZES)}: "
        f"{warm_throughput:.0f} queries/s "
        f"(hit rate {100 * cached.stats.hit_rate:.0f}%)"
    )
    lines.append(
        f"cold start (differentiate+fit): {1e3 * cold_s:.1f} ms | "
        f"warm start (load artifact): {1e3 * warm_s:.1f} ms "
        f"({cold_s / warm_s:.1f}x faster, parity {warm_parity:.1e})"
    )

    # Fleet scale: spatial-indexed KNN vs brute force on a venue big
    # enough that the O(N·D) scan dominates the serve path.
    fleet_n = int(FLEET_RECORDS * config.venue_scale)
    fleet_fp, fleet_rps = _synthetic_fleet_map(fleet_n, FLEET_APS, rng)
    picks = rng.integers(0, fleet_n, size=max(BATCH_SIZES))
    fleet_q = fleet_fp[picks] + rng.normal(
        0.0, 2.5, size=(max(BATCH_SIZES), FLEET_APS)
    )
    brute_qps, brute_out = _fleet_qps(
        fleet_fp, fleet_rps, fleet_q, "off", rounds
    )
    indexed_qps = None
    fleet_speedup = None
    fleet_parity = None
    bucket_qps = None
    kernel_speedup = None
    kernel_parity = None
    kernel_stages: Optional[Dict[str, float]] = None
    if spatial_index:
        # Kernel A/B over identical indexed shards: grouped CSR
        # GEMM vs the legacy per-bucket loop, rounds interleaved so
        # both kernels see the same thermal/turbo conditions.
        grouped_svc = _fleet_service(
            fleet_fp, fleet_rps, "on", kernel=kernel
        )
        bucket_svc = _fleet_service(
            fleet_fp, fleet_rps, "on", kernel="bucket"
        )
        fleet_keys = ["fleet"] * len(fleet_q)
        indexed_out = grouped_svc.query_batch(fleet_keys, fleet_q)
        bucket_out = bucket_svc.query_batch(fleet_keys, fleet_q)
        grouped_s = bucket_s = np.inf
        for _ in range(max(rounds, 3)):
            start = time.perf_counter()
            grouped_svc.query_batch(fleet_keys, fleet_q)
            grouped_s = min(grouped_s, time.perf_counter() - start)
            start = time.perf_counter()
            bucket_svc.query_batch(fleet_keys, fleet_q)
            bucket_s = min(bucket_s, time.perf_counter() - start)
        indexed_qps = len(fleet_q) / grouped_s
        bucket_qps = len(fleet_q) / bucket_s
        kernel_speedup = bucket_s / grouped_s
        kernel_parity = float(np.abs(indexed_out - bucket_out).max())
        fleet_speedup = indexed_qps / brute_qps
        fleet_parity = float(np.abs(indexed_out - brute_out).max())

        # Stage attribution: one instrumented batch through the
        # grouped kernel (timing gates on the enabled flag, so the
        # A/B rounds above paid nothing for it).
        KERNEL_STATS.reset()
        KERNEL_STATS.enable()
        try:
            grouped_svc.query_batch(fleet_keys, fleet_q)
        finally:
            KERNEL_STATS.disable()
        snap = KERNEL_STATS.snapshot()
        KERNEL_STATS.reset()
        kernel_stages = {
            "probe_ms": 1e3 * snap["probe_s"],
            "select_ms": 1e3 * snap["select_s"],
            "bound_ms": 1e3 * snap["bound_s"],
            "gemm_ms": 1e3 * snap["gemm_s"],
            "finish_ms": 1e3 * snap["finish_s"],
            "busy_ms": 1e3 * snap["busy_s"],
            "candidates": snap["candidates"],
            "gemm_rows": snap["gemm_rows"],
        }
        lines.append(
            f"fleet scale (N={fleet_n}, D={FLEET_APS}, batch "
            f"{max(BATCH_SIZES)}): brute {brute_qps:.0f} q/s | "
            f"indexed {indexed_qps:.0f} q/s "
            f"({fleet_speedup:.1f}x, parity {fleet_parity:.1e})"
        )
        lines.append(
            f"bucket kernel: {kernel} {indexed_qps:.0f} q/s | "
            f"per-bucket loop {bucket_qps:.0f} q/s "
            f"({kernel_speedup:.2f}x, parity {kernel_parity:.1e})"
        )
        lines.append(
            "kernel stages (ms): "
            f"probe {kernel_stages['probe_ms']:.1f} | "
            f"select {kernel_stages['select_ms']:.1f} | "
            f"bound {kernel_stages['bound_ms']:.1f} | "
            f"gemm {kernel_stages['gemm_ms']:.1f} | "
            f"finish {kernel_stages['finish_ms']:.1f}; "
            f"candidates {kernel_stages['candidates']:.0f}, "
            f"gemm rows {kernel_stages['gemm_rows']:.0f}"
        )
    else:
        lines.append(
            f"fleet scale (N={fleet_n}, D={FLEET_APS}, batch "
            f"{max(BATCH_SIZES)}): brute {brute_qps:.0f} q/s "
            "(spatial index disabled)"
        )

    # Precompute: the PR-5 serve path ran the BiSIM encoder on every
    # batch; the precomputed-tensor path never touches the encoder.
    bisim_shard = VenueShard.build(
        "kaide-bisim",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        bisim_config=BiSIMConfig(
            hidden_size=config.hidden_size,
            epochs=min(config.epochs, 8),
        ),
    )
    legacy_shard = VenueShard(
        "kaide-bisim",
        bisim_shard.n_aps,
        bisim_shard.estimator,
        bisim_shard.online_imputer,
        bisim_shard.fill_values,
        EncoderCompletion(bisim_shard.online_imputer),
    )
    keys = ["kaide-bisim"] * max(BATCH_SIZES)
    before_svc = PositioningService(cache_size=0)
    before_svc.register(legacy_shard)
    before_svc.query_batch(keys, queries)
    before_s = _best_of(
        lambda: before_svc.query_batch(keys, queries), rounds
    )
    after_svc = PositioningService(cache_size=0)
    after_svc.register(bisim_shard)
    after_svc.query_batch(keys, queries)
    after_s = _best_of(
        lambda: after_svc.query_batch(keys, queries), rounds
    )
    before_qps = max(BATCH_SIZES) / before_s
    after_qps = max(BATCH_SIZES) / after_s
    precompute_speedup = after_qps / before_qps
    lines.append(
        f"precompute (kaide BiSIM, batch {max(BATCH_SIZES)}): "
        f"encoder {before_qps:.0f} q/s | precomputed "
        f"{after_qps:.0f} q/s ({precompute_speedup:.1f}x vs PR-5 path)"
    )

    # Observability: what does carrying the telemetry layer cost, and
    # does a traced request cover every kernel stage?
    telemetry_overhead_pct = None
    telemetry_data = None
    if telemetry:
        fleet_mode = "on" if spatial_index else "off"
        plain_svc = _fleet_service(
            fleet_fp, fleet_rps, fleet_mode, kernel=kernel
        )
        instr_svc = _fleet_service(
            fleet_fp,
            fleet_rps,
            fleet_mode,
            kernel=kernel,
            telemetry=Telemetry(sample_every=8),
        )
        fleet_keys = ["fleet"] * len(fleet_q)
        plain_svc.query_batch(fleet_keys, fleet_q)  # warm-up
        instr_svc.query_batch(fleet_keys, fleet_q)
        plain_s = instr_s = np.inf
        # Interleaved best-of, like the kernel A/B above.  The
        # KERNEL_STATS toggle is part of the instrumented
        # configuration (it is what prices the per-stage timers), so
        # it flips around the instrumented rounds only.
        for _ in range(max(rounds, 5)):
            start = time.perf_counter()
            plain_svc.query_batch(fleet_keys, fleet_q)
            plain_s = min(plain_s, time.perf_counter() - start)
            KERNEL_STATS.enable()
            try:
                start = time.perf_counter()
                instr_svc.query_batch(fleet_keys, fleet_q)
                instr_s = min(
                    instr_s, time.perf_counter() - start
                )
            finally:
                KERNEL_STATS.disable()
        telemetry_overhead_pct = 1e2 * (instr_s - plain_s) / plain_s

        # Span coverage: one fully-traced batch (sample_every=1)
        # must reach every kernel stage.
        smoke_tel = Telemetry(sample_every=1)
        smoke_svc = _fleet_service(
            fleet_fp,
            fleet_rps,
            fleet_mode,
            kernel=kernel,
            telemetry=smoke_tel,
        )
        KERNEL_STATS.reset()
        KERNEL_STATS.enable()
        try:
            smoke_svc.query_batch(fleet_keys, fleet_q)
        finally:
            KERNEL_STATS.disable()
        KERNEL_STATS.to_metrics(smoke_tel.metrics)
        KERNEL_STATS.reset()
        span_stages: set = set()
        for root in smoke_tel.tracer.traces():
            span_stages |= root.stage_names()
        snapshot = smoke_tel.snapshot()
        telemetry_data = {
            "overhead_pct": telemetry_overhead_pct,
            "span_stages": sorted(span_stages),
            "prometheus": render_prometheus(snapshot),
            "snapshot": snapshot,
        }
        lines.append(
            f"telemetry: plain {len(fleet_q) / plain_s:.0f} q/s | "
            f"instrumented {len(fleet_q) / instr_s:.0f} q/s "
            f"({telemetry_overhead_pct:+.2f}% overhead) | "
            f"{len(span_stages)} span stages covered"
        )

    return ExperimentResult(
        experiment_id="Serving bench",
        rendered="\n".join(lines),
        data={
            "batch_sizes": list(BATCH_SIZES),
            "estimator_speedup": estimator_speedup,
            "service_speedup": service_speedup,
            "batched_throughput": batched_throughput,
            "warm_cache_throughput": warm_throughput,
            "cold_start_seconds": cold_s,
            "warm_start_seconds": warm_s,
            "warm_start_speedup": cold_s / warm_s,
            "warm_start_parity": warm_parity,
            "fleet_records": fleet_n,
            "fleet_aps": FLEET_APS,
            "fleet_brute_throughput": brute_qps,
            "fleet_indexed_throughput": indexed_qps,
            "fleet_throughput": (
                indexed_qps if spatial_index else brute_qps
            ),
            "fleet_speedup": fleet_speedup,
            "fleet_parity": fleet_parity,
            "fleet_bucket_throughput": bucket_qps,
            "kernel": kernel,
            "kernel_speedup": kernel_speedup,
            "kernel_parity": kernel_parity,
            "kernel_stages": kernel_stages,
            "bisim_before_throughput": before_qps,
            "bisim_after_throughput": after_qps,
            "precompute_speedup": precompute_speedup,
            "telemetry_overhead_pct": telemetry_overhead_pct,
            "telemetry": telemetry_data,
        },
    )
