"""Serving-throughput benchmark (``python -m repro serve-bench``).

Measures the batched online query path against the old per-query
serving pattern (one ``predict`` call per fingerprint) at batch sizes
1/64/256, at two layers:

* **estimator** — the vectorized nearest-neighbour ``predict`` versus
  a per-row loop over the same queries;
* **service** — :meth:`PositioningService.query_batch` versus a loop
  of single :meth:`PositioningService.query` calls (cache disabled),
  plus the warm-cache throughput of an identical repeated batch.

It also times **cold start** (build the shard from the raw radio map:
differentiate + fit) against **warm start** (load the same shard from
a saved artifact) — the train-once/serve-many win.  Pass
``--artifact PATH`` on the CLI to keep the shard bundle for reuse.

Timing is best-of-``rounds`` wall clock; results render as a table and
land in :attr:`ExperimentResult.data` for assertions.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import TopoACDifferentiator
from ..experiments.base import ExperimentResult
from ..experiments.config import ExperimentConfig
from ..experiments.runner import get_dataset
from ..positioning import WKNNEstimator
from .loadgen import scan_pool
from .service import PositioningService

BATCH_SIZES = (1, 64, 256)


def _best_of(fn: Callable[[], None], rounds: int) -> float:
    best = np.inf
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    config: ExperimentConfig,
    *,
    rounds: int = 3,
    artifact_path: Optional[str] = None,
) -> ExperimentResult:
    """Benchmark the serving path on the preset's kaide venue.

    ``artifact_path`` names where to keep the warm-start shard bundle;
    by default it lives in a temporary directory for the duration of
    the benchmark.
    """
    dataset = get_dataset("kaide", config)
    rng = np.random.default_rng(config.dataset_seed)
    queries = scan_pool(dataset, max(BATCH_SIZES), rng)

    # Cold start: the full offline pipeline (differentiate + fit).
    service = PositioningService(cache_size=0)
    cold_start = time.perf_counter()
    shard = service.deploy(
        "kaide",
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        estimator=WKNNEstimator(),
    )
    cold_s = time.perf_counter() - cold_start

    # Warm start: the same shard booted from its saved artifact.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(artifact_path or Path(tmp) / "kaide-shard.npz")
        shard.save(path)
        warm_start = time.perf_counter()
        warm_service = PositioningService(cache_size=0)
        warm_shard = warm_service.deploy_from_artifact(path)
        warm_s = time.perf_counter() - warm_start
    warm_parity = float(
        np.abs(
            warm_shard.locate(queries) - shard.locate(queries)
        ).max()
    )

    imputed = shard.impute(queries)

    estimator_speedup: Dict[int, float] = {}
    service_speedup: Dict[int, float] = {}
    batched_throughput: Dict[int, float] = {}
    lines: List[str] = [
        f"{'batch':>6} {'loop (ms)':>10} {'batched (ms)':>13} "
        f"{'speedup':>8} {'queries/s':>10}"
    ]
    for size in BATCH_SIZES:
        q = imputed[:size]
        loop_s = _best_of(
            lambda: [shard.estimator.predict(row) for row in q], rounds
        )
        batched_s = _best_of(
            lambda: shard.estimator.predict(q, squeeze=False), rounds
        )
        estimator_speedup[size] = loop_s / batched_s

        raw = queries[:size]
        keys = ["kaide"] * size
        svc_loop_s = _best_of(
            lambda: [service.query("kaide", row) for row in raw], rounds
        )
        svc_batched_s = _best_of(
            lambda: service.query_batch(keys, raw), rounds
        )
        service_speedup[size] = svc_loop_s / svc_batched_s
        batched_throughput[size] = size / svc_batched_s
        lines.append(
            f"{size:>6} {1e3 * loop_s:>10.2f} {1e3 * batched_s:>13.2f} "
            f"{estimator_speedup[size]:>7.1f}x "
            f"{batched_throughput[size]:>10.0f}"
        )

    # Warm-cache throughput: the same batch served twice.
    cached = PositioningService(cache_size=4096)
    cached.register(shard)
    keys = ["kaide"] * max(BATCH_SIZES)
    cached.query_batch(keys, queries)
    warm_s = _best_of(lambda: cached.query_batch(keys, queries), rounds)
    warm_throughput = max(BATCH_SIZES) / warm_s
    lines.append(
        f"warm cache, batch {max(BATCH_SIZES)}: "
        f"{warm_throughput:.0f} queries/s "
        f"(hit rate {100 * cached.stats.hit_rate:.0f}%)"
    )
    lines.append(
        f"cold start (differentiate+fit): {1e3 * cold_s:.1f} ms | "
        f"warm start (load artifact): {1e3 * warm_s:.1f} ms "
        f"({cold_s / warm_s:.1f}x faster, parity {warm_parity:.1e})"
    )

    return ExperimentResult(
        experiment_id="Serving bench",
        rendered="\n".join(lines),
        data={
            "batch_sizes": list(BATCH_SIZES),
            "estimator_speedup": estimator_speedup,
            "service_speedup": service_speedup,
            "batched_throughput": batched_throughput,
            "warm_cache_throughput": warm_throughput,
            "cold_start_seconds": cold_s,
            "warm_start_seconds": warm_s,
            "warm_start_speedup": cold_s / warm_s,
            "warm_start_parity": warm_parity,
        },
    )
