"""City-scale shard fleet: lazy-loading registry + multi-process pool.

One :class:`~repro.serving.PositioningService` holds every shard it
serves in one process for the lifetime of the deployment.  That model
stops working at hundreds of venues: the shards no longer fit in
memory at once, traffic is Zipf-skewed so most of them are cold at any
instant, and a single GIL caps throughput.  This module adds the two
tiers that fix both, on top of the existing warm-start artifacts:

:class:`ShardRegistry`
    Maps venue → artifact key and loads shards **lazily on first
    query** from an :class:`~repro.artifacts.ArtifactStore`.  The
    first load is a fully-verified
    :func:`~repro.artifacts.load_artifact` (schema, kind, content
    hash) that memory-maps the precomputed completion tensor; the
    registry then caches the artifact's member byte offsets
    (:func:`~repro.artifacts.mappable_members`), so re-loading an
    evicted venue re-attaches every array as a read-only memory map in
    microseconds — no zip walk, no JSON, no re-hash — as long as the
    file's mtime+size still match the verified load.  Under a
    configurable memory budget the registry evicts the least recently
    used venues (per-shard resident-size accounting via
    :meth:`~repro.serving.VenueShard.footprint`); attach a
    ``service=`` to mirror load/evict into a
    :class:`~repro.serving.PositioningService` registry, which is how
    the single-process baseline serves the same 500-venue pool.

:class:`ShardFleet`
    A multi-process worker pool with **per-worker shard ownership**:
    venues are hash-partitioned (stable CRC-32, so a venue lives in
    exactly one worker across restarts *and* respawns), each worker
    owns a :class:`ShardRegistry` over its partition with its slice of
    the memory budget, and requests travel over pipes as bundles that
    each worker serves **batched per venue per tick** — one
    ``locate()`` call per venue per tick instead of one per request,
    which amortises per-request bookkeeping even on a single core.  A
    worker that dies (OOM killer, segfault, ``kill -9``) is detected
    by its broken pipe, respawned, and its in-flight requests are
    resubmitted; the respawned worker lazily re-loads its shards from
    the store, so the venue answers bit-identically after the crash.

    Per-tick venue batching preserves bit-identical answers only when
    the shard's math is batch-shape invariant.  Estimators built with
    ``exact_distances=True`` guarantee that (their per-pair reduction
    never changes with batch composition); the default matmul
    expansion may differ in the last float bit between a batch of one
    and a batch of many, which is invisible to accuracy but matters if
    you diff fleet output against a per-request baseline.

:class:`FleetStats` aggregates both tiers: lazy-load / fast-reload /
eviction counters, resident vs memory-mapped bytes against the
budget, per-worker utilization and tick sizes, respawns, and routing
errors.

The request protocol is deliberately tiny — tuples over
``multiprocessing.Pipe``: parent sends ``("batch", [(rid, venue,
row), ...])``, worker answers ``("done", rids, (n, 2) locations,
errors, telemetry)`` where ``telemetry`` is the worker's metric/span
delta since its last answer (:meth:`~repro.obs.MetricsRegistry.
drain`), folded by the parent into one fleet-wide
:class:`~repro.obs.Telemetry` view; ``("stats", token)`` /
``("stop",)`` round out the set.  Bundles keep the pickle overhead
per request to a few microseconds.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..artifacts import (
    Artifact,
    ArtifactStore,
    MemberSpec,
    attach_members,
    load_artifact,
    mappable_members,
)
from ..exceptions import ArtifactError, ServingError
from ..obs import MetricsRegistry, Telemetry, Tracer
from ..positioning import KERNEL_STATS
from .keys import ShardKey, coerce_key
from .pipeline import Ticket
from .service import SHARD_KIND, PositioningService, VenueShard

__all__ = [
    "FleetStats",
    "RegistryStats",
    "ShardFleet",
    "ShardRegistry",
    "WorkerStats",
    "partition_venue",
]


def partition_venue(
    venue: Union[str, ShardKey], n_workers: int
) -> int:
    """Worker index owning ``venue`` (stable across processes/runs).

    CRC-32 rather than :func:`hash`, which Python salts per process —
    a respawned worker must claim exactly the venues its predecessor
    owned, and the parent must route to the same worker the shard
    lives in.

    Hashes the *venue component* of the key only: every floor of a
    stacked venue (``"kaide/f1"``, ``"kaide/f2"``) lands on the same
    worker, so a device hopping floors mid-walk keeps talking to one
    process.  Bare single-floor keys hash exactly as before.
    """
    if n_workers < 1:
        raise ServingError("need at least one worker")
    name = ShardKey.parse(venue).venue
    return zlib.crc32(name.encode("utf-8")) % n_workers


@dataclass
class RegistryStats:
    """Counters of one :class:`ShardRegistry`.

    ``lazy_loads`` counts every on-demand load (first touch *and*
    re-load after eviction); ``fast_reloads`` is the subset served
    from cached member offsets (memory-map re-attach instead of a full
    verified load).  ``resident_bytes`` / ``mapped_bytes`` split each
    shard's footprint into anonymous memory vs read-only maps —
    eviction returns both, but mapped pages were only ever page cache.
    ``peak_bytes`` tracks the high-water total against the budget.

    Since the telemetry layer landed this is a *view*: the registry
    keeps its counters in ``registry.*`` metrics on a
    :class:`~repro.obs.MetricsRegistry` and builds this dataclass on
    demand, so fleet workers can drain the same numbers over their
    pipes as metric deltas.
    """

    lazy_loads: int = 0
    fast_reloads: int = 0
    evictions: int = 0
    hits: int = 0
    load_seconds: float = 0.0
    resident_bytes: int = 0
    mapped_bytes: int = 0
    peak_bytes: int = 0
    resident_venues: int = 0
    known_venues: int = 0

    @property
    def total_bytes(self) -> int:
        return self.resident_bytes + self.mapped_bytes

    def render(self) -> str:
        return (
            f"venues={self.resident_venues}/{self.known_venues} "
            f"resident ({self.total_bytes / 1e6:.1f}MB, "
            f"peak {self.peak_bytes / 1e6:.1f}MB) "
            f"loads={self.lazy_loads} "
            f"(fast {self.fast_reloads}) evictions={self.evictions} "
            f"hits={self.hits} "
            f"load time={1e3 * self.load_seconds:.0f}ms"
        )


@dataclass
class _LoadSpec:
    """Everything needed to re-attach an evicted venue's artifact."""

    path: str
    mtime_ns: int
    size: int
    members: Dict[str, MemberSpec]
    config: Dict[str, Any]
    metrics: Dict[str, Any]
    #: (resident, mapped) footprint of a fast-reloaded shard; filled
    #: on the first fast reload, reused afterwards — the file is
    #: pinned by mtime+size, so the footprint cannot change.
    footprint: Optional[Tuple[int, int]] = None


@dataclass
class _Resident:
    """One loaded shard plus its footprint at load time."""

    shard: VenueShard
    resident: int
    mapped: int


class ShardRegistry:
    """Venue → shard mapping with lazy loads and LRU memory budget.

    Parameters
    ----------
    store:
        The :class:`~repro.artifacts.ArtifactStore` (or its root path)
        holding the shard artifacts.
    mapping:
        ``venue → artifact key`` for every venue this registry may
        serve.  Extend at runtime with :meth:`add`.
    memory_budget_mb:
        Evict least-recently-used venues once the summed shard
        footprints (resident + mapped, see
        :meth:`VenueShard.footprint`) exceed this many MiB.  ``None``
        means unbounded.  The most recently used shard is never
        evicted, so a single shard larger than the budget still
        serves.  Footprints are taken at load time — completion state
        derived lazily afterwards (a BiSIM shard's squared-map matrix)
        is not re-measured until the next load.
    service:
        Optional :class:`PositioningService` to mirror into: loads
        register the shard, evictions unregister it (dropping its
        cached answers).  This turns the existing single-process
        service into a lazy, memory-budgeted deployment — the fleet
        benchmark's baseline.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` to bind the
        ``registry.*`` counters and byte gauges to (fleet workers
        pass their per-process registry so one pipe drain ships
        load/evict counters next to the serve counters).  A private
        registry is created when omitted.

    Thread-safe; loads serialize on the registry lock.
    """

    def __init__(
        self,
        store,
        mapping: Dict[str, str],
        *,
        memory_budget_mb: Optional[float] = None,
        service: Optional[PositioningService] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._store = (
            store
            if isinstance(store, ArtifactStore)
            else ArtifactStore(store)
        )
        self._mapping = dict(mapping)
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ServingError("memory_budget_mb must be positive")
        self._budget = (
            None
            if memory_budget_mb is None
            else int(memory_budget_mb * (1 << 20))
        )
        self._service = service
        self._entries: "Dict[str, _Resident]" = {}
        self._order: List[str] = []  # LRU … MRU
        self._specs: Dict[str, _LoadSpec] = {}
        self._lock = threading.RLock()
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        m = self.metrics
        self._c_lazy = m.counter("registry.lazy_loads")
        self._c_fast = m.counter("registry.fast_reloads")
        self._c_evict = m.counter("registry.evictions")
        self._c_hits = m.counter("registry.hits")
        self._c_load_s = m.counter("registry.load_seconds")
        self._g_resident = m.gauge("registry.resident_bytes")
        self._g_mapped = m.gauge("registry.mapped_bytes")
        self._g_peak = m.gauge("registry.peak_bytes")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def venues(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._mapping))

    @property
    def resident(self) -> Tuple[str, ...]:
        """Resident venues, least → most recently used."""
        with self._lock:
            return tuple(self._order)

    @property
    def memory_budget_bytes(self) -> Optional[int]:
        return self._budget

    @memory_budget_bytes.setter
    def memory_budget_bytes(self, value: Optional[int]) -> None:
        """Retune the budget live; shrinking evicts immediately."""
        with self._lock:
            self._budget = None if value is None else int(value)
            self._enforce_budget()

    @property
    def stats(self) -> RegistryStats:
        with self._lock:
            return RegistryStats(
                lazy_loads=int(self._c_lazy.value),
                fast_reloads=int(self._c_fast.value),
                evictions=int(self._c_evict.value),
                hits=int(self._c_hits.value),
                load_seconds=self._c_load_s.value,
                resident_bytes=int(self._g_resident.value),
                mapped_bytes=int(self._g_mapped.value),
                peak_bytes=int(self._g_peak.value),
                resident_venues=len(self._entries),
                known_venues=len(self._mapping),
            )

    def _total_bytes(self) -> int:
        return int(self._g_resident.value + self._g_mapped.value)

    def add(self, venue: Union[str, ShardKey], key: str) -> None:
        """Register (or re-point) a venue's artifact key."""
        venue = coerce_key(venue)
        with self._lock:
            self._mapping[venue] = key

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def get(self, venue: Union[str, ShardKey]) -> VenueShard:
        """The venue's shard, loading it on first touch.

        A resident venue is a dict hit plus an LRU touch.  A miss
        loads from the store — fully verified the first time, a
        memory-map re-attach afterwards — then enforces the budget
        (evicting other venues, never the one just loaded).
        """
        if not isinstance(venue, str):
            venue = coerce_key(venue)
        with self._lock:
            entry = self._entries.get(venue)
            if entry is not None:
                # LRU touch: cheap for the list sizes a budget allows.
                if self._order[-1] != venue:
                    self._order.remove(venue)
                    self._order.append(venue)
                self._c_hits.add(1)
                return entry.shard
            key = self._mapping.get(venue)
            if key is None:
                raise ServingError(
                    f"unknown venue {venue!r}; registry knows "
                    f"{len(self._mapping)} venues"
                )
            t0 = time.perf_counter()
            shard, fast = self._load(venue, key)
            spec = self._specs.get(venue)
            if fast and spec is not None and spec.footprint is not None:
                resident, mapped = spec.footprint
            else:
                resident, mapped = shard.footprint()
                if fast and spec is not None:
                    # Footprints of fast reloads are identical run to
                    # run (same file, same attach path) — measure once.
                    spec.footprint = (resident, mapped)
            self._entries[venue] = _Resident(shard, resident, mapped)
            self._order.append(venue)
            self._c_lazy.add(1)
            self._c_load_s.add(time.perf_counter() - t0)
            self._g_resident.add(resident)
            self._g_mapped.add(mapped)
            if self._service is not None:
                self._service.register(shard)
            self._enforce_budget()
            self._g_peak.set_max(self._total_bytes())
            return shard

    def _load(self, venue: str, key: str) -> Tuple[VenueShard, bool]:
        """Load a shard; True in the pair means it was a fast reload."""
        path = self._store.path_for(key)
        spec = self._specs.get(venue)
        if spec is not None:
            shard = self._try_fast_load(venue, spec)
            if shard is not None:
                self._c_fast.add(1)
                return shard, True
            # Spec went stale (file replaced/retouched): fall through
            # to a full verified load, which refreshes it.
            del self._specs[venue]
        artifact = load_artifact(
            path,
            expected_kind=SHARD_KIND,
            mmap_arrays=("precomputed",),
        )
        shard = VenueShard.from_artifact(artifact, key=venue)
        members = mappable_members(path)
        if set(artifact.arrays) <= set(members):
            # Every tensor is re-attachable: remember where the bytes
            # live so the next load of this venue skips the archive
            # walk and the content re-hash.  mtime+size pin the spec
            # to the exact file that passed verification.
            st = os.stat(path)
            self._specs[venue] = _LoadSpec(
                path=str(path),
                mtime_ns=st.st_mtime_ns,
                size=st.st_size,
                members={
                    name: members[name] for name in artifact.arrays
                },
                config=artifact.config,
                metrics=artifact.metrics,
            )
        return shard, False

    def _try_fast_load(
        self, venue: str, spec: _LoadSpec
    ) -> Optional[VenueShard]:
        try:
            st = os.stat(spec.path)
            if (
                st.st_mtime_ns != spec.mtime_ns
                or st.st_size != spec.size
            ):
                return None
            arrays = attach_members(spec.path, spec.members)
            return VenueShard.from_artifact(
                Artifact(
                    kind=SHARD_KIND,
                    arrays=arrays,
                    config=spec.config,
                    metrics=spec.metrics,
                ),
                key=venue,
                verify_precompute=False,
            )
        except (OSError, ArtifactError, ServingError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _enforce_budget(self) -> None:
        # Caller holds the lock.  Never evict the MRU entry — the
        # caller is about to use it.
        if self._budget is None:
            return
        while (
            self._total_bytes() > self._budget
            and len(self._order) > 1
        ):
            self._evict_locked(self._order[0])

    def _evict_locked(self, venue: str) -> None:
        entry = self._entries.pop(venue)
        self._order.remove(venue)
        self._c_evict.add(1)
        self._g_resident.add(-entry.resident)
        self._g_mapped.add(-entry.mapped)
        if self._service is not None:
            self._service.unregister(venue)

    def evict(self, venue: str) -> bool:
        """Drop one venue now; returns whether it was resident."""
        with self._lock:
            if venue not in self._entries:
                return False
            self._evict_locked(venue)
            return True

    def evict_all(self) -> int:
        """Drop every resident venue; returns how many were evicted."""
        with self._lock:
            count = len(self._order)
            for venue in list(self._order):
                self._evict_locked(venue)
            return count


# ----------------------------------------------------------------------
# Fleet statistics
# ----------------------------------------------------------------------
@dataclass
class WorkerStats:
    """One worker process's counters (fetched over the pipe)."""

    worker: int
    requests: int = 0
    ticks: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    kernel_busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    venues_served: int = 0
    registry: RegistryStats = field(default_factory=RegistryStats)

    @property
    def utilization(self) -> float:
        """Fraction of the worker's wall clock spent serving."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.wall_seconds

    @property
    def kernel_utilization(self) -> float:
        """Fraction of serve time spent inside the bucket kernel.

        The worker enables :data:`~repro.positioning.index.
        KERNEL_STATS` for its lifetime; this ratio attributes its
        busy seconds to the indexed query kernel versus everything
        else on the serve path (imputation, routing, bookkeeping).
        Zero for fleets whose shards are small enough to serve brute
        force — the kernel never runs there.
        """
        if self.busy_seconds <= 0:
            return 0.0
        return self.kernel_busy_seconds / self.busy_seconds

    @property
    def mean_tick(self) -> float:
        """Mean requests served per tick (the batching win)."""
        return self.requests / self.ticks if self.ticks else 0.0

    def render(self) -> str:
        return (
            f"worker {self.worker}: {self.requests} req in "
            f"{self.ticks} ticks (mean {self.mean_tick:.1f}/tick, "
            f"{self.batches} venue batches, "
            f"{self.venues_served} venues) "
            f"util={100 * self.utilization:.0f}% "
            f"kernel={100 * self.kernel_utilization:.0f}% | "
            f"{self.registry.render()}"
        )


@dataclass
class FleetStats:
    """Fleet-wide counters: routing tier + every worker's registry.

    ``requests`` counts accepted submissions; ``errors`` the subset
    whose ticket resolved with an error (worker-side routing or serve
    failures — zero in a healthy fleet); ``respawns`` how many worker
    crashes were detected and recovered.  The registry counters
    (``lazy_loads`` / ``fast_reloads`` / ``evictions`` and the byte
    gauges) are summed over the per-worker registries in ``workers``.
    """

    workers: List[WorkerStats] = field(default_factory=list)
    requests: int = 0
    resolved: int = 0
    errors: int = 0
    respawns: int = 0
    outstanding: int = 0

    def _sum(self, attr: str):
        return sum(getattr(w.registry, attr) for w in self.workers)

    @property
    def lazy_loads(self) -> int:
        return self._sum("lazy_loads")

    @property
    def fast_reloads(self) -> int:
        return self._sum("fast_reloads")

    @property
    def evictions(self) -> int:
        return self._sum("evictions")

    @property
    def resident_bytes(self) -> int:
        return self._sum("resident_bytes")

    @property
    def mapped_bytes(self) -> int:
        return self._sum("mapped_bytes")

    @property
    def peak_bytes(self) -> int:
        return self._sum("peak_bytes")

    @property
    def resident_venues(self) -> int:
        return self._sum("resident_venues")

    @property
    def kernel_busy_seconds(self) -> float:
        return sum(w.kernel_busy_seconds for w in self.workers)

    @property
    def kernel_utilization(self) -> float:
        """Fleet-wide share of serve time inside the bucket kernel."""
        busy = sum(w.busy_seconds for w in self.workers)
        if busy <= 0:
            return 0.0
        return self.kernel_busy_seconds / busy

    def render(self) -> str:
        lines = [
            f"fleet: {self.requests} requests "
            f"({self.errors} errors, {self.outstanding} in flight), "
            f"{len(self.workers)} workers, "
            f"{self.respawns} respawns | "
            f"loads={self.lazy_loads} (fast {self.fast_reloads}) "
            f"evictions={self.evictions} "
            f"resident={self.resident_venues} venues "
            f"{(self.resident_bytes + self.mapped_bytes) / 1e6:.1f}MB "
            f"kernel={100 * self.kernel_utilization:.0f}%"
        ]
        for w in self.workers:
            lines.append("  " + w.render())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    conn,
    store_root: str,
    mapping: Dict[str, str],
    budget_mb: Optional[float],
    worker_id: int,
    trace_sample_every: int = 0,
    slow_ms: Optional[float] = None,
) -> None:
    """One fleet worker: drain the pipe, serve per-venue batches.

    Every iteration blocks on the first message, then drains whatever
    else is already queued — so under load a tick naturally coalesces
    many bundles, and each venue in the tick costs one ``locate()``
    regardless of how many requests it received.  Module-level (not a
    closure) so the ``spawn`` start method can import it.

    The worker keeps its counters in a per-process
    :class:`~repro.obs.MetricsRegistry` (shared with its shard
    registry) and ships the delta since its last answer inside every
    ``"done"`` message; when ``trace_sample_every`` is positive it
    also samples span trees per venue batch and ships those alongside.
    """
    metrics = MetricsRegistry()
    registry = ShardRegistry(
        ArtifactStore(store_root),
        mapping,
        memory_budget_mb=budget_mb,
        metrics=metrics,
    )
    tracer = (
        Tracer(sample_every=trace_sample_every, slow_ms=slow_ms)
        if trace_sample_every > 0
        else None
    )
    # Attribute this worker's serve time to the indexed query kernel
    # (each worker is its own process, so the module singleton is
    # private to it and the accumulation races with nobody).
    KERNEL_STATS.reset()
    KERNEL_STATS.enable()
    started = time.perf_counter()
    c_requests = metrics.counter("worker.requests")
    c_ticks = metrics.counter("worker.ticks")
    c_batches = metrics.counter("worker.batches")
    c_busy = metrics.counter("worker.busy_seconds")
    venues_served: set = set()

    def stats_payload() -> WorkerStats:
        return WorkerStats(
            worker=worker_id,
            requests=int(c_requests.value),
            ticks=int(c_ticks.value),
            batches=int(c_batches.value),
            busy_seconds=c_busy.value,
            kernel_busy_seconds=KERNEL_STATS.busy_seconds,
            wall_seconds=time.perf_counter() - started,
            venues_served=len(venues_served),
            registry=registry.stats,
        )

    def telemetry_payload() -> Dict[str, Any]:
        # Top the kernel.* counters up to the KERNEL_STATS snapshot
        # so the drained delta carries per-stage kernel seconds too.
        KERNEL_STATS.to_metrics(metrics)
        payload: Dict[str, Any] = {
            "metrics": metrics.drain(
                gauge_labels={"worker": str(worker_id)}
            )
        }
        if tracer is not None:
            payload.update(tracer.drain())
        return payload

    while True:
        try:
            messages = [conn.recv()]
            while conn.poll(0):
                messages.append(conn.recv())
        except (EOFError, OSError):
            return
        reqs: List[Tuple[int, str, np.ndarray]] = []
        stat_tokens: List[int] = []
        stop = False
        for msg in messages:
            kind = msg[0]
            if kind == "batch":
                reqs.extend(msg[1])
            elif kind == "stats":
                stat_tokens.append(msg[1])
            elif kind == "stop":
                stop = True
        try:
            if reqs:
                t0 = time.perf_counter()
                c_ticks.add(1)
                c_requests.add(len(reqs))
                groups: "Dict[str, List[Tuple[int, np.ndarray]]]" = {}
                for rid, venue, row in reqs:
                    groups.setdefault(venue, []).append((rid, row))
                done_rids: List[int] = []
                done_locs: List[np.ndarray] = []
                errors: List[Tuple[int, str]] = []
                for venue, items in groups.items():
                    rids = [rid for rid, _ in items]
                    try:
                        rows = np.stack([row for _, row in items])
                        shard = registry.get(venue)
                        if tracer is not None and tracer.sample():
                            with tracer.trace(
                                "worker.serve",
                                meta={
                                    "venue": venue,
                                    "rows": len(items),
                                    "worker": worker_id,
                                },
                            ):
                                located = shard.locate(
                                    rows, tracer=tracer
                                )
                        else:
                            located = shard.locate(rows)
                    except Exception as exc:
                        reason = f"{type(exc).__name__}: {exc}"
                        errors.extend((rid, reason) for rid in rids)
                    else:
                        c_batches.add(1)
                        venues_served.add(venue)
                        done_rids.extend(rids)
                        done_locs.append(located)
                locations = (
                    np.concatenate(done_locs)
                    if done_locs
                    else np.empty((0, 2))
                )
                c_busy.add(time.perf_counter() - t0)
                conn.send(
                    (
                        "done",
                        done_rids,
                        locations,
                        errors,
                        telemetry_payload(),
                    )
                )
            for token in stat_tokens:
                conn.send(("stats", token, stats_payload()))
            if stop:
                conn.send(("stopped", stats_payload()))
                conn.close()
                return
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Parent-side record of one worker process."""

    __slots__ = (
        "index",
        "mapping",
        "proc",
        "conn",
        "send_lock",
        "buffer",
        "generation",
        "final_stats",
    )

    def __init__(self, index: int, mapping: Dict[str, str]):
        self.index = index
        self.mapping = mapping
        self.proc = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.buffer: List[Tuple[int, str, np.ndarray]] = []
        self.generation = 0
        self.final_stats: Optional[WorkerStats] = None


class ShardFleet:
    """Multi-process serving over hash-partitioned venue shards.

    Parameters
    ----------
    store:
        Artifact store (or root path) every worker loads shards from.
    mapping:
        ``venue → artifact key`` for the whole fleet; each worker
        receives the slice :func:`partition_venue` assigns it.
    workers:
        Process count.  Each venue is owned by exactly one worker.
    memory_budget_mb:
        Fleet-wide budget, split evenly across the workers' shard
        registries; ``None`` disables eviction.
    bundle_size:
        Requests buffered per worker before the submitting thread
        ships the bundle itself; a background flusher ships partial
        buffers every ``flush_interval_ms`` so a lone request is never
        stranded.
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (fast, inherits the warmed import state), else
        ``"spawn"``.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` to aggregate into.
        The fleet always keeps an internal telemetry view (worker
        metric deltas merge into it every ``"done"`` message, and the
        parent records the end-to-end ``fleet.request_seconds``
        histogram there); passing one explicitly additionally turns
        on worker-side span sampling, configured by the telemetry
        tracer's ``sample_every`` / ``slow_ms``, with the sampled
        span trees shipped back and retained for
        :meth:`Telemetry.spans`.

    Use as a context manager (or :meth:`start` / :meth:`close`).
    Submission is thread-safe.
    """

    def __init__(
        self,
        store,
        mapping: Dict[str, str],
        *,
        workers: int = 4,
        memory_budget_mb: Optional[float] = None,
        bundle_size: int = 256,
        flush_interval_ms: float = 2.0,
        start_method: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if workers < 1:
            raise ServingError("fleet needs at least one worker")
        if bundle_size < 1:
            raise ServingError("bundle_size must be >= 1")
        import multiprocessing as mp

        if start_method is None:
            start_method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._store_root = str(
            store.root if isinstance(store, ArtifactStore) else store
        )
        self._mapping = dict(mapping)
        self.n_workers = int(workers)
        self._budget_mb = memory_budget_mb
        self._worker_budget_mb = (
            None
            if memory_budget_mb is None
            else memory_budget_mb / workers
        )
        self.bundle_size = int(bundle_size)
        self._flush_interval = float(flush_interval_ms) / 1e3
        self._workers = [
            _Worker(
                wid,
                {
                    venue: key
                    for venue, key in self._mapping.items()
                    if partition_venue(venue, workers) == wid
                },
            )
            for wid in range(workers)
        ]
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry()
        )
        # Worker-side tracing costs a pipe payload per tick, so it is
        # armed only when the caller handed us a telemetry bundle.
        self._worker_sample_every = (
            self.telemetry.tracer.sample_every
            if telemetry is not None
            else 0
        )
        self._worker_slow_ms = (
            self.telemetry.tracer.slow_ms
            if telemetry is not None
            else None
        )
        m = self.telemetry.metrics
        self._c_requests = m.counter("fleet.requests")
        self._c_resolved = m.counter("fleet.resolved")
        self._c_errors = m.counter("fleet.errors")
        self._c_respawns = m.counter("fleet.respawns")
        self._h_latency = m.histogram("fleet.request_seconds")
        self._mu = threading.Lock()
        self._done_cv = threading.Condition()
        self._pending: Dict[
            int, Tuple[str, np.ndarray, Ticket, int, float]
        ] = {}
        self._next_rid = 0
        self._outstanding = 0
        self._stats_replies: Dict[int, WorkerStats] = {}
        self._stats_cv = threading.Condition()
        self._next_token = 0
        self._stop_event = threading.Event()
        self._flusher: Optional[threading.Thread] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardFleet":
        if self._started:
            raise ServingError("fleet already started")
        self._started = True
        for worker in self._workers:
            self._spawn(worker)
        self._flusher = threading.Thread(
            target=self._flush_loop, name="fleet-flusher", daemon=True
        )
        self._flusher.start()
        return self

    def __enter__(self) -> "ShardFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._store_root,
                worker.mapping,
                self._worker_budget_mb,
                worker.index,
                self._worker_sample_every,
                self._worker_slow_ms,
            ),
            name=f"fleet-worker-{worker.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        generation = worker.generation
        threading.Thread(
            target=self._collect,
            args=(worker, generation, parent_conn),
            name=f"fleet-collector-{worker.index}.{generation}",
            daemon=True,
        ).start()

    def close(self, timeout: float = 10.0) -> None:
        """Drain in-flight work, stop the workers, fail leftovers.

        Idempotent.  Requests still unresolved after the drain window
        resolve with a :class:`ServingError` rather than hanging their
        callers forever.
        """
        if not self._started or self._closed:
            return
        self._closed = True
        self.flush()
        try:
            self.wait_outstanding(0, timeout=timeout)
        except ServingError:
            pass
        self._stop_event.set()
        for worker in self._workers:
            self._send(worker, ("stop",), respawn=False)
        for worker in self._workers:
            if worker.proc is not None:
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        with self._mu:
            leftovers = list(self._pending.values())
            self._pending.clear()
            self._outstanding = 0
        if leftovers:
            now = time.perf_counter()
            with self._done_cv:
                for _, _, ticket, _, _ in leftovers:
                    ticket.error = ServingError("fleet closed")
                    ticket.done_at = now
                    ticket.done = True
                self._done_cv.notify_all()
        if self._flusher is not None:
            self._flusher.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Routing + submission
    # ------------------------------------------------------------------
    def partition(self, venue: str) -> int:
        """The worker index that owns ``venue``."""
        return partition_venue(venue, self.n_workers)

    @property
    def venues(self) -> Tuple[str, ...]:
        return tuple(sorted(self._mapping))

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def submit(self, venue: str, scan: np.ndarray) -> Ticket:
        """Queue one raw scan for its owning worker; non-blocking.

        The bundle ships when it reaches ``bundle_size`` (in the
        submitting thread) or on the next flusher tick.  Unknown
        venues fail here, in the caller — they never cost a pipe
        round-trip.
        """
        if not self._started or self._closed:
            raise ServingError("fleet is not running")
        if venue not in self._mapping:
            raise ServingError(
                f"unknown venue {venue!r}; fleet serves "
                f"{len(self._mapping)} venues"
            )
        row = np.asarray(scan, dtype=float)
        if row.ndim != 1:
            raise ServingError("submit() takes a single (D,) scan")
        worker = self._workers[partition_venue(venue, self.n_workers)]
        ticket = Ticket(self._done_cv)
        bundle = None
        with self._mu:
            rid = self._next_rid
            self._next_rid += 1
            self._pending[rid] = (
                venue, row, ticket, worker.index, time.perf_counter()
            )
            self._outstanding += 1
            self._c_requests.add(1)
            worker.buffer.append((rid, venue, row))
            if len(worker.buffer) >= self.bundle_size:
                bundle = worker.buffer
                worker.buffer = []
        if bundle is not None:
            self._send(worker, ("batch", bundle))
        return ticket

    def submit_many(
        self, items: Sequence[Tuple[str, np.ndarray]]
    ) -> List[Ticket]:
        """Queue many ``(venue, scan)`` pairs under one lock round.

        Semantics match a :meth:`submit` loop but the per-request
        bookkeeping (rid allocation, pending insert, buffer append)
        is amortised over the whole chunk — the open-loop driver's
        counterpart to the workers' per-tick batching.  The whole
        chunk is validated before any of it is queued, so a bad item
        rejects the batch without side effects.
        """
        if not self._started or self._closed:
            raise ServingError("fleet is not running")
        prepared: List[Tuple[str, np.ndarray, int]] = []
        for venue, scan in items:
            if venue not in self._mapping:
                raise ServingError(
                    f"unknown venue {venue!r}; fleet serves "
                    f"{len(self._mapping)} venues"
                )
            row = np.asarray(scan, dtype=float)
            if row.ndim != 1:
                raise ServingError(
                    "submit_many() takes (venue, (D,) scan) pairs"
                )
            prepared.append(
                (venue, row, partition_venue(venue, self.n_workers))
            )
        tickets: List[Ticket] = []
        bundles: List[Tuple[_Worker, list]] = []
        with self._mu:
            now = time.perf_counter()
            self._c_requests.add(len(prepared))
            for venue, row, wid in prepared:
                worker = self._workers[wid]
                ticket = Ticket(self._done_cv)
                rid = self._next_rid
                self._next_rid += 1
                self._pending[rid] = (venue, row, ticket, wid, now)
                self._outstanding += 1
                worker.buffer.append((rid, venue, row))
                if len(worker.buffer) >= self.bundle_size:
                    bundles.append((worker, worker.buffer))
                    worker.buffer = []
                tickets.append(ticket)
        for worker, bundle in bundles:
            self._send(worker, ("batch", bundle))
        return tickets

    def locate(
        self,
        venue: str,
        scan: np.ndarray,
        timeout: Optional[float] = 30.0,
    ) -> np.ndarray:
        """Submit one scan, flush, and wait for its ``(2,)`` answer."""
        ticket = self.submit(venue, scan)
        self.flush()
        return ticket.result(timeout)

    def flush(self) -> None:
        """Ship every worker's partial buffer now."""
        for worker in self._workers:
            bundle = None
            with self._mu:
                if worker.buffer:
                    bundle = worker.buffer
                    worker.buffer = []
            if bundle is not None:
                self._send(worker, ("batch", bundle))

    def wait_outstanding(
        self, limit: int = 0, timeout: Optional[float] = None
    ) -> None:
        """Block until at most ``limit`` requests are in flight.

        The backpressure valve for open-loop load drivers: submit
        freely, then park here whenever the in-flight window is full.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._done_cv:
            while self._outstanding > limit:
                remaining = (
                    None
                    if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise ServingError(
                        f"still {self._outstanding} requests in "
                        f"flight after {timeout}s"
                    )
                self._done_cv.wait(remaining)

    # ------------------------------------------------------------------
    # Background machinery
    # ------------------------------------------------------------------
    def _flush_loop(self) -> None:
        while not self._stop_event.wait(self._flush_interval):
            self.flush()

    def _send(self, worker: _Worker, message, *, respawn=True) -> None:
        generation = worker.generation
        try:
            with worker.send_lock:
                conn = worker.conn
                if conn is None:
                    raise BrokenPipeError
                conn.send(message)
        except (BrokenPipeError, OSError, ValueError):
            # The worker died with this message in the pipe.  Any
            # "batch" payload is still tracked in _pending, so the
            # crash handler resubmits it to the replacement.
            if respawn and not self._closed:
                self._handle_crash(worker, generation)

    def _collect(self, worker: _Worker, generation: int, conn) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError, TypeError, ValueError):
                # TypeError/ValueError leak out of Connection.recv
                # when close() invalidates the handle mid-read — a
                # shutdown artifact, not a worker crash.
                if not self._closed and not self._stop_event.is_set():
                    self._handle_crash(worker, generation)
                return
            kind = msg[0]
            if kind == "done":
                self._resolve(msg[1], msg[2], msg[3])
                if len(msg) > 4 and msg[4]:
                    self.telemetry.ingest(msg[4])
            elif kind == "stats":
                with self._stats_cv:
                    self._stats_replies[msg[1]] = msg[2]
                    self._stats_cv.notify_all()
            elif kind == "stopped":
                worker.final_stats = msg[1]
                return

    def _resolve(
        self,
        rids: Sequence[int],
        locations: np.ndarray,
        errors: Sequence[Tuple[int, str]],
    ) -> None:
        now = time.perf_counter()
        settled: List[Tuple[Ticket, Optional[np.ndarray], Optional[BaseException]]] = []
        latencies: List[float] = []
        with self._mu:
            for i, rid in enumerate(rids):
                entry = self._pending.pop(rid, None)
                if entry is not None:
                    settled.append((entry[2], locations[i], None))
                    latencies.append(now - entry[4])
            for rid, reason in errors:
                entry = self._pending.pop(rid, None)
                if entry is not None:
                    settled.append(
                        (entry[2], None, ServingError(reason))
                    )
                    latencies.append(now - entry[4])
                    self._c_errors.add(1)
            self._outstanding -= len(settled)
            self._c_resolved.add(len(settled))
            if latencies:
                # End-to-end submit → resolution latency, including
                # the pipe hops — the live distribution the fleet
                # benchmark checks against loadgen's percentiles.
                self._h_latency.record_many(np.asarray(latencies))
        if settled:
            with self._done_cv:
                for ticket, value, error in settled:
                    ticket.value = value
                    ticket.error = error
                    ticket.done_at = now
                    ticket.done = True
                self._done_cv.notify_all()

    def _handle_crash(self, worker: _Worker, generation: int) -> None:
        """Respawn a dead worker and resubmit its in-flight work.

        Guarded by the worker's generation counter so the collector
        (EOF) and a sender (broken pipe) noticing the same corpse
        respawn it once, not twice.
        """
        with self._mu:
            if worker.generation != generation or self._closed:
                return
            worker.generation += 1
            self._c_respawns.add(1)
            redo = [
                (rid, venue, row)
                for rid, (venue, row, _, wid, _)
                in self._pending.items()
                if wid == worker.index
            ]
            redo.extend(worker.buffer)
            worker.buffer = []
            old_conn, old_proc = worker.conn, worker.proc
            worker.conn = worker.proc = None
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:
                pass
        if old_proc is not None and old_proc.is_alive():
            old_proc.kill()
        self._spawn(worker)
        if redo:
            self._send(worker, ("batch", redo))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self, timeout: float = 5.0) -> FleetStats:
        """Fleet-wide snapshot (one pipe round-trip per worker).

        A worker that cannot answer within ``timeout`` (crashed
        mid-snapshot) contributes its last known final stats, or
        nothing — the routing-tier counters are always exact.
        """
        tokens: Dict[int, _Worker] = {}
        with self._stats_cv:
            for worker in self._workers:
                token = self._next_token
                self._next_token += 1
                tokens[token] = worker
        for token, worker in tokens.items():
            self._send(worker, ("stats", token))
        deadline = time.monotonic() + timeout
        collected: List[WorkerStats] = []
        with self._stats_cv:
            while True:
                missing = [
                    t
                    for t in tokens
                    if t not in self._stats_replies
                ]
                if not missing:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._stats_cv.wait(remaining)
            for token, worker in tokens.items():
                reply = self._stats_replies.pop(token, None)
                if reply is None:
                    reply = worker.final_stats
                if reply is not None:
                    collected.append(reply)
        collected.sort(key=lambda w: w.worker)
        with self._mu:
            return FleetStats(
                workers=collected,
                requests=int(self._c_requests.value),
                resolved=int(self._c_resolved.value),
                errors=int(self._c_errors.value),
                respawns=int(self._c_respawns.value),
                outstanding=self._outstanding,
            )
