"""K-means clustering (from scratch; scikit-learn is unavailable).

Lloyd's algorithm with k-means++ initialisation.  The paper uses
K-means with Euclidean distance on binarised AP profiles concatenated
with RP coordinates ("We also considered Manhattan distance, but it
achieved inferior results"), so both metrics are supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ClusteringError


@dataclass
class KMeansResult:
    """Outcome of one K-means run.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster index per sample.
    centers:
        ``(k, d)`` cluster centroids.
    inertia:
        Within-cluster sum of squared distances (the elbow metric).
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float

    @property
    def n_clusters(self) -> int:
        return int(self.centers.shape[0])

    def clusters(self) -> List[np.ndarray]:
        """Sample indices per cluster (may contain empty arrays)."""
        return [
            np.where(self.labels == k)[0] for k in range(self.n_clusters)
        ]


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    *,
    metric: str = "euclidean",
    max_iter: int = 100,
    tol: float = 1e-6,
    n_init: int = 3,
) -> KMeansResult:
    """Run K-means, keeping the best of ``n_init`` restarts.

    Parameters
    ----------
    data:
        ``(n, d)`` samples.
    metric:
        ``"euclidean"`` (default, as the paper settled on) or
        ``"manhattan"``.
    """
    x = np.asarray(data, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0:
        raise ClusteringError("data must be a non-empty (n, d) array")
    n = x.shape[0]
    if not 1 <= n_clusters <= n:
        raise ClusteringError(
            f"n_clusters={n_clusters} invalid for {n} samples"
        )
    if metric not in ("euclidean", "manhattan"):
        raise ClusteringError(f"unknown metric {metric!r}")

    best: KMeansResult | None = None
    for _ in range(max(1, n_init)):
        result = _kmeans_once(x, n_clusters, rng, metric, max_iter, tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best


def _kmeans_once(
    x: np.ndarray,
    k: int,
    rng: np.random.Generator,
    metric: str,
    max_iter: int,
    tol: float,
) -> KMeansResult:
    centers = _kmeanspp_init(x, k, rng)
    labels = np.zeros(x.shape[0], dtype=int)
    for _ in range(max_iter):
        dist = _pairwise(x, centers, metric)
        labels = np.argmin(dist, axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = x[labels == j]
            if members.shape[0] > 0:
                new_centers[j] = (
                    members.mean(axis=0)
                    if metric == "euclidean"
                    else np.median(members, axis=0)
                )
            else:
                # Re-seed an empty cluster at the farthest sample.
                far = int(np.argmax(dist.min(axis=1)))
                new_centers[j] = x[far]
        shift = float(np.abs(new_centers - centers).max())
        centers = new_centers
        if shift < tol:
            break
    dist = _pairwise(x, centers, metric)
    labels = np.argmin(dist, axis=1)
    inertia = float((dist[np.arange(x.shape[0]), labels] ** 2).sum())
    return KMeansResult(labels=labels, centers=centers, inertia=inertia)


def _kmeanspp_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = x.shape[0]
    centers = [x[int(rng.integers(n))]]
    for _ in range(1, k):
        d2 = np.min(
            ((x[:, None, :] - np.array(centers)[None, :, :]) ** 2).sum(
                axis=2
            ),
            axis=1,
        )
        total = d2.sum()
        if total <= 0:
            centers.append(x[int(rng.integers(n))])
            continue
        probs = d2 / total
        centers.append(x[int(rng.choice(n, p=probs))])
    return np.array(centers)


def _pairwise(x: np.ndarray, centers: np.ndarray, metric: str) -> np.ndarray:
    diff = x[:, None, :] - centers[None, :, :]
    if metric == "euclidean":
        return np.sqrt((diff**2).sum(axis=2))
    return np.abs(diff).sum(axis=2)
