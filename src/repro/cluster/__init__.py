"""Clustering substrate: K-means, elbow selection, constrained agglomerative."""

from .agglomerative import constrained_agglomerative
from .elbow import ElbowResult, elbow_kmeans
from .kmeans import KMeansResult, kmeans

__all__ = [
    "ElbowResult",
    "KMeansResult",
    "constrained_agglomerative",
    "elbow_kmeans",
    "kmeans",
]
