"""Elbow-method K selection for K-means (the paper's ElbowKM baseline).

Runs K-means for K = 1..U, records the within-cluster sum of squares
(inertia) curve, and picks the knee: the K maximising the distance of
the (K, inertia) point from the straight line joining the curve's
endpoints — the standard geometric knee criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ClusteringError
from .kmeans import KMeansResult, kmeans


@dataclass
class ElbowResult:
    """Inertia curve and the selected knee."""

    k_values: List[int]
    inertias: List[float]
    best_k: int
    best_result: KMeansResult


def elbow_kmeans(
    data: np.ndarray,
    rng: np.random.Generator,
    *,
    upper_bound: int = 200,
    metric: str = "euclidean",
) -> ElbowResult:
    """Select K by the elbow method and return the chosen clustering."""
    x = np.asarray(data, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0:
        raise ClusteringError("data must be a non-empty (n, d) array")
    u = min(upper_bound, x.shape[0])
    if u < 1:
        raise ClusteringError("upper bound must be >= 1")

    k_values = list(range(1, u + 1))
    results: List[KMeansResult] = []
    inertias: List[float] = []
    for k in k_values:
        res = kmeans(x, k, rng, metric=metric, n_init=1)
        results.append(res)
        inertias.append(res.inertia)

    best_k = _knee_index(k_values, inertias) + 1
    return ElbowResult(
        k_values=k_values,
        inertias=inertias,
        best_k=best_k,
        best_result=results[best_k - 1],
    )


def _knee_index(ks: List[int], inertias: List[float]) -> int:
    """Index of the point farthest from the endpoint chord."""
    if len(ks) == 1:
        return 0
    pts = np.stack(
        [np.asarray(ks, dtype=float), np.asarray(inertias, dtype=float)],
        axis=1,
    )
    # Normalise both axes so the knee is scale-invariant.
    span = pts.max(axis=0) - pts.min(axis=0)
    span[span == 0] = 1.0
    norm = (pts - pts.min(axis=0)) / span
    start, end = norm[0], norm[-1]
    chord = end - start
    chord_len = float(np.linalg.norm(chord))
    if chord_len == 0:
        return 0
    rel = norm - start
    cross = np.abs(rel[:, 0] * chord[1] - rel[:, 1] * chord[0])
    return int(np.argmax(cross / chord_len))
