"""Constraint-aware agglomerative clustering machinery.

Generic bottom-up merging used by TopoAC: starting from singleton
clusters, repeatedly merge the *closest* pair (centre-to-centre
Euclidean distance) whose merged cluster passes a caller-supplied
constraint predicate; stop when no pair passes.

The constraint makes the classic "merge the globally closest pair"
loop subtle: a pair may fail now yet its members may merge with other
clusters later, so we only discard pairs permanently when *their exact
member sets* failed the check.  Failed checks are memoised by frozen
member sets, which keeps the quadratic loop tractable.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..exceptions import ClusteringError

ConstraintFn = Callable[[np.ndarray], bool]
"""Receives the member-index array of a *candidate merged* cluster and
returns True when the merge is admissible."""


def constrained_agglomerative(
    points: np.ndarray,
    constraint: ConstraintFn,
    *,
    max_merges: int | None = None,
) -> List[np.ndarray]:
    """Cluster ``points`` bottom-up under a merge constraint.

    Parameters
    ----------
    points:
        ``(n, d)`` coordinates used for centre-to-centre distances.
    constraint:
        Admissibility predicate on the merged cluster's member indices.
    max_merges:
        Optional safety cap (defaults to unlimited).

    Returns
    -------
    List of member-index arrays, one per final cluster.
    """
    x = np.asarray(points, dtype=float)
    if x.ndim != 2 or x.shape[0] == 0:
        raise ClusteringError("points must be a non-empty (n, d) array")
    n = x.shape[0]
    clusters: List[np.ndarray] = [np.array([i]) for i in range(n)]
    centers = [x[i].copy() for i in range(n)]
    failed: set = set()
    merges = 0
    limit = max_merges if max_merges is not None else n * n

    while len(clusters) > 1 and merges < limit:
        pair = _closest_admissible_pair(
            clusters, centers, constraint, failed
        )
        if pair is None:
            break
        i, j = pair
        merged = np.concatenate([clusters[i], clusters[j]])
        # Remove j first (j > i) to keep indices stable.
        for idx in sorted((i, j), reverse=True):
            clusters.pop(idx)
            centers.pop(idx)
        clusters.append(merged)
        centers.append(x[merged].mean(axis=0))
        merges += 1
    return clusters


def _closest_admissible_pair(
    clusters: Sequence[np.ndarray],
    centers: Sequence[np.ndarray],
    constraint: ConstraintFn,
    failed: set,
):
    """Find the closest cluster pair whose merge passes the constraint.

    Returns ``(i, j)`` with ``i < j`` or None.  Candidate pairs are
    examined in increasing centre-distance order; the first admissible
    one wins (this matches TopoAC's "pick the pair with minimum distance
    s.t. the topological examination passes").
    """
    m = len(clusters)
    if m < 2:
        return None
    cent = np.array(centers)
    diff = cent[:, None, :] - cent[None, :, :]
    dist = np.linalg.norm(diff, axis=2)
    iu = np.triu_indices(m, k=1)
    order = np.argsort(dist[iu], kind="stable")
    for flat in order:
        i = int(iu[0][flat])
        j = int(iu[1][flat])
        key = frozenset(
            (frozenset(clusters[i].tolist()), frozenset(clusters[j].tolist()))
        )
        if key in failed:
            continue
        merged = np.concatenate([clusters[i], clusters[j]])
        if constraint(merged):
            return i, j
        failed.add(key)
    return None
