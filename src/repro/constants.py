"""Domain constants shared across the library.

The paper works with Wi-Fi received signal strength indicator (RSSI)
values, which are integers in ``[-99, 0]`` dBm when a signal is observed.
Identified MNAR (missing not at random) values are filled with ``-100``
dBm, the conventional "unobservable" level — note that -99 dBm is vastly
stronger than -100 dBm in linear power terms because dBm is logarithmic,
so the two fills are semantically distinct.
"""

#: Strongest representable RSSI (dBm).
RSSI_MAX = 0

#: Weakest *observable* RSSI (dBm).
RSSI_MIN = -99

#: Fill value used for MNAR (unobservable) entries (dBm).
MNAR_FILL = -100.0

#: Mask-matrix code for an observed RSSI.
MASK_OBSERVED = 1

#: Mask-matrix code for a missing-at-random RSSI.
MASK_MAR = 0

#: Mask-matrix code for a missing-not-at-random RSSI.
MASK_MNAR = -1

#: Default merge threshold (seconds) for radio-map creation (Section II-B).
DEFAULT_EPSILON = 1.0

#: Default fraction threshold eta for Algorithm 2.
DEFAULT_ETA = 0.1

#: Default input sequence length for BiSIM (Section V-C, tuned to 5).
DEFAULT_SEQUENCE_LENGTH = 5

#: Size of the adjacent-RP patch used when sampling ground-truth MNARs
#: (Section III-B fixes this to 6).
MNAR_SAMPLE_PATCH_SIZE = 6
