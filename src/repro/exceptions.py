"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Raised for degenerate or invalid geometric input."""


class VenueError(ReproError):
    """Raised when a floor plan or venue specification is inconsistent."""


class SurveyError(ReproError):
    """Raised when a walking survey cannot be simulated or parsed."""


class RadioMapError(ReproError):
    """Raised for malformed radio maps or invalid perturbation requests."""


class ClusteringError(ReproError):
    """Raised when clustering input is empty or parameters are invalid."""


class DifferentiationError(ReproError):
    """Raised by the missing-RSSI differentiator on invalid input."""


class NeuroError(ReproError):
    """Raised by the autodiff/neural substrate."""


class ImputationError(ReproError):
    """Raised when an imputer receives data it cannot process."""


class PositioningError(ReproError):
    """Raised by location-estimation algorithms on invalid input."""


class ExperimentError(ReproError):
    """Raised by the experiment harness on bad configuration."""


class ServingError(ReproError):
    """Raised by the serving layer on bad deployments or queries."""


class ArtifactError(ReproError):
    """Raised by the artifact store on missing, corrupted or
    version-mismatched artifacts."""


class IngestError(ReproError):
    """Raised by the streaming-ingestion layer on empty publishes or
    broken delta lineage."""


class TrackingError(ReproError):
    """Raised by the trajectory-tracking subsystem on bad motion
    configs, unknown/expired sessions or invalid step batches."""


class ObservabilityError(ReproError):
    """Raised by the telemetry layer on metric type/shape conflicts
    or malformed exports."""
