"""Recurrent cells.

:class:`LSTMCell` is the standard four-gate LSTM the paper's encoder
and decoder units pass their combined inputs through (Eqs. 5 and 8 say
"passed to a standard LSTM cell").  :class:`SimpleRecurrentCell` is the
literal single-sigmoid recurrence those equations write out — kept as
an ablation/back-stop; BiSIM defaults to the LSTM.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import NeuroError
from .init import xavier_uniform, zeros
from .module import Module, Parameter
from .tensor import Tensor, concat


class LSTMCell(Module):
    """A standard LSTM cell for ``(batch, input_size)`` inputs."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator
    ):
        if input_size <= 0 or hidden_size <= 0:
            raise NeuroError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.w_ih = Parameter(xavier_uniform((4 * h, input_size), rng))
        self.w_hh = Parameter(xavier_uniform((4 * h, h), rng))
        b = np.zeros(4 * h)
        b[h : 2 * h] = 1.0  # forget-gate bias trick for stable training
        self.bias = Parameter(b)

    def __call__(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """One step: returns the new ``(h, c)`` state."""
        h_prev, c_prev = state
        gates = x @ self.w_ih.T + h_prev @ self.w_hh.T + self.bias
        hs = self.hidden_size
        i = gates[:, 0:hs].sigmoid()
        f = gates[:, hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        return (
            Tensor(zeros((batch, self.hidden_size))),
            Tensor(zeros((batch, self.hidden_size))),
        )


class SimpleRecurrentCell(Module):
    """The literal recurrence of Eqs. 5/8: ``h = σ(W h_prev + U x + b)``.

    State is ``(h, h)`` so it is interface-compatible with
    :class:`LSTMCell`.
    """

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator
    ):
        if input_size <= 0 or hidden_size <= 0:
            raise NeuroError("sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w = Parameter(xavier_uniform((hidden_size, hidden_size), rng))
        self.u = Parameter(xavier_uniform((hidden_size, input_size), rng))
        self.bias = Parameter(zeros((hidden_size,)))

    def __call__(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        h_prev, _ = state
        h = (h_prev @ self.w.T + x @ self.u.T + self.bias).sigmoid()
        return h, h

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        z = Tensor(zeros((batch, self.hidden_size)))
        return z, z
