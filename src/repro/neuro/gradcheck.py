"""Finite-difference gradient checking for the autodiff engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .module import Parameter
from .tensor import Tensor


def numeric_gradient(
    fn: Callable[[], Tensor], param: Parameter, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t.
    ``param`` (mutates and restores ``param.data``)."""
    grad = np.zeros_like(param.data)
    flat = param.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn().item()
        flat[i] = orig - eps
        minus = fn().item()
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Parameter],
    *,
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> float:
    """Compare autodiff and numeric gradients; return the max abs error.

    Raises ``AssertionError`` when any parameter's gradients disagree
    beyond the tolerances.
    """
    for p in params:
        p.zero_grad()
    out = fn()
    out.backward()
    worst = 0.0
    for p in params:
        assert p.grad is not None, "parameter did not receive a gradient"
        num = numeric_gradient(fn, p, eps=eps)
        err = np.abs(p.grad - num)
        tol = atol + rtol * np.abs(num)
        worst = max(worst, float(err.max()))
        assert (err <= tol).all(), (
            f"gradient mismatch: max err {err.max():.3e} "
            f"(autodiff vs numeric)"
        )
    return worst
