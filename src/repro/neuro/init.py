"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    shape: tuple, rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight matrix.

    ``fan_in``/``fan_out`` are taken from the last two axes (a 1-D shape
    uses its single axis for both).
    """
    if len(shape) >= 2:
        fan_in, fan_out = shape[-1], shape[-2]
    else:
        fan_in = fan_out = shape[0]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape)
