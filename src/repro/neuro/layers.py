"""Dense layers: Linear and a small MLP."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import NeuroError
from .init import xavier_uniform, zeros
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` for ``(batch, in_features)`` input."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        bias: bool = True,
    ):
        if in_features <= 0 or out_features <= 0:
            raise NeuroError("feature sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            xavier_uniform((out_features, in_features), rng)
        )
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Tanh MLP; the attention unit's alignment function uses one."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        *,
        activation: str = "tanh",
    ):
        if len(sizes) < 2:
            raise NeuroError("MLP needs at least input and output sizes")
        if activation not in ("tanh", "relu", "sigmoid"):
            raise NeuroError(f"unknown activation {activation!r}")
        self.activation = activation
        self.layers = [
            Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])
        ]

    def __call__(self, x: Tensor) -> Tensor:
        out = x
        for i, layer in enumerate(self.layers):
            out = layer(out)
            if i < len(self.layers) - 1:
                out = getattr(out, self.activation)()
        return out
