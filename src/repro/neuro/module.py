"""Module/Parameter machinery: parameter discovery and state dicts."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..exceptions import NeuroError
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery.

    Submodules and parameters are found by attribute inspection (also
    inside lists of modules), mirroring the PyTorch convention.
    """

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_parameters(self) -> List[Tuple[str, Parameter]]:
        out: List[Tuple[str, Parameter]] = []
        self._collect("", out, seen=set())
        return out

    def _collect(self, prefix: str, out, seen) -> None:
        if id(self) in seen:
            return
        seen.add(id(self))
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                out.append((full, value))
            elif isinstance(value, Module):
                value._collect(f"{full}.", out, seen)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        item._collect(f"{full}.{i}.", out, seen)
                    elif isinstance(item, Parameter):
                        out.append((f"{full}.{i}", item))

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        return int(sum(p.data.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def save(self, path) -> None:
        """Checkpoint this module's weights as an artifact file.

        The artifact (kind ``"neuro.module"``) stores the full
        :meth:`state_dict` plus the concrete class name, which
        :meth:`load` verifies before loading weights.
        """
        from ..artifacts import Artifact, save_artifact

        save_artifact(
            Artifact(
                kind="neuro.module",
                arrays=self.state_dict(),
                config={"class": type(self).__name__},
                metrics={"n_parameters": self.n_parameters()},
            ),
            path,
        )

    def load(self, path) -> None:
        """Load weights saved by :meth:`save` into this module.

        The module must already be constructed with the matching
        architecture; class name and every parameter's shape are
        validated (dtype/shape integrity of the file itself is checked
        by the artifact layer).
        """
        from ..artifacts import load_artifact

        artifact = load_artifact(path, expected_kind="neuro.module")
        saved_class = artifact.config.get("class")
        if saved_class != type(self).__name__:
            raise NeuroError(
                f"checkpoint is for {saved_class!r}, "
                f"not {type(self).__name__!r}"
            )
        self.load_state_dict(artifact.arrays)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise NeuroError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, p in params.items():
            arr = np.asarray(state[name], dtype=float)
            if arr.shape != p.data.shape:
                raise NeuroError(
                    f"shape mismatch for {name}: "
                    f"{arr.shape} vs {p.data.shape}"
                )
            p.data = arr.copy()
