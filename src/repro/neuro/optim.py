"""Optimisers: SGD (with momentum) and Adam.

The paper trains all neural imputers with Adam at lr=0.001.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import NeuroError
from .module import Parameter


class Optimizer:
    """Base optimiser over an explicit parameter list."""

    def __init__(self, params: List[Parameter], lr: float):
        if lr <= 0:
            raise NeuroError("learning rate must be positive")
        if not params:
            raise NeuroError("no parameters to optimise")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for p in self.params:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm > 0:
            scale = max_norm / (norm + 1e-12)
            for p in self.params:
                if p.grad is not None:
                    p.grad = p.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise NeuroError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            update = p.grad
            if self.momentum > 0:
                v = self._velocity[i]
                v = update if v is None else self.momentum * v + update
                self._velocity[i] = v
                update = v
            p.data = p.data - self.lr * update


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise NeuroError("betas must be in [0, 1)")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            self._m[i] = self.b1 * self._m[i] + (1 - self.b1) * g
            self._v[i] = self.b2 * self._v[i] + (1 - self.b2) * g * g
            m_hat = self._m[i] / (1 - self.b1**self._t)
            v_hat = self._v[i] / (1 - self.b2**self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
