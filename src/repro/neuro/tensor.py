"""Reverse-mode autodiff on numpy arrays.

A small, dependency-free replacement for the PyTorch subset that BiSIM,
BRITS and SSGAN need: broadcasting-aware elementwise ops, matmul,
reductions, slicing, concatenation and the usual activations.  Each
:class:`Tensor` records a closure that propagates its output gradient
to its parents; :meth:`Tensor.backward` runs a topological sweep.

Gradients are verified against central finite differences in
``tests/neuro/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import NeuroError

ArrayLike = Union[np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient and autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) or any(
            p.requires_grad for p in _parents
        )
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (a copy, to guard the graph)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # ------------------------------------------------------------------
    # Autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise NeuroError("backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise NeuroError("grad must be given for non-scalar output")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise NeuroError("gradient shape mismatch")

        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for p in node._parents:
                visit(p)
            order.append(node)

        visit(self)

        grads = {id(self): grad}
        for node in reversed(order):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is not None:
                for parent, pg in node._backward(g):
                    if not parent.requires_grad:
                        continue
                    acc = grads.get(id(parent))
                    grads[id(parent)] = pg if acc is None else acc + pg
            if not node._parents:  # leaf
                node.grad = g if node.grad is None else node.grad + g

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out_data = self.data + other_t.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g, self.shape)),
                (other_t, _unbroadcast(g, other_t.shape)),
            )

        return Tensor(out_data, _parents=(self, other_t), _backward=backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray):
            return ((self, -g),)

        return Tensor(-self.data, _parents=(self,), _backward=backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out_data = self.data * other_t.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g * other_t.data, self.shape)),
                (other_t, _unbroadcast(g * self.data, other_t.shape)),
            )

        return Tensor(out_data, _parents=(self, other_t), _backward=backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        out_data = self.data / other_t.data

        def backward(g: np.ndarray):
            return (
                (self, _unbroadcast(g / other_t.data, self.shape)),
                (
                    other_t,
                    _unbroadcast(
                        -g * self.data / (other_t.data**2), other_t.shape
                    ),
                ),
            )

        return Tensor(out_data, _parents=(self, other_t), _backward=backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise NeuroError("only scalar exponents supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = _ensure_tensor(other)
        if self.ndim != 2 or other_t.ndim != 2:
            raise NeuroError("matmul supports 2-D tensors only")
        out_data = self.data @ other_t.data

        def backward(g: np.ndarray):
            return (
                (self, g @ other_t.data.T),
                (other_t, self.data.T @ g),
            )

        return Tensor(out_data, _parents=(self, other_t), _backward=backward)

    # ------------------------------------------------------------------
    # Reductions / shaping
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            gg = g
            if axis is not None and not keepdims:
                gg = np.expand_dims(gg, axis)
            return ((self, np.broadcast_to(gg, self.shape).copy()),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)
        old_shape = self.shape

        def backward(g: np.ndarray):
            return ((self, g.reshape(old_shape)),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    @property
    def T(self) -> "Tensor":
        out_data = self.data.T

        def backward(g: np.ndarray):
            return ((self, g.T),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return ((self, full),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    # ------------------------------------------------------------------
    # Activations / elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray):
            return ((self, g * out_data),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray):
            return ((self, g / self.data),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray):
            return ((self, g * out_data * (1.0 - out_data)),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray):
            return ((self, g * (1.0 - out_data**2)),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(g: np.ndarray):
            return ((self, g * (self.data > 0)),)

        return Tensor(out_data, _parents=(self,), _backward=backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)

        def backward(g: np.ndarray):
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            return ((self, out_data * (g - dot)),)

        return Tensor(out_data, _parents=(self,), _backward=backward)


def _ensure_tensor(value: ArrayLike) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise NeuroError("concat of empty sequence")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray):
        outs = []
        for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, end)
            outs.append((t, g[tuple(index)]))
        return tuple(outs)

    return Tensor(out_data, _parents=tuple(tensors), _backward=backward)


def take(tensor: Tensor, indices: ArrayLike, axis: int = 0) -> Tensor:
    """Batched gather: select ``indices`` along ``axis`` with gradient.

    The gradient scatter-adds back into the source, so repeated indices
    accumulate — the semantics batched lookups (e.g. per-query context
    selection) need.
    """
    tensor = _ensure_tensor(tensor)
    idx = np.asarray(indices, dtype=int)
    if idx.ndim > 1:
        raise NeuroError("take supports scalar or 1-D indices")
    out_data = np.take(tensor.data, idx, axis=axis)

    def backward(g: np.ndarray):
        full = np.zeros_like(tensor.data)
        moved = np.moveaxis(full, axis, 0)
        np.add.at(moved, idx, np.moveaxis(g, axis, 0) if idx.ndim else g)
        return ((tensor, full),)

    return Tensor(out_data, _parents=(tensor,), _backward=backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack equally-shaped tensors along a new axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    if not tensors:
        raise NeuroError("stack of empty sequence")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray):
        pieces = np.split(g, len(tensors), axis=axis)
        return tuple(
            (t, np.squeeze(p, axis=axis)) for t, p in zip(tensors, pieces)
        )

    return Tensor(out_data, _parents=tuple(tensors), _backward=backward)
