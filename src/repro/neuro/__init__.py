"""Minimal neural-network substrate on numpy (PyTorch is unavailable).

Reverse-mode autodiff tensors, dense/recurrent layers, optimisers and
masked losses — everything BiSIM, BRITS and SSGAN need, gradient-checked
against finite differences.
"""

from .gradcheck import check_gradients, numeric_gradient
from .init import xavier_uniform, zeros
from .layers import MLP, Linear
from .losses import masked_mae, masked_mse, mse
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer
from .rnn import LSTMCell, SimpleRecurrentCell
from .tensor import Tensor, concat, stack, take

__all__ = [
    "Adam",
    "LSTMCell",
    "Linear",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "SGD",
    "SimpleRecurrentCell",
    "Tensor",
    "check_gradients",
    "concat",
    "masked_mae",
    "masked_mse",
    "mse",
    "numeric_gradient",
    "stack",
    "take",
    "xavier_uniform",
    "zeros",
]
