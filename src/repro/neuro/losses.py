"""Loss functions, including the paper's masked MSE.

``L(a, a', mask) = MSE(mask ⊙ a, mask ⊙ a')`` — the reconstruction
loss is computed on observed entries only; masked-out entries compare
0 to 0 and contribute nothing to the gradient.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NeuroError
from .tensor import Tensor


def mse(a: Tensor, b: Tensor) -> Tensor:
    """Plain mean squared error over all elements."""
    diff = a - b
    return (diff * diff).mean()


def masked_mse(a: Tensor, b: Tensor, mask: np.ndarray) -> Tensor:
    """The paper's ``L``: MSE between the masked inputs.

    ``mask`` is a constant (no gradient) 0/1 array broadcastable to the
    operand shapes.  Division is by the *total* element count, exactly
    as ``MSE(mask ⊙ a, mask ⊙ b)`` prescribes.
    """
    m = np.asarray(mask, dtype=float)
    if not np.isin(m, (0.0, 1.0)).all():
        raise NeuroError("mask must be binary")
    mt = Tensor(m)
    return mse(a * mt, b * mt)


def masked_mae(a: Tensor, b: Tensor, mask: np.ndarray) -> Tensor:
    """Masked mean absolute error (smooth |x| via sqrt(x^2 + eps))."""
    m = Tensor(np.asarray(mask, dtype=float))
    diff = (a - b) * m
    return ((diff * diff + 1e-12) ** 0.5).mean()
