"""A keyed on-disk artifact store.

Maps string keys (slash-separated, e.g. ``"kaide/bisim-smoke"``) to
artifact files under one root directory, so pipeline stages and the
experiment cache can exchange artifacts by name rather than by path::

    store = ArtifactStore("~/artifacts")
    store.save("kaide/shard", artifact)
    artifact = store.load("kaide/shard", expected_kind="serving.shard")
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional

from ..exceptions import ArtifactError
from .io import Artifact, PathLike, load_artifact, save_artifact

_SEGMENT = re.compile(r"^[A-Za-z0-9._-]+$")


class ArtifactStore:
    """Directory-backed mapping from keys to artifact files."""

    def __init__(self, root: PathLike):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Filesystem path of ``key`` (no existence check)."""
        segments = key.split("/") if key else [""]
        for seg in segments:
            if not _SEGMENT.match(seg) or seg in (".", ".."):
                raise ArtifactError(f"illegal artifact key {key!r}")
        # Append rather than with_suffix(): dotted keys like "model.v2"
        # must not lose their tail.
        return self.root.joinpath(*segments[:-1], segments[-1] + ".npz")

    def exists(self, key: str) -> bool:
        return self.path_for(key).exists()

    def save(self, key: str, artifact: Artifact) -> Path:
        return save_artifact(artifact, self.path_for(key))

    def load(
        self, key: str, expected_kind: Optional[str] = None
    ) -> Artifact:
        return load_artifact(self.path_for(key), expected_kind)

    def delete(self, key: str) -> bool:
        """Remove ``key`` if present; returns whether it existed."""
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def keys(self) -> List[str]:
        """All stored keys, sorted."""
        return sorted(
            str(p.relative_to(self.root).with_suffix(""))
            for p in self.root.rglob("*.npz")
        )
