"""Artifact persistence: train once, serve many.

The pipeline stages (train → impute → estimate → serve) communicate
through *artifacts*: versioned ``.npz`` files carrying named tensors
plus a JSON manifest (schema version, kind, config, metrics, content
hash).  See :mod:`repro.artifacts.io` for the format and
:mod:`repro.artifacts.store` for the keyed on-disk store.

Producers/consumers across the library:

* :meth:`repro.neuro.Module.save` / ``load`` — raw weight checkpoints;
* :mod:`repro.bisim.checkpoint` — trainer/online-imputer checkpoints
  and the keyed trainer cache used by the experiment harness;
* :mod:`repro.positioning.io` — fitted estimator state;
* :meth:`repro.serving.VenueShard.save` / ``load`` — full warm-start
  shard bundles consumed by ``python -m repro serve-bench``.
"""

from .io import (
    SCHEMA_VERSION,
    Artifact,
    MemberSpec,
    attach_member,
    attach_members,
    backed_by_memmap,
    content_hash,
    load_artifact,
    mappable_members,
    merge_prefixed,
    pack_ragged,
    read_manifest,
    save_artifact,
    split_prefixed,
    unpack_ragged,
)
from .store import ArtifactStore

__all__ = [
    "Artifact",
    "ArtifactStore",
    "MemberSpec",
    "SCHEMA_VERSION",
    "attach_member",
    "attach_members",
    "backed_by_memmap",
    "content_hash",
    "load_artifact",
    "mappable_members",
    "merge_prefixed",
    "pack_ragged",
    "read_manifest",
    "save_artifact",
    "split_prefixed",
    "unpack_ragged",
]
