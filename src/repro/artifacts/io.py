"""Versioned artifact files: npz tensors + an embedded JSON manifest.

An *artifact* is the unit of persistence between pipeline stages
(train → impute → estimate → serve): a set of named numpy arrays plus
a JSON-able ``config`` and ``metrics`` dict, written as one
``.npz`` file.  The manifest — stored inside the npz under the
reserved ``__manifest__`` entry — records the schema version, the
artifact ``kind`` (e.g. ``"bisim.trainer"``), per-array dtype/shape
specs, and a SHA-256 content hash over the arrays and config.

:func:`load_artifact` refuses anything suspicious with a typed
:class:`~repro.exceptions.ArtifactError`: unreadable files, unknown
schema versions, kind mismatches, arrays whose dtype/shape drifted
from the manifest, and content-hash mismatches (bit rot or tampering).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ArtifactError

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1

#: npz entry holding the JSON manifest; array names must not use it.
_MANIFEST_KEY = "__manifest__"


@dataclass
class Artifact:
    """One versioned bundle of arrays + config + metrics.

    Attributes
    ----------
    kind:
        Dotted type tag (``"bisim.trainer"``, ``"serving.shard"``, …)
        consumers assert on before interpreting the payload.
    arrays:
        Named numpy arrays (the tensors).
    config:
        JSON-able construction parameters needed to rebuild the object.
    metrics:
        JSON-able quality/provenance numbers (losses, timings, …);
        informational only, not hashed.
    """

    kind: str
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)


def _canonical_config(config: Dict[str, Any]) -> str:
    try:
        return json.dumps(config, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ArtifactError(
            f"artifact config is not JSON-serialisable: {exc}"
        ) from exc


def content_hash(
    arrays: Dict[str, np.ndarray], config: Dict[str, Any]
) -> str:
    """SHA-256 over the arrays (name, dtype, shape, bytes) and config."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        a = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(a.dtype).encode())
        h.update(repr(a.shape).encode())
        h.update(a.tobytes())
    h.update(_canonical_config(config).encode())
    return h.hexdigest()


def _validate_arrays(arrays: Dict[str, np.ndarray]) -> None:
    for name, a in arrays.items():
        if not name or name == _MANIFEST_KEY or name.startswith("__"):
            raise ArtifactError(f"illegal artifact array name {name!r}")
        if a.dtype == object:
            # Object arrays need pickle, which load_artifact refuses
            # (a tampered pickle must never execute before validation).
            raise ArtifactError(
                f"artifact array {name!r} has object dtype; only "
                "plain numeric/string tensors are supported"
            )


def save_artifact(
    artifact: Artifact, path: PathLike, *, compress: bool = True
) -> Path:
    """Write an artifact to ``path`` (.npz); returns the path.

    ``compress=False`` stores the arrays raw (``ZIP_STORED``), which
    lets :func:`load_artifact` hand big tensors back as read-only
    memory maps (``mmap_arrays``) instead of resident copies — the
    right trade for serving shards, whose precomputed radio-map tensor
    is large, incompressible noise-like data read straight from the
    page cache.
    """
    path = Path(path)
    if not artifact.kind:
        raise ArtifactError("artifact kind must be non-empty")
    arrays = {
        name: np.asarray(a) for name, a in artifact.arrays.items()
    }
    _validate_arrays(arrays)
    manifest = {
        "schema_version": SCHEMA_VERSION,
        "kind": artifact.kind,
        "config": artifact.config,
        "metrics": artifact.metrics,
        "arrays": {
            name: {"dtype": str(a.dtype), "shape": list(a.shape)}
            for name, a in arrays.items()
        },
        "content_hash": content_hash(arrays, artifact.config),
    }
    payload = json.dumps(manifest)  # fails early on bad metrics
    path.parent.mkdir(parents=True, exist_ok=True)
    # The manifest is stored as a plain unicode array so loading never
    # needs allow_pickle — a tampered file must not get to run pickle
    # payloads before validation.  Write-to-temp + rename keeps an
    # interrupted save from leaving a truncated artifact at the final
    # path.
    # The temp name ends in .npz so np.savez cannot append its own
    # extension; the rename then lands on exactly the requested path.
    tmp = path.with_name(path.name + ".tmp.npz")
    writer = np.savez_compressed if compress else np.savez
    try:
        writer(
            tmp,
            **{_MANIFEST_KEY: np.array([payload])},
            **arrays,
        )
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


#: Where one mappable npz member's payload lives in the file:
#: ``(dtype string, shape tuple, byte offset of the array data)``.
MemberSpec = Tuple[str, Tuple[int, ...], int]


def _stored_member_spec(
    f, info: zipfile.ZipInfo
) -> Optional[MemberSpec]:
    """Parse one ``ZIP_STORED`` member's npy header → spec, or None.

    Only uncompressed members in C order qualify — the npy payload
    then sits contiguously in the file, so the array data can be
    mapped at ``local header + npy header`` without touching the rest
    of the archive.
    """
    f.seek(info.header_offset)
    local = f.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        return None
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    f.seek(info.header_offset + 30 + name_len + extra_len)
    version = np.lib.format.read_magic(f)
    if version == (1, 0):
        header = np.lib.format.read_array_header_1_0(f)
    elif version == (2, 0):
        header = np.lib.format.read_array_header_2_0(f)
    else:
        return None
    shape, fortran, dtype = header
    if fortran or dtype.hasobject:
        return None
    return (
        str(dtype),
        tuple(int(s) for s in shape),
        int(f.tell()),
    )


def mappable_members(path: PathLike) -> Dict[str, MemberSpec]:
    """Specs of every array member that can be memory-mapped in place.

    The specs are the cheap-reload currency of the shard registry: a
    caller that has already validated an artifact once (content hash
    and all) can stash these and later re-attach the arrays with
    :func:`attach_member` at memmap cost — no zip walk, no JSON, no
    re-hash.  Compressed, Fortran-order or object members are simply
    absent from the result; an unreadable file yields ``{}``.
    """
    path = Path(path)
    specs: Dict[str, MemberSpec] = {}
    try:
        with zipfile.ZipFile(path) as zf:
            infos = zf.infolist()
        with open(path, "rb") as f:
            for info in infos:
                name = info.filename
                if (
                    not name.endswith(".npy")
                    or info.compress_type != zipfile.ZIP_STORED
                ):
                    continue
                member = name[: -len(".npy")]
                if member == _MANIFEST_KEY:
                    continue
                spec = _stored_member_spec(f, info)
                if spec is not None:
                    specs[member] = spec
    except (OSError, ValueError, zipfile.BadZipFile):
        return {}
    return specs


def attach_member(path: PathLike, spec: MemberSpec) -> np.ndarray:
    """Read-only memory map of one member from its cached spec.

    The inverse of a :func:`mappable_members` lookup.  No validation
    happens here — the caller owns checking that the file has not
    changed since the spec was taken (mtime/size), which is what makes
    this the fast path.
    """
    dtype, shape, offset = spec
    return np.memmap(
        Path(path),
        dtype=np.dtype(dtype),
        mode="r",
        offset=int(offset),
        shape=tuple(shape),
    )


def attach_members(
    path: PathLike, specs: Dict[str, MemberSpec]
) -> Dict[str, np.ndarray]:
    """Read-only maps of many members through **one** file mapping.

    :func:`attach_member` costs an open + mmap syscall pair per
    array; a shard re-attach touches several arrays per venue at
    registry-miss frequency, so this variant maps the file once and
    carves every member out of the shared buffer with zero-copy
    views.  The views keep the mapping alive; same no-validation
    contract as :func:`attach_member`.
    """
    with open(Path(path), "rb") as f:
        buf = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    out: Dict[str, np.ndarray] = {}
    for name, (dtype_str, shape, offset) in specs.items():
        dt = np.dtype(dtype_str)
        count = 1
        for s in shape:
            count *= int(s)
        out[name] = np.frombuffer(
            buf, dtype=dt, count=count, offset=int(offset)
        ).reshape(shape)
    return out


def backed_by_memmap(a: np.ndarray) -> bool:
    """Whether an array's storage is file-backed (walks views).

    Recognises both :class:`numpy.memmap` and arrays carved out of a
    raw :class:`mmap.mmap` buffer (:func:`attach_members`).
    """
    node = a
    while isinstance(node, np.ndarray):
        if isinstance(node, np.memmap):
            return True
        if isinstance(node.base, mmap.mmap):
            return True
        node = node.base
    return False


def _memmap_member(path: Path, name: str) -> Optional[np.ndarray]:
    """Read-only memory map of one uncompressed npz member, or None."""
    try:
        with zipfile.ZipFile(path) as zf:
            info = zf.getinfo(name + ".npy")
        if info.compress_type != zipfile.ZIP_STORED:
            return None
        with open(path, "rb") as f:
            spec = _stored_member_spec(f, info)
        return None if spec is None else attach_member(path, spec)
    except (OSError, KeyError, ValueError):
        return None


def read_manifest(path: PathLike) -> Dict[str, Any]:
    """Read just the embedded JSON manifest of an artifact file.

    Cheap lineage/inventory probe: only the manifest entry is
    decompressed, so chained deltas can verify parent content hashes
    without loading (or hash-verifying) the tensor payloads.  Full
    validation still happens in :func:`load_artifact`.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no such artifact: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            if _MANIFEST_KEY not in data.files:
                raise ArtifactError(
                    f"{path} is not an artifact (no manifest)"
                )
            return json.loads(str(data[_MANIFEST_KEY][0]))
    except ArtifactError:
        raise
    except Exception as exc:  # zip/json corruption
        raise ArtifactError(
            f"unreadable artifact {path}: {exc}"
        ) from exc


def load_artifact(
    path: PathLike,
    expected_kind: Optional[str] = None,
    *,
    mmap_arrays: Sequence[str] = (),
) -> Artifact:
    """Load and validate an artifact written by :func:`save_artifact`.

    Arrays named in ``mmap_arrays`` are returned as read-only memory
    maps when the file stores them uncompressed (best effort: a
    compressed or missing member silently falls back to the in-memory
    copy).  The content hash is verified against the file exactly
    once, here — the maps alias the verified bytes.

    Raises
    ------
    ArtifactError
        If the file is missing or unreadable, the schema version or
        ``kind`` does not match, an array's dtype/shape drifted from
        the manifest, or the content hash does not verify.
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"no such artifact: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            if _MANIFEST_KEY not in data.files:
                raise ArtifactError(
                    f"{path} is not an artifact (no manifest)"
                )
            manifest = json.loads(str(data[_MANIFEST_KEY][0]))
            arrays = {
                name: data[name]
                for name in data.files
                if name != _MANIFEST_KEY
            }
    except ArtifactError:
        raise
    except Exception as exc:  # zip/json/pickle corruption
        raise ArtifactError(
            f"unreadable artifact {path}: {exc}"
        ) from exc

    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactError(
            f"unsupported artifact schema version {version!r} in {path} "
            f"(this library reads version {SCHEMA_VERSION})"
        )
    kind = manifest.get("kind")
    if expected_kind is not None and kind != expected_kind:
        raise ArtifactError(
            f"artifact kind mismatch in {path}: "
            f"expected {expected_kind!r}, found {kind!r}"
        )

    specs = manifest.get("arrays", {})
    if set(specs) != set(arrays):
        missing = sorted(set(specs) - set(arrays))
        extra = sorted(set(arrays) - set(specs))
        raise ArtifactError(
            f"artifact {path} array set drifted from manifest; "
            f"missing={missing}, unexpected={extra}"
        )
    for name, spec in specs.items():
        a = arrays[name]
        if str(a.dtype) != spec["dtype"] or list(a.shape) != spec["shape"]:
            raise ArtifactError(
                f"artifact {path} array {name!r} does not match its "
                f"manifest spec: dtype {a.dtype}/{spec['dtype']}, "
                f"shape {list(a.shape)}/{spec['shape']}"
            )

    config = manifest.get("config", {})
    digest = content_hash(arrays, config)
    if digest != manifest.get("content_hash"):
        raise ArtifactError(
            f"artifact {path} failed content-hash verification "
            "(corrupted or tampered)"
        )
    for name in mmap_arrays:
        if name not in arrays:
            continue
        mapped = _memmap_member(path, name)
        if mapped is not None and (
            mapped.dtype == arrays[name].dtype
            and mapped.shape == arrays[name].shape
        ):
            arrays[name] = mapped
    return Artifact(
        kind=kind,
        arrays=arrays,
        config=config,
        metrics=manifest.get("metrics", {}),
    )


def split_prefixed(
    arrays: Dict[str, np.ndarray], prefix: str
) -> Dict[str, np.ndarray]:
    """Sub-dict of ``arrays`` under ``prefix`` with the prefix stripped.

    Composite artifacts (e.g. a serving shard) namespace their members'
    arrays as ``"<member>.<name>"``; this is the inverse of
    :func:`merge_prefixed`.
    """
    return {
        name[len(prefix) :]: a
        for name, a in arrays.items()
        if name.startswith(prefix)
    }


def merge_prefixed(
    out: Dict[str, np.ndarray],
    prefix: str,
    arrays: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Merge ``arrays`` into ``out`` under ``prefix`` (returns ``out``)."""
    for name, a in arrays.items():
        key = prefix + name
        if key in out:
            raise ArtifactError(f"duplicate artifact array name {key!r}")
        out[key] = a
    return out


def pack_ragged(
    groups: Sequence[Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Flatten a list of same-keyed array dicts into fixed tensors.

    Every group's arrays are concatenated along axis 0 and the per-
    group first-axis sizes recorded under ``"lengths"`` — the artifact
    representation for variable-length collections (context chunks,
    forest trees).  Inverse of :func:`unpack_ragged`.
    """
    if not groups:
        raise ArtifactError("nothing to pack")
    keys = sorted(groups[0])
    lengths = []
    for g in groups:
        if sorted(g) != keys:
            raise ArtifactError("ragged groups must share key sets")
        sizes = {np.asarray(a).shape[0] for a in g.values()}
        if len(sizes) != 1:
            raise ArtifactError(
                "arrays within a ragged group must share axis-0 size"
            )
        lengths.append(sizes.pop())
    out: Dict[str, np.ndarray] = {
        "lengths": np.asarray(lengths, dtype=np.int64)
    }
    for k in keys:
        if k == "lengths":
            raise ArtifactError('"lengths" is reserved in ragged packs')
        out[k] = np.concatenate([np.asarray(g[k]) for g in groups])
    return out


def unpack_ragged(
    arrays: Dict[str, np.ndarray]
) -> List[Dict[str, np.ndarray]]:
    """Inverse of :func:`pack_ragged`; validates the recorded lengths."""
    if "lengths" not in arrays:
        raise ArtifactError("ragged pack is missing its lengths array")
    lengths = np.asarray(arrays["lengths"], dtype=int)
    total = int(lengths.sum())
    bounds = np.cumsum(lengths)[:-1]
    parts: Dict[str, List[np.ndarray]] = {}
    for name, a in arrays.items():
        if name == "lengths":
            continue
        if np.asarray(a).shape[0] != total:
            raise ArtifactError(
                f"ragged array {name!r} does not sum to the recorded "
                "lengths"
            )
        parts[name] = np.split(a, bounds)
    return [
        {name: parts[name][i] for name in parts}
        for i in range(lengths.shape[0])
    ]
