"""Stacked-floor venues: ordered floors connected by portals.

The paper's venues are single floors, but the ROADMAP's north star is
towers and malls — venues where ``"kaide/f1"`` is a real place three
slabs above ``"kaide/f4"``.  This module makes floors first-class:

* :class:`Floor` — one slab: a :class:`~repro.venue.FloorPlan`, the
  APs homed on it (with *globally unique* ap ids, so every floor's
  radio map shares one fingerprint dimension ``D``), its reference
  points, and its height ``z``.
* :class:`Portal` — a stairwell or elevator connecting two floors,
  with an entry/exit point and a walkable footprint polygon on each
  side.  Portals are where tracks change floors: a session whose
  scans jump floors mid-walk is handed across the portal instead of
  failing the motion model's innovation gate.
* :class:`Venue` — the stack: ordered floors plus portals, with
  structural validation (contiguous global AP ids, increasing levels,
  portal footprints on their floors' walkable area, every floor
  reachable through the portal graph).

:func:`build_multifloor_venue` instantiates an aligned tower from the
paper's venue presets: every floor shares the preset's plate geometry
(real towers stack one plate) while AP deployment re-rolls per floor,
and an elevator plus a stairwell connect consecutive floors at two
corridor intersections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import VenueError
from ..geometry import MultiPolygon, Polygon
from .access_points import AccessPoint, deploy_access_points
from .builders import PRESETS, VenueSpec, build_venue
from .floorplan import FloorPlan

#: Portal kinds with their default traversal times (seconds a device
#: dwells inside the portal while changing floors).
PORTAL_KINDS = {"stairs": 12.0, "elevator": 8.0}


@dataclass(frozen=True)
class Portal:
    """A stairwell or elevator connecting two floors.

    ``point_a``/``point_b`` are the entry/exit locations on
    ``floor_a``/``floor_b`` (same xy for an aligned elevator shaft);
    ``footprint_a``/``footprint_b`` the walkable patches a track must
    be near for a floor hand-off to be believable.
    """

    name: str
    kind: str
    floor_a: str
    floor_b: str
    point_a: Tuple[float, float]
    point_b: Tuple[float, float]
    footprint_a: Polygon
    footprint_b: Polygon
    traversal_seconds: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in PORTAL_KINDS:
            raise VenueError(
                f"portal kind {self.kind!r} not in {sorted(PORTAL_KINDS)}"
            )
        if self.floor_a == self.floor_b:
            raise VenueError(
                f"portal {self.name!r} connects {self.floor_a!r} to itself"
            )
        if self.traversal_seconds <= 0:
            raise VenueError("traversal_seconds must be positive")
        for point, footprint, floor in (
            (self.point_a, self.footprint_a, self.floor_a),
            (self.point_b, self.footprint_b, self.floor_b),
        ):
            if len(point) != 2:
                raise VenueError("portal points must be 2-D")
            if not footprint.contains_point(point):
                raise VenueError(
                    f"portal {self.name!r}: point {tuple(point)} outside "
                    f"its footprint on floor {floor!r}"
                )

    def endpoint(self, floor_id: str) -> np.ndarray:
        """The portal's xy on ``floor_id`` (must be one of its floors)."""
        if floor_id == self.floor_a:
            return np.asarray(self.point_a, dtype=float)
        if floor_id == self.floor_b:
            return np.asarray(self.point_b, dtype=float)
        raise VenueError(
            f"portal {self.name!r} does not touch floor {floor_id!r}"
        )

    def footprint(self, floor_id: str) -> Polygon:
        if floor_id == self.floor_a:
            return self.footprint_a
        if floor_id == self.floor_b:
            return self.footprint_b
        raise VenueError(
            f"portal {self.name!r} does not touch floor {floor_id!r}"
        )

    def connects(self, floor_a: str, floor_b: str) -> bool:
        """True when the portal joins the two floors (either direction)."""
        return {floor_a, floor_b} == {self.floor_a, self.floor_b}


@dataclass
class Floor:
    """One slab of a stacked venue."""

    floor_id: str
    level: int
    z: float
    plan: FloorPlan
    access_points: List[AccessPoint]
    reference_points: np.ndarray

    @property
    def n_aps(self) -> int:
        return len(self.access_points)

    @property
    def walkable(self) -> MultiPolygon:
        """The floor's walkable area (its corridor polygons)."""
        return MultiPolygon(self.plan.hallways)

    def describe(self) -> str:
        return (
            f"{self.floor_id} (level {self.level}, z={self.z:.1f}m): "
            f"{self.plan.describe()}, {self.n_aps} APs, "
            f"{len(self.reference_points)} RPs"
        )


@dataclass
class Venue:
    """A stacked-floor venue: ordered floors plus connecting portals.

    Floors are ordered by ``level`` and share one global AP id space:
    floor ``k``'s ap ids continue where floor ``k-1``'s stopped, so a
    fingerprint over the whole venue is a single ``(D,)`` vector and
    per-floor radio maps are partitions of one tensor family.
    """

    name: str
    floors: List[Floor] = field(default_factory=list)
    portals: List[Portal] = field(default_factory=list)
    channel_kind: str = "wifi"

    def __post_init__(self) -> None:
        self.validate()

    # -- structure -----------------------------------------------------
    @property
    def n_floors(self) -> int:
        return len(self.floors)

    @property
    def floor_ids(self) -> Tuple[str, ...]:
        return tuple(f.floor_id for f in self.floors)

    @property
    def n_aps(self) -> int:
        """Global fingerprint dimension ``D`` (all floors' APs)."""
        return sum(f.n_aps for f in self.floors)

    @property
    def access_points(self) -> List[AccessPoint]:
        """All APs in global ap-id order."""
        return [ap for f in self.floors for ap in f.access_points]

    def floor(self, floor_id: str) -> Floor:
        for f in self.floors:
            if f.floor_id == floor_id:
                return f
        raise VenueError(
            f"venue {self.name!r} has no floor {floor_id!r}; "
            f"floors: {list(self.floor_ids)}"
        )

    def floor_index(self, floor_id: str) -> int:
        for i, f in enumerate(self.floors):
            if f.floor_id == floor_id:
                return i
        raise VenueError(
            f"venue {self.name!r} has no floor {floor_id!r}"
        )

    def ap_floor_index(self) -> np.ndarray:
        """``(D,)`` int array mapping each global AP id to its floor's
        position in :attr:`floors` — the strongest-AP floor
        classifier's lookup table."""
        out = np.empty(self.n_aps, dtype=np.int64)
        offset = 0
        for i, f in enumerate(self.floors):
            out[offset : offset + f.n_aps] = i
            offset += f.n_aps
        return out

    def portals_between(
        self, floor_a: str, floor_b: str
    ) -> List[Portal]:
        return [p for p in self.portals if p.connects(floor_a, floor_b)]

    def portals_on(self, floor_id: str) -> List[Portal]:
        return [
            p
            for p in self.portals
            if floor_id in (p.floor_a, p.floor_b)
        ]

    # -- validation ----------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`VenueError` on structural inconsistencies."""
        if not self.floors:
            raise VenueError(f"venue {self.name!r}: no floors")
        ids = [f.floor_id for f in self.floors]
        if len(set(ids)) != len(ids):
            raise VenueError(f"venue {self.name!r}: duplicate floor ids")
        levels = [f.level for f in self.floors]
        zs = [f.z for f in self.floors]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise VenueError(
                f"venue {self.name!r}: floor levels must strictly increase"
            )
        if zs != sorted(zs) or len(set(zs)) != len(zs):
            raise VenueError(
                f"venue {self.name!r}: floor heights must strictly increase"
            )
        expected = 0
        for f in self.floors:
            f.plan.validate()
            for ap in f.access_points:
                if ap.ap_id != expected:
                    raise VenueError(
                        f"venue {self.name!r}: floor {f.floor_id!r} AP id "
                        f"{ap.ap_id} breaks the contiguous global id "
                        f"space (expected {expected})"
                    )
                expected += 1
        known = set(ids)
        for portal in self.portals:
            for fid in (portal.floor_a, portal.floor_b):
                if fid not in known:
                    raise VenueError(
                        f"portal {portal.name!r} references unknown "
                        f"floor {fid!r}"
                    )
                floor = self.floor(fid)
                if not floor.walkable.contains_point(
                    portal.endpoint(fid)
                ):
                    raise VenueError(
                        f"portal {portal.name!r}: endpoint on floor "
                        f"{fid!r} is off the walkable area"
                    )
        if self.n_floors > 1:
            # Every floor must be reachable: union-find over portals.
            parent = {fid: fid for fid in ids}

            def find(a: str) -> str:
                while parent[a] != a:
                    parent[a] = parent[parent[a]]
                    a = parent[a]
                return a

            for portal in self.portals:
                parent[find(portal.floor_a)] = find(portal.floor_b)
            roots = {find(fid) for fid in ids}
            if len(roots) > 1:
                raise VenueError(
                    f"venue {self.name!r}: floors not connected by "
                    f"portals ({len(roots)} components)"
                )

    # -- views ---------------------------------------------------------
    def floor_spec(self, floor_id: str) -> VenueSpec:
        """A single-floor :class:`~repro.venue.VenueSpec` view of one
        floor, carrying the *global* AP list — the survey simulator and
        channel factory consume this unchanged, which is what keeps the
        per-floor radio maps dimension-aligned."""
        floor = self.floor(floor_id)
        return VenueSpec(
            name=f"{self.name}/{floor_id}",
            plan=floor.plan,
            access_points=self.access_points,
            reference_points=floor.reference_points,
            channel_kind=self.channel_kind,
        )

    def describe(self) -> str:
        lines = [
            f"{self.name}: {self.n_floors} floors, {self.n_aps} APs, "
            f"{len(self.portals)} portals, channel={self.channel_kind}"
        ]
        lines += [f"  {f.describe()}" for f in self.floors]
        lines += [
            f"  portal {p.name} ({p.kind}): {p.floor_a} <-> {p.floor_b}"
            for p in self.portals
        ]
        return "\n".join(lines)


def _portal_footprint(
    center: np.ndarray, half: float, walkable: MultiPolygon
) -> Polygon:
    """A square footprint around ``center``, shrunk until it sits on
    the walkable area (corridor intersections are at least a corridor
    wide, so this terminates well above degeneracy)."""
    x, y = float(center[0]), float(center[1])
    for shrink in (1.0, 0.5, 0.25):
        h = half * shrink
        footprint = Polygon.rectangle(x - h, y - h, x + h, y + h)
        corners = np.asarray(footprint.vertices, dtype=float)
        if walkable.contains_points(corners).all():
            return footprint
    return Polygon.rectangle(x - 0.1, y - 0.1, x + 0.1, y + 0.1)


def _portal_nodes(plan: FloorPlan) -> Tuple[int, int]:
    """Two far-apart hallway-graph nodes to host the portals."""
    pos = plan.node_positions()
    nodes = sorted(pos)
    if len(nodes) == 1:
        return nodes[0], nodes[0]
    lo = min(nodes, key=lambda n: (pos[n][0] + pos[n][1], n))
    hi = max(nodes, key=lambda n: (pos[n][0] + pos[n][1], n))
    if lo == hi:  # pragma: no cover - distinct grid corners
        hi = nodes[-1]
    return lo, hi


def build_multifloor_venue(
    name: str,
    *,
    n_floors: int = 2,
    scale: float = 0.35,
    seed: int = 7,
    floor_height: float = 4.0,
    min_aps: int = 24,
    portal_half_width: float = 0.8,
) -> Venue:
    """Stack ``n_floors`` copies of a preset venue into a tower.

    Every floor reuses the preset's plate geometry (an aligned tower),
    AP deployment re-rolls per floor (store churn differs per floor),
    and consecutive floors are joined by an elevator at one corridor
    intersection and a stairwell at another — so every multi-floor
    walk has two distinct hand-off sites.
    """
    if name not in PRESETS:
        raise VenueError(
            f"unknown venue {name!r}; options: {sorted(PRESETS)}"
        )
    if n_floors < 1:
        raise VenueError("n_floors must be >= 1")
    base = build_venue(name, scale=scale, seed=seed, min_aps=min_aps)
    floors: List[Floor] = []
    offset = 0
    for level in range(n_floors):
        spec = (
            base
            if level == 0
            else build_venue(
                name, scale=scale, seed=seed + 101 * level, min_aps=min_aps
            )
        )
        aps = [
            AccessPoint(
                ap_id=offset + i,
                position=ap.position,
                tx_power_dbm=ap.tx_power_dbm,
            )
            for i, ap in enumerate(spec.access_points)
        ]
        offset += len(aps)
        floors.append(
            Floor(
                floor_id=f"f{level + 1}",
                level=level,
                z=level * floor_height,
                plan=spec.plan,
                access_points=aps,
                reference_points=spec.reference_points,
            )
        )

    portals: List[Portal] = []
    node_lo, node_hi = _portal_nodes(base.plan)
    pos = base.plan.node_positions()
    sites = [("elevator", pos[node_lo]), ("stairs", pos[node_hi])]
    for lower, upper in zip(floors, floors[1:]):
        for kind, center in sites:
            foot_lo = _portal_footprint(
                center, portal_half_width, lower.walkable
            )
            foot_hi = _portal_footprint(
                center, portal_half_width, upper.walkable
            )
            portals.append(
                Portal(
                    name=(
                        f"{kind}-{lower.floor_id}-{upper.floor_id}"
                    ),
                    kind=kind,
                    floor_a=lower.floor_id,
                    floor_b=upper.floor_id,
                    point_a=(float(center[0]), float(center[1])),
                    point_b=(float(center[0]), float(center[1])),
                    footprint_a=foot_lo,
                    footprint_b=foot_hi,
                    traversal_seconds=PORTAL_KINDS[kind],
                )
            )
    return Venue(
        name=name,
        floors=floors,
        portals=portals,
        channel_kind=base.channel_kind,
    )
