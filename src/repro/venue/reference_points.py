"""Reference-point (RP) placement along survey corridors.

RPs are the pre-selected, surveyor-visited locations whose coordinates
label fingerprints.  In walking surveys they sit along corridor
centrelines at roughly uniform spacing; Table V reports RP densities of
2.65-3.53 per 100 m^2, which the builders target via ``spacing``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from ..exceptions import VenueError
from .floorplan import FloorPlan


def place_reference_points(
    plan: FloorPlan,
    spacing: float,
    *,
    include_nodes: bool = True,
) -> np.ndarray:
    """Place RPs every ``spacing`` metres along each hallway-graph edge.

    Returns an ``(n_rps, 2)`` array of unique RP coordinates.  Corridor
    intersections (graph nodes) are included when ``include_nodes``.
    """
    if spacing <= 0:
        raise VenueError("RP spacing must be positive")
    pts: List[Tuple[float, float]] = []
    pos = plan.node_positions()
    if include_nodes:
        pts.extend((float(p[0]), float(p[1])) for p in pos.values())
    for a, b in plan.hallway_graph.edges():
        pa, pb = pos[a], pos[b]
        length = float(np.linalg.norm(pb - pa))
        n_seg = int(length // spacing)
        for k in range(1, n_seg + 1):
            frac = k * spacing / length
            if frac >= 1.0:
                break
            p = pa + frac * (pb - pa)
            pts.append((float(p[0]), float(p[1])))
    if not pts:
        raise VenueError("no RPs could be placed; spacing too large?")
    return np.unique(np.array(pts, dtype=float).round(6), axis=0)


def rp_density_per_100m2(plan: FloorPlan, rps: np.ndarray) -> float:
    """RP density as the paper reports it (RPs per 100 m^2)."""
    return float(100.0 * rps.shape[0] / plan.area)


def nearest_rp_index(rps: np.ndarray, point: np.ndarray) -> int:
    """Index of the RP nearest to ``point``."""
    d = np.linalg.norm(rps - np.asarray(point, dtype=float), axis=1)
    return int(np.argmin(d))


def rp_adjacency(rps: np.ndarray, radius: float) -> Dict[int, List[int]]:
    """Adjacency lists of RPs within ``radius`` metres of each other.

    Used by DasaKM's ground-truth MNAR sampling, which needs patches of
    *adjacent* RPs (Section III-B fixes the patch size to 6).
    """
    n = rps.shape[0]
    diffs = rps[:, None, :] - rps[None, :, :]
    dist = np.linalg.norm(diffs, axis=2)
    adj: Dict[int, List[int]] = {}
    for i in range(n):
        neighbours = np.where((dist[i] <= radius) & (np.arange(n) != i))[0]
        adj[i] = neighbours.tolist()
    return adj


def contiguous_rp_patch(
    rps: np.ndarray, size: int, rng: np.random.Generator, *, radius: float = 12.0
) -> List[int]:
    """Sample a connected patch of ``size`` adjacent RPs.

    Greedy BFS growth from a random seed; falls back to nearest-neighbour
    completion if the neighbourhood graph is too sparse.
    """
    n = rps.shape[0]
    if size > n:
        raise VenueError(f"patch size {size} exceeds RP count {n}")
    adj = rp_adjacency(rps, radius)
    seed = int(rng.integers(n))
    patch = [seed]
    frontier = list(adj[seed])
    while len(patch) < size and frontier:
        nxt = frontier.pop(0)
        if nxt in patch:
            continue
        patch.append(nxt)
        frontier.extend(j for j in adj[nxt] if j not in patch)
    if len(patch) < size:
        # Complete with globally nearest remaining RPs.
        remaining = [i for i in range(n) if i not in patch]
        centre = rps[patch].mean(axis=0)
        remaining.sort(key=lambda i: float(np.linalg.norm(rps[i] - centre)))
        patch.extend(remaining[: size - len(patch)])
    return patch[:size]
