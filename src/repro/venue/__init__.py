"""Indoor venue model: floor plans, access points, reference points,
and stacked multi-floor venues connected by portals."""

from .access_points import (
    AccessPoint,
    ap_positions,
    ap_powers,
    deploy_access_points,
)
from .builders import PRESETS, VenuePreset, VenueSpec, build_venue
from .floorplan import FloorPlan, build_grid_mall
from .multifloor import (
    PORTAL_KINDS,
    Floor,
    Portal,
    Venue,
    build_multifloor_venue,
)
from .reference_points import (
    contiguous_rp_patch,
    nearest_rp_index,
    place_reference_points,
    rp_adjacency,
    rp_density_per_100m2,
)

__all__ = [
    "PORTAL_KINDS",
    "PRESETS",
    "AccessPoint",
    "Floor",
    "FloorPlan",
    "Portal",
    "Venue",
    "VenuePreset",
    "VenueSpec",
    "ap_positions",
    "ap_powers",
    "build_grid_mall",
    "build_multifloor_venue",
    "build_venue",
    "contiguous_rp_patch",
    "deploy_access_points",
    "nearest_rp_index",
    "place_reference_points",
    "rp_adjacency",
    "rp_density_per_100m2",
]
