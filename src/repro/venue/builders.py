"""Synthetic venue presets mirroring the paper's three real venues.

Table V of the paper gives per-venue statistics (floor area, RP density,
AP count).  The builders below generate floor plans whose statistics
approach those targets at ``scale=1.0`` and shrink proportionally for
laptop-scale experiments (``scale < 1``).  Longhu is the Bluetooth venue:
fewer beacons with shorter range and noisier readings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..exceptions import VenueError
from .access_points import AccessPoint, deploy_access_points
from .floorplan import FloorPlan, build_grid_mall
from .reference_points import place_reference_points


@dataclass
class VenueSpec:
    """A fully instantiated venue: plan + APs + RPs + channel kind."""

    name: str
    plan: FloorPlan
    access_points: List[AccessPoint]
    reference_points: np.ndarray
    channel_kind: str = "wifi"  # "wifi" | "bluetooth"
    seed: int = 0

    @property
    def n_aps(self) -> int:
        return len(self.access_points)

    @property
    def n_rps(self) -> int:
        return int(self.reference_points.shape[0])

    def describe(self) -> str:
        """Human-readable summary comparable to a Table V row."""
        density = 100.0 * self.n_rps / self.plan.area
        return (
            f"{self.name}: area={self.plan.area:.1f} m2, "
            f"RP density={density:.2f}/100m2, RPs={self.n_rps}, "
            f"APs={self.n_aps}, channel={self.channel_kind}"
        )


@dataclass(frozen=True)
class VenuePreset:
    """Target statistics for one of the paper's venues (Table V)."""

    name: str
    floor_area_m2: float
    rp_density_per_100m2: float
    n_aps: int
    channel_kind: str
    aspect_ratio: float = 1.1
    corridors_x: int = 2
    corridors_y: int = 2


PRESETS = {
    "kaide": VenuePreset(
        name="kaide",
        floor_area_m2=3225.7,
        rp_density_per_100m2=3.53,
        n_aps=671,
        channel_kind="wifi",
        corridors_x=2,
        corridors_y=2,
    ),
    "wanda": VenuePreset(
        name="wanda",
        floor_area_m2=4458.5,
        rp_density_per_100m2=2.65,
        n_aps=929,
        channel_kind="wifi",
        corridors_x=2,
        corridors_y=3,
    ),
    "longhu": VenuePreset(
        name="longhu",
        floor_area_m2=6504.1,
        rp_density_per_100m2=3.11,
        n_aps=330,
        channel_kind="bluetooth",
        corridors_x=3,
        corridors_y=3,
    ),
}


def build_venue(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 7,
    min_aps: int = 24,
) -> VenueSpec:
    """Instantiate one of the preset venues.

    Parameters
    ----------
    name:
        One of ``"kaide"``, ``"wanda"``, ``"longhu"``.
    scale:
        Linear shrink factor in ``(0, 1]``.  Floor area scales with
        ``scale**2`` and the AP count proportionally, so RP density and
        per-area AP density stay close to the paper's.
    seed:
        Seed for AP placement randomness.
    min_aps:
        Lower bound on the AP count after scaling (keeps tiny test
        venues non-degenerate).
    """
    if name not in PRESETS:
        raise VenueError(f"unknown venue {name!r}; options: {sorted(PRESETS)}")
    if not 0.0 < scale <= 1.0:
        raise VenueError("scale must be in (0, 1]")
    preset = PRESETS[name]
    rng = np.random.default_rng(seed)

    area = preset.floor_area_m2 * scale * scale
    width = math.sqrt(area * preset.aspect_ratio)
    height = area / width
    # Keep corridor counts workable for small venues.
    cx = max(1, round(preset.corridors_x * scale)) if scale < 1 else preset.corridors_x
    cy = max(1, round(preset.corridors_y * scale)) if scale < 1 else preset.corridors_y

    plan = build_grid_mall(
        preset.name,
        width,
        height,
        corridor_width=min(3.0, width / 6.0),
        corridors_x=cx,
        corridors_y=cy,
    )

    n_aps = max(min_aps, int(round(preset.n_aps * scale * scale)))
    is_bt = preset.channel_kind == "bluetooth"
    aps = deploy_access_points(
        plan,
        n_aps,
        rng,
        room_fraction=0.6 if is_bt else 0.8,
        tx_power_dbm=-30.0 if is_bt else -20.0,
    )

    # Choose RP spacing to approach the target density.  Total corridor
    # centreline length L and target count n give spacing ~ L / n.
    target_rps = preset.rp_density_per_100m2 * area / 100.0
    total_len = sum(
        d["length"] for _, _, d in plan.hallway_graph.edges(data=True)
    )
    spacing = max(1.0, total_len / max(target_rps, 4.0))
    rps = place_reference_points(plan, spacing)

    return VenueSpec(
        name=preset.name,
        plan=plan,
        access_points=aps,
        reference_points=rps,
        channel_kind=preset.channel_kind,
        seed=seed,
    )
