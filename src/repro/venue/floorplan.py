"""Indoor floor-plan model.

A :class:`FloorPlan` captures exactly what the paper's algorithms need
from a venue:

* **rooms** — closed polygons whose walls attenuate and block signals;
  they are the *topological entities* ``T`` consumed by TopoAC;
* **hallways** — open corridors where walking surveys take place;
* a **hallway graph** — a networkx graph of corridor centrelines used to
  plan survey paths;
* overall bounds and a floor area.

Floor plans here are generated synthetically (see
:mod:`repro.venue.builders`) because the paper's proprietary mall maps
are unavailable; the generator produces the same structural features the
paper relies on (rooms separated from corridors by signal-attenuating
walls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np

from ..exceptions import VenueError
from ..geometry import MultiPolygon, Polygon

Point = Tuple[float, float]


@dataclass
class FloorPlan:
    """A single-floor indoor venue.

    Attributes
    ----------
    name:
        Venue identifier (e.g. ``"kaide"``).
    width, height:
        Bounding-box extent in metres.
    rooms:
        Room polygons; their edges act as walls in the channel model.
    hallways:
        Corridor polygons (open space).
    hallway_graph:
        Graph whose nodes carry a ``pos`` attribute (corridor-centreline
        waypoints) and whose edges are walkable corridor sections.
    """

    name: str
    width: float
    height: float
    rooms: List[Polygon] = field(default_factory=list)
    hallways: List[Polygon] = field(default_factory=list)
    hallway_graph: nx.Graph = field(default_factory=nx.Graph)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise VenueError("floor plan must have positive extent")

    # ------------------------------------------------------------------
    @property
    def area(self) -> float:
        """Total floor area in square metres."""
        return float(self.width * self.height)

    @property
    def entities(self) -> MultiPolygon:
        """Topological entities ``T`` for TopoAC: the room polygons."""
        return MultiPolygon(self.rooms)

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        return (0.0, 0.0, self.width, self.height)

    def wall_segments(self) -> Tuple[np.ndarray, np.ndarray]:
        """All wall segments as ``(starts, ends)`` arrays for the channel."""
        return self.entities.edge_arrays()

    def node_positions(self) -> Dict[int, np.ndarray]:
        """Positions of hallway-graph nodes keyed by node id."""
        return {
            n: np.asarray(d["pos"], dtype=float)
            for n, d in self.hallway_graph.nodes(data=True)
        }

    def in_hallway(self, point: Point) -> bool:
        """True if the point lies inside any corridor polygon."""
        return any(h.contains_point(point) for h in self.hallways)

    def validate(self) -> None:
        """Raise :class:`VenueError` on structural inconsistencies."""
        if not self.hallways:
            raise VenueError(f"venue {self.name!r}: no hallways")
        if self.hallway_graph.number_of_nodes() == 0:
            raise VenueError(f"venue {self.name!r}: empty hallway graph")
        if not nx.is_connected(self.hallway_graph):
            raise VenueError(f"venue {self.name!r}: hallway graph disconnected")
        for n, d in self.hallway_graph.nodes(data=True):
            if "pos" not in d:
                raise VenueError(f"hallway node {n} lacks a position")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.width:.0f}x{self.height:.0f} m, "
            f"{len(self.rooms)} rooms, {len(self.hallways)} hallways, "
            f"{self.hallway_graph.number_of_nodes()} path nodes"
        )


def build_grid_mall(
    name: str,
    width: float,
    height: float,
    *,
    corridor_width: float = 3.0,
    corridors_x: int = 2,
    corridors_y: int = 2,
    room_margin: float = 0.4,
) -> FloorPlan:
    """Generate a shopping-mall-like floor plan on a corridor grid.

    ``corridors_x`` vertical and ``corridors_y`` horizontal corridors are
    spread evenly across the bounding box; the rectangular blocks between
    them become rooms (stores).  This mirrors the structure visible in
    the paper's Kaide/Wanda figures: corridors with rooms on both sides.

    Parameters
    ----------
    room_margin:
        Gap (m) between room walls and corridor edges, representing
        storefront set-back; keeps geometry tests numerically robust.
    """
    if corridor_width <= 0:
        raise VenueError("corridor width must be positive")
    if corridors_x < 1 or corridors_y < 1:
        raise VenueError("need at least one corridor in each direction")

    # Corridor centreline coordinates, evenly spaced with outer margins.
    xs = np.linspace(width / (corridors_x + 1), width * corridors_x / (corridors_x + 1), corridors_x)
    ys = np.linspace(height / (corridors_y + 1), height * corridors_y / (corridors_y + 1), corridors_y)
    half = corridor_width / 2.0

    hallways: List[Polygon] = []
    for x in xs:
        hallways.append(Polygon.rectangle(x - half, 0.0, x + half, height))
    for y in ys:
        hallways.append(Polygon.rectangle(0.0, y - half, width, y + half))

    # Rooms fill the blocks between corridors (and between corridors and
    # the outer boundary).
    x_cuts = [0.0] + [c for x in xs for c in (x - half, x + half)] + [width]
    y_cuts = [0.0] + [c for y in ys for c in (y - half, y + half)] + [height]
    rooms: List[Polygon] = []
    for i in range(0, len(x_cuts) - 1, 2):
        for j in range(0, len(y_cuts) - 1, 2):
            x0, x1 = x_cuts[i], x_cuts[i + 1]
            y0, y1 = y_cuts[j], y_cuts[j + 1]
            x0m, x1m = x0 + room_margin, x1 - room_margin
            y0m, y1m = y0 + room_margin, y1 - room_margin
            if x1m - x0m > 1.0 and y1m - y0m > 1.0:
                rooms.append(Polygon.rectangle(x0m, y0m, x1m, y1m))

    graph = _build_corridor_graph(xs, ys, height, width)
    plan = FloorPlan(
        name=name,
        width=width,
        height=height,
        rooms=rooms,
        hallways=hallways,
        hallway_graph=graph,
    )
    plan.validate()
    return plan


def _build_corridor_graph(
    xs: np.ndarray, ys: np.ndarray, height: float, width: float
) -> nx.Graph:
    """Connect corridor centrelines into a walkable graph.

    Nodes are corridor intersections plus corridor endpoints; edges join
    consecutive nodes along each centreline.
    """
    graph = nx.Graph()
    node_id = 0
    index: Dict[Tuple[float, float], int] = {}

    def add_node(p: Tuple[float, float]) -> int:
        nonlocal node_id
        key = (round(p[0], 6), round(p[1], 6))
        if key in index:
            return index[key]
        graph.add_node(node_id, pos=(float(p[0]), float(p[1])))
        index[key] = node_id
        node_id += 1
        return index[key]

    y_stops = [0.0] + list(ys) + [height]
    x_stops = [0.0] + list(xs) + [width]
    for x in xs:  # vertical corridors
        chain = [add_node((x, y)) for y in y_stops]
        for a, b in zip(chain, chain[1:]):
            pa, pb = graph.nodes[a]["pos"], graph.nodes[b]["pos"]
            graph.add_edge(a, b, length=abs(pa[1] - pb[1]))
    for y in ys:  # horizontal corridors
        chain = [add_node((x, y)) for x in x_stops]
        for a, b in zip(chain, chain[1:]):
            pa, pb = graph.nodes[a]["pos"], graph.nodes[b]["pos"]
            graph.add_edge(a, b, length=abs(pa[0] - pb[0]))
    return graph
