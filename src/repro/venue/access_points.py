"""Access-point (AP) deployment over a floor plan.

The paper's venues have hundreds of APs (Table V: 671 for Kaide, 929 for
Wanda, 330 Bluetooth beacons for Longhu).  In real malls most of those
are store-owned APs inside rooms, with a minority of infrastructure APs
in corridors — which is why observability is so *local* (Fig. 3): an AP
deep inside a store is unobservable a few walls away.  The deployment
model reproduces that mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import VenueError
from .floorplan import FloorPlan


@dataclass(frozen=True)
class AccessPoint:
    """One deployed access point."""

    ap_id: int
    position: tuple
    tx_power_dbm: float

    def __post_init__(self) -> None:
        if len(self.position) != 2:
            raise VenueError("AP position must be 2-D")


def deploy_access_points(
    plan: FloorPlan,
    n_aps: int,
    rng: np.random.Generator,
    *,
    room_fraction: float = 0.8,
    tx_power_dbm: float = -20.0,
    tx_power_jitter: float = 4.0,
) -> List[AccessPoint]:
    """Place ``n_aps`` APs on the floor plan.

    Parameters
    ----------
    room_fraction:
        Fraction of APs placed inside rooms (store APs); the rest go
        into hallways (infrastructure APs).
    tx_power_dbm:
        Mean effective transmit power at 1 m reference distance.
    tx_power_jitter:
        Std-dev of per-AP transmit-power variation (hardware diversity).
    """
    if n_aps <= 0:
        raise VenueError("need at least one AP")
    if not 0.0 <= room_fraction <= 1.0:
        raise VenueError("room_fraction must be in [0, 1]")

    aps: List[AccessPoint] = []
    n_room = int(round(n_aps * room_fraction)) if plan.rooms else 0
    for i in range(n_aps):
        if i < n_room:
            room = plan.rooms[int(rng.integers(len(plan.rooms)))]
            pos = room.sample_interior_point(rng)
        else:
            hall = plan.hallways[int(rng.integers(len(plan.hallways)))]
            pos = hall.sample_interior_point(rng)
        power = float(tx_power_dbm + rng.normal(0.0, tx_power_jitter))
        aps.append(
            AccessPoint(ap_id=i, position=(float(pos[0]), float(pos[1])), tx_power_dbm=power)
        )
    return aps


def ap_positions(aps: List[AccessPoint]) -> np.ndarray:
    """Stack AP positions into a ``(D, 2)`` array."""
    return np.array([ap.position for ap in aps], dtype=float)


def ap_powers(aps: List[AccessPoint]) -> np.ndarray:
    """Stack AP transmit powers into a ``(D,)`` array."""
    return np.array([ap.tx_power_dbm for ap in aps], dtype=float)
