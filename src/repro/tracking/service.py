"""Stateful session tracking layered on the positioning service.

A :class:`TrackingService` turns the stateless per-scan
:class:`~repro.serving.PositioningService` into per-device trajectory
tracking: each navigating phone opens a *session*, every scan it
submits is answered with a motion-model-fused position instead of the
raw per-scan fix, and ending the session returns a summary.

::

    tracking = TrackingService(positioning)
    tracking.register_walkable("kaide", MultiPolygon(plan.hallways))
    sid = tracking.start("kaide", first_scan, t=0.0)
    fix = tracking.step(sid, next_scan, t=1.0)    # fused position
    batch = tracking.step_batch(sids, scans, ts)  # thousands at once
    summary = tracking.end(sid)

Sessions live in a thread-safe store with two eviction pressures:

* **TTL** — a session idle longer than ``ttl_seconds`` (measured on
  the service clock, which advances with the traffic's timestamps) is
  evicted before any new work touches the store.  Timestamps are one
  domain per service: omit ``t`` everywhere (wall clock) or supply it
  everywhere (logical time) — mixing raises, because one wall-clock
  default injected into a logically-timed fleet would ratchet the
  clock ahead and evict every session;
* **capacity** — when ``max_sessions`` is exceeded the
  least-recently-active sessions are evicted first (TTL pruning
  always runs before capacity eviction, so expired sessions never
  out-compete live ones).

Per-venue tracker state lives in vectorized
:class:`~repro.tracking.TrackerBank` slabs, so
:meth:`TrackingService.step_batch` advances any mix of sessions with
one positioning ``query_batch`` plus a handful of numpy kernels — the
batched mirror of the serving layer's query engine.

Hot swaps: the tracking layer holds the *service*, not its pipelines,
so :meth:`~repro.serving.PositioningService.reload` and
:meth:`~repro.serving.PositioningService.apply_delta` swap a venue's
estimator under live sessions without breaking them — the next step
simply fuses fixes from the new pipeline.

Thread safety: one lock guards the session store, the banks and the
stats; it is held across the embedded positioning query too, so
concurrent steppers serialize at the tracking layer (the positioning
service below stays the dominant cost and is itself thread-safe).
Steps for one session must be submitted in timestamp order by design
— a session is a single device's clock.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TrackingError
from ..obs import MetricsRegistry, Telemetry
from ..serving import PositioningService
from ..serving.floors import FloorClassifier
from ..venue.multifloor import Venue
from .constraint import Walkable, WalkableConstraint
from .kalman import MotionConfig, TrackerBank
from .portals import PortalMap


@dataclass
class TrackingStats:
    """Counters of one :class:`TrackingService`.

    ``seconds`` accumulates wall-clock time inside ``start*``/
    ``step*`` calls (positioning query included); ``rejected_fixes``
    counts fixes dropped by the innovation gate or the ``"reject"``
    constraint, ``clamped_fixes`` positions pulled back onto the
    walkable area.

    Since the telemetry layer landed this is a *view*: the service
    keeps its counters in ``tracking.*`` metrics on a
    :class:`~repro.obs.MetricsRegistry` and builds this dataclass on
    demand under the service lock, so the snapshot invariants
    (``steps`` vs ``batches`` vs the fix counters) hold exactly as
    they always did.
    """

    sessions_started: int = 0
    sessions_ended: int = 0
    evicted_ttl: int = 0
    evicted_capacity: int = 0
    steps: int = 0
    batches: int = 0
    rejected_fixes: int = 0
    clamped_fixes: int = 0
    #: Tracks handed across a portal to the classified floor (the
    #: elevator/stairs case: the scan's floor changed while the track
    #: stood at a portal entry).
    floor_switches: int = 0
    #: Off-floor scans coasted through because no portal was in reach
    #: (isolated floor misclassifications the hysteresis absorbs).
    floor_rejections: int = 0
    #: Tracks force-restarted on the scans' floor after persistent
    #: off-floor evidence with no portal nearby (classifier and track
    #: disagreed long enough that the track was the wrong one).
    floor_reanchors: int = 0
    seconds: float = 0.0

    @property
    def active_hint(self) -> int:
        """Sessions started minus ended/evicted (snapshot arithmetic)."""
        return (
            self.sessions_started
            - self.sessions_ended
            - self.evicted_ttl
            - self.evicted_capacity
        )

    @property
    def steps_per_second(self) -> float:
        return self.steps / self.seconds if self.seconds > 0 else 0.0

    def render(self) -> str:
        out = (
            f"sessions started={self.sessions_started} "
            f"ended={self.sessions_ended} "
            f"evicted(ttl={self.evicted_ttl} "
            f"cap={self.evicted_capacity}) | "
            f"steps={self.steps} in {self.batches} batches "
            f"({self.steps_per_second:.0f}/s) | "
            f"fixes rejected={self.rejected_fixes} "
            f"clamped={self.clamped_fixes}"
        )
        if (
            self.floor_switches
            or self.floor_rejections
            or self.floor_reanchors
        ):
            out += (
                f" | floors switched={self.floor_switches} "
                f"rejected={self.floor_rejections} "
                f"re-anchored={self.floor_reanchors}"
            )
        return out


@dataclass(frozen=True)
class TrackedFix:
    """One session's answer to one scan.

    ``floor`` is the session's floor *after* this scan (portal
    hand-offs land on the new floor); ``None`` for single-floor
    venues.
    """

    session_id: str
    venue: str
    position: np.ndarray
    velocity: np.ndarray
    raw: np.ndarray
    accepted: bool
    clamped: bool
    floor: Optional[str] = None


@dataclass(frozen=True)
class TrackedBatch:
    """Aligned arrays answering one :meth:`TrackingService.step_batch`.

    ``positions`` are the fused track positions, ``raw`` the per-scan
    service fixes the tracker fused (the untracked baseline —
    ``positions`` vs ``raw`` is exactly the tracking-gain comparison
    the metrics layer scores).
    """

    session_ids: Tuple[str, ...]
    venues: Tuple[str, ...]
    positions: np.ndarray
    velocities: np.ndarray
    raw: np.ndarray
    accepted: np.ndarray
    clamped: np.ndarray
    #: Per-row post-step floor ids; ``None`` entries are single-floor
    #: sessions.  Empty tuple on batches predating floor awareness.
    floors: Tuple[Optional[str], ...] = ()

    def __len__(self) -> int:
        return len(self.session_ids)

    def fix(self, i: int) -> TrackedFix:
        """Row ``i`` as a :class:`TrackedFix`."""
        return TrackedFix(
            session_id=self.session_ids[i],
            venue=self.venues[i],
            position=self.positions[i].copy(),
            velocity=self.velocities[i].copy(),
            raw=self.raw[i].copy(),
            accepted=bool(self.accepted[i]),
            clamped=bool(self.clamped[i]),
            floor=self.floors[i] if self.floors else None,
        )


@dataclass(frozen=True)
class SessionSummary:
    """What :meth:`TrackingService.end` hands back."""

    session_id: str
    venue: str
    steps: int
    started_at: float
    last_seen: float
    position: np.ndarray
    floor: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.last_seen - self.started_at


class _Session:
    __slots__ = (
        "sid",
        "venue",
        "slot",
        "created",
        "last_seen",
        "steps",
        "floor",
        "pending_floor",
        "pending_count",
    )

    def __init__(
        self,
        sid: str,
        venue: str,
        slot: int,
        t: float,
        floor: Optional[str] = None,
    ) -> None:
        self.sid = sid
        self.venue = venue
        self.slot = slot
        self.created = t
        self.last_seen = t
        self.steps = 0
        #: Current floor id for stacked venues; None on single-floor.
        self.floor = floor
        #: Off-floor hysteresis: the floor recent scans keep claiming
        #: (with no portal in reach) and how many in a row claimed it.
        self.pending_floor: Optional[str] = None
        self.pending_count = 0


@dataclass
class _FloorState:
    """What the tracking layer keeps per registered stacked venue."""

    classifier: FloorClassifier
    portals: PortalMap
    portal_radius: float
    #: Consecutive same-floor off-floor scans (with no portal in
    #: reach) before the track force-re-anchors on the scans' floor.
    reanchor_after: int


class TrackingService:
    """Session create/step/end API over a positioning service.

    Parameters
    ----------
    positioning:
        The deployed :class:`~repro.serving.PositioningService`
        answering per-scan fixes; venues are resolved through it, so
        anything deployable there is trackable here.
    motion:
        Motion model shared by every session (see
        :class:`~repro.tracking.MotionConfig`).
    ttl_seconds:
        Idle-session lifetime on the service clock.
    max_sessions:
        Hard cap on concurrently tracked sessions;
        least-recently-active sessions are evicted beyond it.
    constraint_mode:
        ``"clamp"`` or ``"reject"`` — how registered walkable
        geometry disciplines out-of-area fixes.
    telemetry:
        Optional :class:`~repro.obs.Telemetry` whose metrics registry
        the ``tracking.*`` counters bind to (sharing the positioning
        service's bundle puts the whole request path in one export).
        A private registry is created when omitted.
    """

    #: The three floor-routing counters, named once — reset together
    #: by :meth:`reset_floor_stats` and on floor re-registration.
    _FLOOR_COUNTERS = (
        "tracking.floor_switches",
        "tracking.floor_rejections",
        "tracking.floor_reanchors",
    )

    def __init__(
        self,
        positioning: PositioningService,
        *,
        motion: Optional[MotionConfig] = None,
        ttl_seconds: float = 300.0,
        max_sessions: int = 100_000,
        constraint_mode: str = "clamp",
        telemetry: Optional[Telemetry] = None,
    ):
        if ttl_seconds <= 0:
            raise TrackingError("ttl_seconds must be positive")
        if max_sessions < 1:
            raise TrackingError("max_sessions must be >= 1")
        self.positioning = positioning
        self.motion = motion or MotionConfig()
        self.ttl_seconds = float(ttl_seconds)
        self.max_sessions = int(max_sessions)
        self.constraint_mode = constraint_mode
        self._constraints: Dict[str, WalkableConstraint] = {}
        self._floors: Dict[str, _FloorState] = {}
        self._banks: Dict[str, TrackerBank] = {}
        self._sessions: "OrderedDict[str, _Session]" = OrderedDict()
        self._lock = threading.RLock()
        self._ids = itertools.count()
        self._clock = -np.inf
        # "wall" (times omitted, monotonic clock) or "logical"
        # (caller-supplied timestamps); set on first use.  The two
        # cannot mix: one wall-clock default injected into a
        # logically-timed fleet would ratchet the service clock ahead
        # by the host uptime and TTL-evict every session.
        self._time_domain: Optional[str] = None
        self.telemetry = telemetry
        self.metrics = (
            telemetry.metrics
            if telemetry is not None
            else MetricsRegistry()
        )
        m = self.metrics
        self._c_started = m.counter("tracking.sessions_started")
        self._c_ended = m.counter("tracking.sessions_ended")
        self._c_evicted_ttl = m.counter("tracking.evicted_ttl")
        self._c_evicted_cap = m.counter("tracking.evicted_capacity")
        self._c_steps = m.counter("tracking.steps")
        self._c_batches = m.counter("tracking.batches")
        self._c_rejected = m.counter("tracking.rejected_fixes")
        self._c_clamped = m.counter("tracking.clamped_fixes")
        self._c_floor_switch = m.counter("tracking.floor_switches")
        self._c_floor_reject = m.counter("tracking.floor_rejections")
        self._c_floor_reanchor = m.counter("tracking.floor_reanchors")
        self._c_seconds = m.counter("tracking.seconds")
        self._all_counters = (
            self._c_started, self._c_ended, self._c_evicted_ttl,
            self._c_evicted_cap, self._c_steps, self._c_batches,
            self._c_rejected, self._c_clamped, self._c_floor_switch,
            self._c_floor_reject, self._c_floor_reanchor,
            self._c_seconds,
        )
        if constraint_mode not in ("clamp", "reject"):
            raise TrackingError(
                "constraint_mode must be 'clamp' or 'reject'"
            )

    # ------------------------------------------------------------------
    # Venue geometry
    # ------------------------------------------------------------------
    def register_walkable(self, venue: str, walkable: Walkable) -> None:
        """Constrain a venue's tracks to its walkable geometry.

        Takes effect immediately, including for live sessions of the
        venue.  Venues without registered geometry track
        unconstrained.
        """
        constraint = WalkableConstraint(
            walkable, mode=self.constraint_mode
        )
        with self._lock:
            self._constraints[venue] = constraint
            if venue in self._banks:
                self._banks[venue].constraint = constraint

    def register_floors(
        self,
        venue: Venue,
        classifier: Optional[FloorClassifier] = None,
        *,
        portal_radius: float = 5.0,
        reanchor_after: int = 2,
        reset_floor_stats: bool = True,
    ) -> None:
        """Make a stacked venue trackable across its floors.

        Registers every floor's walkable geometry under its
        ``"venue/floor"`` bank key, builds the portal index, and keeps
        the floor classifier (default: strongest-AP from the venue's
        AP homing — match whatever the positioning service routes
        with) so each scan is floor-classified before positioning.
        From then on sessions of this venue carry a floor, their fixes
        come from the classified floor's shard, and a floor change
        hands the track through a portal instead of failing the
        innovation gate.

        ``portal_radius`` is how close (metres) the track must stand
        to a portal entry for the hand-off to fire;
        ``reanchor_after`` is the hysteresis — that many consecutive
        off-floor scans (same new floor, no portal in reach) force a
        re-anchor on the scans' floor.

        **Re-registering** an already-registered venue (the reload
        path: new geometry or a retuned classifier for a live
        service) zeroes the three floor-routing counters
        (``floor_switches`` / ``floor_rejections`` /
        ``floor_reanchors``) by default — they describe the routing
        configuration that just got replaced.  Pass
        ``reset_floor_stats=False`` to keep them cumulative across
        reloads; first-time registration never resets anything.
        """
        if portal_radius <= 0:
            raise TrackingError("portal_radius must be positive")
        if reanchor_after < 1:
            raise TrackingError("reanchor_after must be >= 1")
        state = _FloorState(
            classifier=(
                classifier
                if classifier is not None
                else FloorClassifier.from_venue(venue)
            ),
            portals=PortalMap.from_venue(venue),
            portal_radius=float(portal_radius),
            reanchor_after=int(reanchor_after),
        )
        with self._lock:
            reregistration = venue.name in self._floors
            for floor in venue.floors:
                self.register_walkable(
                    f"{venue.name}/{floor.floor_id}", floor.walkable
                )
            self._floors[venue.name] = state
            if reregistration and reset_floor_stats:
                self.reset_floor_stats()

    def _bank_key(self, session: _Session) -> str:
        return (
            session.venue
            if session.floor is None
            else f"{session.venue}/{session.floor}"
        )

    def _bank(self, venue: str) -> TrackerBank:
        # Caller holds the lock.
        bank = self._banks.get(venue)
        if bank is None:
            bank = TrackerBank(
                self.motion, self._constraints.get(venue)
            )
            self._banks[venue] = bank
        return bank

    # ------------------------------------------------------------------
    # Stats / introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> TrackingStats:
        """A consistent point-in-time snapshot of the counters."""
        with self._lock:
            return TrackingStats(
                sessions_started=int(self._c_started.value),
                sessions_ended=int(self._c_ended.value),
                evicted_ttl=int(self._c_evicted_ttl.value),
                evicted_capacity=int(self._c_evicted_cap.value),
                steps=int(self._c_steps.value),
                batches=int(self._c_batches.value),
                rejected_fixes=int(self._c_rejected.value),
                clamped_fixes=int(self._c_clamped.value),
                floor_switches=int(self._c_floor_switch.value),
                floor_rejections=int(self._c_floor_reject.value),
                floor_reanchors=int(self._c_floor_reanchor.value),
                seconds=self._c_seconds.value,
            )

    def reset_stats(self) -> None:
        """Zero every ``tracking.*`` counter, floor routing included.

        Resets only this service's own metrics — a shared telemetry
        registry's other metrics are untouched.
        """
        with self._lock:
            for counter in self._all_counters:
                counter.reset()

    def reset_floor_stats(self) -> None:
        """Zero just the three floor-routing counters.

        Floor routing stats describe one registered floor
        configuration; :meth:`register_floors` calls this on
        re-registration by default so counters from the replaced
        configuration don't pollute the new one's.  Call it directly
        to re-baseline without reloading.
        """
        with self._lock:
            for name in self._FLOOR_COUNTERS:
                self.metrics.counter(name).reset()

    @property
    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    @property
    def session_ids(self) -> Tuple[str, ...]:
        """Live session ids, least-recently-active first."""
        with self._lock:
            return tuple(self._sessions)

    def position(self, session_id: str) -> np.ndarray:
        """Current fused position of a live session (no step)."""
        with self._lock:
            session = self._resolve(session_id)
            return self._banks[self._bank_key(session)].position(
                session.slot
            )

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def start(
        self,
        venue: str,
        fingerprint: np.ndarray,
        *,
        t: Optional[float] = None,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a session from a first scan; returns the session id."""
        ids = None if session_id is None else [session_id]
        return self.start_batch(
            [venue],
            [fingerprint],
            times=None if t is None else [t],
            session_ids=ids,
        )[0]

    def start_batch(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
        *,
        times: Optional[Sequence[float]] = None,
        session_ids: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Open many sessions from their first scans in one call.

        The initial fixes come from one positioning ``query_batch``;
        each tracker starts at its fix with at-rest velocity.  TTL
        pruning and capacity eviction run before the new sessions are
        admitted, so a full store sheds its stalest sessions rather
        than rejecting fresh devices.
        """
        n = len(venues)
        if len(fingerprints) != n:
            raise TrackingError("venues/fingerprints length mismatch")
        if n > self.max_sessions:
            raise TrackingError(
                f"cannot start {n} sessions at once: max_sessions is "
                f"{self.max_sessions} (capacity eviction would kill "
                "sessions from this very batch)"
            )
        if session_ids is not None and len(session_ids) != n:
            raise TrackingError("session_ids length mismatch")
        t0 = time.perf_counter()
        with self._lock:
            times = self._check_times(times, n)
            # Prune before the id-collision check, so a device can
            # restart under the same session id once its previous
            # session has expired.
            self._advance_clock(times)
            self._prune_ttl()
            if session_ids is None:
                sids = [f"s{next(self._ids):08d}" for _ in range(n)]
            else:
                sids = [str(s) for s in session_ids]
                for sid in sids:
                    if sid in self._sessions:
                        raise TrackingError(
                            f"session {sid!r} already exists"
                        )
                if len(set(sids)) != n:
                    raise TrackingError("duplicate session ids")
            if self._floors:
                query_keys, floors = self._classify_floors(
                    venues, fingerprints
                )
            else:
                query_keys, floors = venues, [None] * n
            raw = self.positioning.query_batch(
                query_keys, fingerprints
            )
            for i, sid in enumerate(sids):
                # For stacked venues the query key *is* the bank key
                # ("venue/floor"); bare venues keep their own bank.
                bank = self._bank(query_keys[i])
                slot = bank.start(raw[i], float(times[i]))
                self._sessions[sid] = _Session(
                    sid,
                    venues[i],
                    slot,
                    float(times[i]),
                    floor=floors[i],
                )
                self._sessions.move_to_end(sid)
            self._c_started.add(n)
            self._evict_over_capacity()
            self._c_seconds.add(time.perf_counter() - t0)
        return sids

    def step(
        self,
        session_id: str,
        fingerprint: np.ndarray,
        *,
        t: Optional[float] = None,
    ) -> TrackedFix:
        """Fuse one scan into one session → its tracked fix."""
        batch = self.step_batch(
            [session_id],
            [fingerprint],
            times=None if t is None else [t],
        )
        return batch.fix(0)

    def step_batch(
        self,
        session_ids: Sequence[str],
        fingerprints: Sequence[np.ndarray],
        *,
        times: Optional[Sequence[float]] = None,
    ) -> TrackedBatch:
        """Advance many sessions with one scan each.

        Rows may mix venues freely; the scans go through one
        positioning ``query_batch`` and each venue's sessions advance
        in one vectorized bank step.  A session id may appear at most
        once per batch (a device's scans are ordered), and every id
        must be live — unknown or expired ids raise
        :class:`~repro.exceptions.TrackingError`.
        """
        n = len(session_ids)
        if len(fingerprints) != n:
            raise TrackingError(
                "session_ids/fingerprints length mismatch"
            )
        if n == 0:
            raise TrackingError("empty step batch")
        if len(set(session_ids)) != n:
            raise TrackingError(
                "a session may step at most once per batch"
            )
        t0 = time.perf_counter()
        with self._lock:
            times = self._check_times(times, n)
            self._advance_clock(times)
            self._prune_ttl()
            sessions = [self._resolve(sid) for sid in session_ids]
            venues = [s.venue for s in sessions]
            if self._floors:
                query_keys, targets = self._classify_floors(
                    venues, fingerprints
                )
            else:
                query_keys, targets = venues, None
            raw = self.positioning.query_batch(
                query_keys, fingerprints
            )
            positions = np.empty((n, 2))
            velocities = np.empty((n, 2))
            accepted = np.empty(n, dtype=bool)
            clamped = np.empty(n, dtype=bool)
            by_bank: Dict[str, List[int]] = {}
            transitions: List[int] = []
            for i, session in enumerate(sessions):
                target = None if targets is None else targets[i]
                if target is not None and target != session.floor:
                    # The scans moved floors while the track stayed:
                    # portal hand-off / hysteresis, handled per row.
                    transitions.append(i)
                    continue
                if session.pending_count:
                    # Back on the track's floor: off-floor evidence
                    # was an isolated misclassification after all.
                    session.pending_floor = None
                    session.pending_count = 0
                by_bank.setdefault(
                    self._bank_key(session), []
                ).append(i)
            for key, rows in by_bank.items():
                bank = self._banks[key]
                result = bank.step_batch(
                    [sessions[i].slot for i in rows],
                    raw[rows],
                    times[rows],
                )
                positions[rows] = result.positions
                velocities[rows] = result.velocities
                accepted[rows] = result.accepted
                clamped[rows] = result.clamped
            for i in transitions:
                self._transition(
                    sessions[i],
                    targets[i],
                    raw[i],
                    float(times[i]),
                    i,
                    positions,
                    velocities,
                    accepted,
                    clamped,
                )
            for i, session in enumerate(sessions):
                # Ratchet: one stale device timestamp must not rewind
                # the session into its own TTL window.
                session.last_seen = max(
                    session.last_seen, float(times[i])
                )
                session.steps += 1
                self._sessions.move_to_end(session.sid)
            self._c_steps.add(n)
            self._c_batches.add(1)
            self._c_rejected.add(int((~accepted).sum()))
            self._c_clamped.add(int(clamped.sum()))
            self._c_seconds.add(time.perf_counter() - t0)
        return TrackedBatch(
            session_ids=tuple(session_ids),
            venues=tuple(venues),
            positions=positions,
            velocities=velocities,
            raw=raw,
            accepted=accepted,
            clamped=clamped,
            floors=(
                tuple(s.floor for s in sessions)
                if self._floors
                else ()
            ),
        )

    def end(self, session_id: str) -> SessionSummary:
        """Close a session and return its summary."""
        with self._lock:
            session = self._resolve(session_id)
            summary = self._summary(session)
            self._drop(session)
            self._c_ended.add(1)
        return summary

    # ------------------------------------------------------------------
    # Internals (caller holds the lock)
    # ------------------------------------------------------------------
    def _classify_floors(
        self,
        venues: Sequence[str],
        fingerprints: Sequence[np.ndarray],
    ) -> Tuple[List[str], List[Optional[str]]]:
        """Per-row (positioning query key, classified floor id).

        Rows of venues registered via :meth:`register_floors` are
        batch-classified per venue; everything else passes through
        with its bare key and a ``None`` floor.
        """
        floors: List[Optional[str]] = [None] * len(venues)
        keys: List[str] = list(venues)
        grouped: Dict[str, List[int]] = {}
        for i, venue in enumerate(venues):
            if venue in self._floors:
                grouped.setdefault(venue, []).append(i)
        for venue, rows in grouped.items():
            classifier = self._floors[venue].classifier
            batch = np.stack(
                [
                    np.asarray(fingerprints[i], dtype=float)
                    for i in rows
                ]
            )
            for i, fi in zip(rows, classifier.classify(batch)):
                fid = classifier.floors[int(fi)]
                floors[i] = fid
                keys[i] = f"{venue}/{fid}"
        return keys, floors

    def _transition(
        self,
        session: _Session,
        target: str,
        raw_fix: np.ndarray,
        t: float,
        i: int,
        positions: np.ndarray,
        velocities: np.ndarray,
        accepted: np.ndarray,
        clamped: np.ndarray,
    ) -> None:
        """Resolve one scan that classified off the session's floor.

        Three outcomes, in priority order: the transition looks like a
        portal traversal → hand off through it (start on the exit
        point, fuse the scan's fix at the same timestamp — a zero-dt
        step through the ordinary bit-identical kernels); no portal in
        reach but the off-floor evidence has persisted → re-anchor the
        track at the raw fix on the scans' floor; else coast on the
        current floor and reject the fix (an isolated
        misclassification the hysteresis absorbs).

        The portal test is two-sided: the track standing within
        ``portal_radius`` of a portal entry (:meth:`PortalMap.handoff`)
        *or* the scan's own fix landing within ``portal_radius`` of
        its exit on the new floor (:meth:`PortalMap.arrival`).  The
        track lags the device by the filter's smoothing horizon, so
        at the moment the first next-floor scan arrives it can sit
        short of the entry while the fix — measured on the new floor —
        already pins the device to the exit.
        """
        state = self._floors[session.venue]
        old_bank = self._banks[self._bank_key(session)]
        here = old_bank.position(session.slot)
        exit_xy = state.portals.handoff(
            session.floor,
            target,
            here,
            radius=state.portal_radius,
        )
        if exit_xy is None:
            exit_xy = state.portals.arrival(
                session.floor,
                target,
                raw_fix,
                radius=state.portal_radius,
            )
        if exit_xy is None:
            if target == session.pending_floor:
                session.pending_count += 1
            else:
                session.pending_floor = target
                session.pending_count = 1
            if session.pending_count < state.reanchor_after:
                positions[i] = here
                velocities[i] = old_bank.velocity(session.slot)
                accepted[i] = False
                clamped[i] = False
                self._c_floor_reject.add(1)
                return
        old_bank.release(session.slot)
        session.floor = target
        session.pending_floor = None
        session.pending_count = 0
        new_bank = self._bank(self._bank_key(session))
        if exit_xy is not None:
            session.slot = new_bank.start(exit_xy, t)
            self._c_floor_switch.add(1)
        else:
            session.slot = new_bank.start(raw_fix, t)
            self._c_floor_reanchor.add(1)
        result = new_bank.step(session.slot, raw_fix, t)
        positions[i] = result.positions[0]
        velocities[i] = result.velocities[0]
        accepted[i] = result.accepted[0]
        clamped[i] = result.clamped[0]

    def _check_times(
        self, times: Optional[Sequence[float]], n: int
    ) -> np.ndarray:
        domain = "wall" if times is None else "logical"
        if self._time_domain is None:
            self._time_domain = domain
        elif domain != self._time_domain:
            raise TrackingError(
                "cannot mix wall-clock and caller-supplied "
                f"timestamps: this service runs on {self._time_domain} "
                "time (the service clock only ratchets forward, so "
                "one stray domain switch would TTL-evict every "
                "session); pass explicit times everywhere or nowhere"
            )
        if times is None:
            return np.full(n, time.monotonic())
        out = np.asarray(times, dtype=float)
        if out.shape != (n,):
            raise TrackingError(f"times must be ({n},)")
        if not np.isfinite(out).all():
            raise TrackingError("times must be finite")
        return out

    def _advance_clock(self, times: np.ndarray) -> None:
        clock = float(times.max())
        if clock > self._clock:
            self._clock = clock

    def _resolve(self, session_id: str) -> _Session:
        session = self._sessions.get(session_id)
        if session is not None and self._expired(session):
            # The lazy front-stop prune can leave an expired session
            # behind a fresher one; expiry is still enforced here so
            # it cannot be stepped back to life.
            self._drop(session)
            self._c_evicted_ttl.add(1)
            session = None
        if session is None:
            raise TrackingError(
                f"unknown or expired session {session_id!r}"
            )
        return session

    def _expired(self, session: _Session) -> bool:
        return session.last_seen < self._clock - self.ttl_seconds

    def _summary(self, session: _Session) -> SessionSummary:
        return SessionSummary(
            session_id=session.sid,
            venue=session.venue,
            steps=session.steps,
            started_at=session.created,
            last_seen=session.last_seen,
            position=self._banks[self._bank_key(session)].position(
                session.slot
            ),
            floor=session.floor,
        )

    def _drop(self, session: _Session) -> None:
        self._banks[self._bank_key(session)].release(session.slot)
        del self._sessions[session.sid]

    def _prune_ttl(self) -> None:
        # The store is kept least-recently-active first, so pruning
        # pops from the front and stops at the first live entry —
        # O(evicted), not O(sessions), on every start/step call.
        # (_resolve still enforces expiry for any stale session a
        # fresher neighbour shields from this early stop.)
        evicted = 0
        while self._sessions:
            session = next(iter(self._sessions.values()))
            if not self._expired(session):
                break
            self._drop(session)
            evicted += 1
        if evicted:
            self._c_evicted_ttl.add(evicted)

    def _evict_over_capacity(self) -> None:
        while len(self._sessions) > self.max_sessions:
            _, session = self._sessions.popitem(last=False)
            self._banks[self._bank_key(session)].release(session.slot)
            self._c_evicted_cap.add(1)
