"""Constant-velocity Kalman tracking over per-scan position fixes.

A phone navigating a venue produces a *sequence* of correlated scans,
not independent one-shot queries.  Each scan yields a noisy position
fix from the fingerprint pipeline; fusing those fixes with a
constant-velocity (CV) motion model filters the per-scan noise and
keeps the track on the walkable area.

State per session is ``[px, py, vx, vy]`` with covariance ``P``.
Between scans the state advances under the CV transition with
white-noise-acceleration process noise (spectral density
``MotionConfig.process_noise``); each fix is fused through the
standard Kalman update with measurement noise
``measurement_sigma**2 * I``, an optional Mahalanobis innovation gate,
and an optional walkable-geometry constraint
(:class:`~repro.tracking.constraint.WalkableConstraint`).

Vectorization contract
----------------------
Every kernel is written with elementwise array arithmetic and
``np.einsum`` (never BLAS matmuls, whose kernel choice can depend on
operand shape), so the arithmetic performed for one session is the
same instruction sequence whether it runs in a batch of one
(:meth:`TrackerBank.step`) or a batch of thousands
(:meth:`TrackerBank.step_batch`).  The two paths are bit-identical —
the tests pin this, and the serving layer relies on it to answer
single-session steps and fleet-wide batch steps from the same math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TrackingError
from .constraint import WalkableConstraint


@dataclass(frozen=True)
class MotionConfig:
    """Motion-model knobs shared by every tracker in a bank.

    Parameters
    ----------
    process_noise:
        White-noise-acceleration spectral density ``q`` (m²/s³).
        Larger values trust the fixes more (the model expects abrupt
        manoeuvres); smaller values smooth harder.
    measurement_sigma:
        Standard deviation (m) of a per-scan position fix — roughly
        the estimator's average positioning error on the venue.
    init_position_sigma:
        Position uncertainty (m) of a freshly started track.
    init_velocity_sigma:
        Velocity uncertainty (m/s) of a freshly started track
        (trackers start at rest).
    gate_sigma:
        Innovation gate in sigmas: a fix whose squared Mahalanobis
        distance exceeds ``gate_sigma**2`` is rejected (the track
        coasts on its prediction).  0 disables gating.
    max_dt:
        Upper clamp (s) on the between-scan gap, so one stale session
        cannot inflate its process noise into a useless prior.
    """

    process_noise: float = 0.1
    measurement_sigma: float = 2.5
    init_position_sigma: float = 3.0
    init_velocity_sigma: float = 1.5
    gate_sigma: float = 3.0
    max_dt: float = 30.0

    def __post_init__(self) -> None:
        if self.process_noise <= 0:
            raise TrackingError("process_noise must be positive")
        for name in (
            "measurement_sigma",
            "init_position_sigma",
            "init_velocity_sigma",
        ):
            if getattr(self, name) <= 0:
                raise TrackingError(f"{name} must be positive")
        if self.gate_sigma < 0:
            raise TrackingError("gate_sigma must be >= 0")
        if self.max_dt <= 0:
            raise TrackingError("max_dt must be positive")


def kalman_predict(
    x: np.ndarray, P: np.ndarray, dt: np.ndarray, q: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Advance ``(x, P)`` by per-row gaps ``dt`` under the CV model.

    ``x`` is ``(n, 4)``, ``P`` is ``(n, 4, 4)``, ``dt`` is ``(n,)``;
    returns the predicted copies (inputs are not mutated).
    """
    dt = np.asarray(dt, dtype=float)
    x2 = x.copy()
    x2[:, 0] = x[:, 0] + dt * x[:, 2]
    x2[:, 1] = x[:, 1] + dt * x[:, 3]
    n = x.shape[0]
    F = np.broadcast_to(np.eye(4), (n, 4, 4)).copy()
    F[:, 0, 2] = dt
    F[:, 1, 3] = dt
    P2 = np.einsum("nij,njk,nlk->nil", F, P, F)
    q3 = q * dt**3 / 3.0
    q2 = q * dt**2 / 2.0
    q1 = q * dt
    P2[:, 0, 0] += q3
    P2[:, 1, 1] += q3
    P2[:, 0, 2] += q2
    P2[:, 2, 0] += q2
    P2[:, 1, 3] += q2
    P2[:, 3, 1] += q2
    P2[:, 2, 2] += q1
    P2[:, 3, 3] += q1
    return x2, P2


def kalman_update(
    x: np.ndarray,
    P: np.ndarray,
    z: np.ndarray,
    r: float,
    gate_sigma: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fuse position fixes ``z`` (``(n, 2)``) into ``(x, P)``.

    Returns ``(x', P', accepted)``; rows failing the Mahalanobis gate
    keep their prediction and come back with ``accepted=False``.  The
    2×2 innovation covariance is inverted in closed form, so the whole
    update is elementwise (see the module's vectorization contract).
    """
    y = z - x[:, :2]
    s00 = P[:, 0, 0] + r * r
    s01 = P[:, 0, 1]
    s10 = P[:, 1, 0]
    s11 = P[:, 1, 1] + r * r
    det = s00 * s11 - s01 * s10
    i00 = s11 / det
    i01 = -s01 / det
    i10 = -s10 / det
    i11 = s00 / det
    if gate_sigma > 0:
        m2 = y[:, 0] * (i00 * y[:, 0] + i01 * y[:, 1]) + y[:, 1] * (
            i10 * y[:, 0] + i11 * y[:, 1]
        )
        accepted = m2 <= gate_sigma * gate_sigma
    else:
        accepted = np.ones(x.shape[0], dtype=bool)
    # Kalman gain K = P Hᵀ S⁻¹ with H = [I₂ 0]: two (n, 4) columns.
    ph0 = P[:, :, 0]
    ph1 = P[:, :, 1]
    k0 = ph0 * i00[:, None] + ph1 * i10[:, None]
    k1 = ph0 * i01[:, None] + ph1 * i11[:, None]
    x2 = x + k0 * y[:, 0][:, None] + k1 * y[:, 1][:, None]
    # P' = P - K (H P); (K H P)[n, i, j] = K₀ P[n,0,j] + K₁ P[n,1,j].
    khp = (
        k0[:, :, None] * P[:, 0, None, :]
        + k1[:, :, None] * P[:, 1, None, :]
    )
    P2 = P - khp
    x2 = np.where(accepted[:, None], x2, x)
    P2 = np.where(accepted[:, None, None], P2, P)
    return x2, P2, accepted


@dataclass(frozen=True)
class StepResult:
    """What one (batched) tracker step produced.

    ``positions`` are the fused track positions after the motion
    update, geometry constraint included; ``accepted`` flags rows
    whose fix survived the innovation gate (and, in ``"reject"``
    constraint mode, the walkable test); ``clamped`` flags rows whose
    position was pulled back onto the walkable area.
    """

    positions: np.ndarray
    velocities: np.ndarray
    accepted: np.ndarray
    clamped: np.ndarray


class TrackerBank:
    """A bank of CV-Kalman trackers stepping as batched numpy.

    Slots are allocated by :meth:`start` and recycled by
    :meth:`release`; all per-slot state lives in flat arrays so
    :meth:`step_batch` advances any subset of sessions with a handful
    of vectorized kernels — no per-session Python.  The bank itself is
    not thread-safe; :class:`~repro.tracking.TrackingService` guards
    it with the session-store lock.
    """

    def __init__(
        self,
        config: Optional[MotionConfig] = None,
        constraint: Optional[WalkableConstraint] = None,
        capacity: int = 64,
    ):
        if capacity < 1:
            raise TrackingError("capacity must be >= 1")
        self.config = config or MotionConfig()
        self.constraint = constraint
        n = int(capacity)
        self._x = np.zeros((n, 4))
        self._P = np.zeros((n, 4, 4))
        self._t = np.zeros(n)
        self._alive = np.zeros(n, dtype=bool)
        self._free: List[int] = list(range(n - 1, -1, -1))

    def __len__(self) -> int:
        return int(self._alive.sum())

    @property
    def capacity(self) -> int:
        return self._x.shape[0]

    def _grow(self) -> None:
        old = self.capacity
        new = max(2 * old, 8)
        for name, shape in (
            ("_x", (new, 4)),
            ("_P", (new, 4, 4)),
            ("_t", (new,)),
        ):
            fresh = np.zeros(shape)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        alive = np.zeros(new, dtype=bool)
        alive[:old] = self._alive
        self._alive = alive
        self._free.extend(range(new - 1, old - 1, -1))

    def start(self, position: np.ndarray, t: float) -> int:
        """Open a track at ``position`` (a first fix) and return its slot."""
        pos = np.asarray(position, dtype=float)
        if pos.shape != (2,) or not np.isfinite(pos).all():
            raise TrackingError(
                "a track starts from a finite (2,) position fix"
            )
        if not self._free:
            self._grow()
        slot = self._free.pop()
        cfg = self.config
        self._x[slot] = (pos[0], pos[1], 0.0, 0.0)
        self._P[slot] = np.diag(
            [
                cfg.init_position_sigma**2,
                cfg.init_position_sigma**2,
                cfg.init_velocity_sigma**2,
                cfg.init_velocity_sigma**2,
            ]
        )
        self._t[slot] = float(t)
        self._alive[slot] = True
        return slot

    def release(self, slot: int) -> None:
        """Free a slot for reuse."""
        self._check_slot(slot)
        self._alive[slot] = False
        self._free.append(int(slot))

    def _check_slot(self, slot: int) -> None:
        if not (0 <= slot < self.capacity) or not self._alive[slot]:
            raise TrackingError(f"no live tracker in slot {slot}")

    def position(self, slot: int) -> np.ndarray:
        self._check_slot(slot)
        return self._x[slot, :2].copy()

    def velocity(self, slot: int) -> np.ndarray:
        self._check_slot(slot)
        return self._x[slot, 2:].copy()

    def step(self, slot: int, fix: np.ndarray, t: float) -> StepResult:
        """Advance one tracker — a batch of one, bit-identical to
        the same slot inside a larger :meth:`step_batch`."""
        return self.step_batch(
            np.asarray([slot]),
            np.asarray(fix, dtype=float)[None, :],
            np.asarray([t], dtype=float),
        )

    def step_batch(
        self,
        slots: Sequence[int],
        fixes: np.ndarray,
        times: Sequence[float],
    ) -> StepResult:
        """Advance many trackers in one vectorized predict→update.

        ``slots`` must be unique live slots; ``fixes`` is ``(n, 2)``
        per-scan position fixes and ``times`` their timestamps.  A
        tracker's clock never runs backwards: the per-row gap is
        clamped to ``[0, max_dt]``, and a stale (out-of-order)
        timestamp leaves the stored clock where it was.
        """
        slots = np.asarray(slots, dtype=int)
        fixes = np.asarray(fixes, dtype=float)
        times = np.asarray(times, dtype=float)
        n = slots.shape[0]
        if fixes.shape != (n, 2) or times.shape != (n,):
            raise TrackingError(
                f"step_batch wants ({n}, 2) fixes and ({n},) times, "
                f"got {fixes.shape} and {times.shape}"
            )
        if not np.isfinite(fixes).all():
            raise TrackingError("fixes must be finite")
        if np.unique(slots).shape[0] != n:
            raise TrackingError(
                "step_batch slots must be unique — a session steps "
                "once per batch"
            )
        if not self._alive[slots].all():
            dead = sorted(int(s) for s in slots[~self._alive[slots]])
            raise TrackingError(f"no live tracker in slots {dead}")

        cfg = self.config
        dt = np.clip(times - self._t[slots], 0.0, cfg.max_dt)
        x, P = kalman_predict(
            self._x[slots], self._P[slots], dt, cfg.process_noise
        )
        x2, P2, accepted = kalman_update(
            x, P, fixes, cfg.measurement_sigma, cfg.gate_sigma
        )
        clamped = np.zeros(n, dtype=bool)
        if self.constraint is not None:
            x2, P2, accepted, clamped = self.constraint.constrain(
                x, P, x2, P2, accepted
            )
        self._x[slots] = x2
        self._P[slots] = P2
        self._t[slots] = np.maximum(self._t[slots], times)
        return StepResult(
            positions=x2[:, :2].copy(),
            velocities=x2[:, 2:].copy(),
            accepted=accepted,
            clamped=clamped,
        )


class Tracker:
    """One device's track: the single-session face of the bank.

    Convenience wrapper holding a one-slot :class:`TrackerBank`, so a
    standalone tracker and a fleet of thousands run the exact same
    kernels::

        tracker = Tracker(first_fix, t=0.0, constraint=walkable)
        for t, fix in fixes:
            result = tracker.step(fix, t)
    """

    def __init__(
        self,
        position: np.ndarray,
        t: float = 0.0,
        config: Optional[MotionConfig] = None,
        constraint: Optional[WalkableConstraint] = None,
    ):
        self._bank = TrackerBank(config, constraint, capacity=1)
        self._slot = self._bank.start(position, t)

    @property
    def position(self) -> np.ndarray:
        """Current fused position ``(2,)``."""
        return self._bank.position(self._slot)

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate ``(2,)``."""
        return self._bank.velocity(self._slot)

    @property
    def time(self) -> float:
        """Timestamp of the last step (or start)."""
        return float(self._bank._t[self._slot])

    def step(self, fix: np.ndarray, t: float) -> StepResult:
        """Fuse one position fix taken at time ``t``."""
        return self._bank.step(self._slot, fix, t)
