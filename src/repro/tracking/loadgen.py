"""Tracking workload generator: correlated scan sequences per device
(``python -m repro track``).

The serving load generator replays *independent* scans; real traffic
is devices walking the venue, each emitting a correlated scan
sequence.  The ``tracking`` scenario generates exactly that, reusing
the survey substrate: every simulated device random-walks the hallway
graph, a :class:`~repro.survey.PathKinematics` draws its
variable-speed/pause time profile, and the channel model measures a
scan every ``scan_interval`` seconds along the way — ground truth in
hand.

:func:`run_tracking` replays the fleet against a
:class:`~repro.tracking.TrackingService` in lockstep (every device's
``k``-th scan goes into one ``step_batch``), then scores the tracked
trajectories against both the ground truth and the raw per-scan fixes
— the tracked-vs-per-scan RMSE improvement is the subsystem's
headline number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..core import TopoACDifferentiator
from ..datasets import Dataset
from ..datasets.multifloor import (
    MultiFloorDataset,
    make_multifloor_dataset,
)
from ..exceptions import TrackingError
from ..experiments.base import ExperimentResult
from ..experiments.config import ExperimentConfig
from ..experiments.runner import get_dataset
from ..geometry import MultiPolygon
from ..metrics import tracking_improvement, trajectory_rmse
from ..positioning import WKNNEstimator
from ..serving import PositioningService, deploy_floors
from ..survey import PathKinematics, plan_multifloor_walk
from .kalman import MotionConfig
from .service import TrackingService


@dataclass(frozen=True)
class TrackingScenario:
    """One fleet shape for the tracking load generator.

    ``devices`` phones walk simultaneously; each scans every
    ``scan_interval`` seconds for ``duration`` seconds at about
    ``base_speed`` m/s (the survey kinematics add per-segment speed
    jitter and pauses, so the constant-velocity model is genuinely
    approximate — as in production).
    """

    name: str = "tracking"
    devices: int = 32
    scan_interval: float = 1.0
    duration: float = 45.0
    base_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise TrackingError("devices must be >= 1")
        if self.scan_interval <= 0:
            raise TrackingError("scan_interval must be positive")
        if self.duration <= self.scan_interval:
            raise TrackingError("duration must exceed scan_interval")
        if self.base_speed <= 0:
            raise TrackingError("base_speed must be positive")


#: The default fleet: the mix the acceptance improvement is scored on.
DEFAULT_TRACKING_SCENARIO = TrackingScenario()


@dataclass
class Walk:
    """One device's simulated trip: truth trajectory plus its scans.

    ``floors`` labels each tick's ground-truth floor for multi-floor
    walks (``None`` on single-floor venues).
    """

    venue: str
    times: np.ndarray
    positions: np.ndarray
    scans: np.ndarray
    floors: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.times)


def _random_walk_waypoints(
    graph: nx.Graph,
    pos: Dict[int, np.ndarray],
    rng: np.random.Generator,
    min_length: float,
) -> np.ndarray:
    """A corridor polyline of at least ``min_length`` metres.

    Random walk over the hallway graph, avoiding an immediate
    backtrack when the node has another exit — phones wander, they
    rarely pace one corridor segment.
    """
    nodes = list(graph.nodes())
    current = nodes[int(rng.integers(len(nodes)))]
    walk = [current]
    previous = None
    length = 0.0
    while length < min_length:
        neighbours = list(graph.neighbors(current))
        if not neighbours:  # pragma: no cover - validated venues
            break
        choices = [n for n in neighbours if n != previous]
        if not choices:
            choices = neighbours
        nxt = choices[int(rng.integers(len(choices)))]
        length += float(
            np.linalg.norm(pos[nxt] - pos[current])
        )
        walk.append(nxt)
        previous, current = current, nxt
    return np.array([pos[n] for n in walk], dtype=float)


def simulate_walks(
    dataset: Dataset,
    scenario: TrackingScenario,
    seed: int,
) -> List[Walk]:
    """Simulate the scenario's device fleet on one venue.

    Every walk has the same scan clock (``scan_interval`` ticks over
    ``duration``), so the fleet steps in lockstep; a device reaching
    the end of its corridor walk early simply dwells there (the
    kinematics clamp), which is what phones do at a storefront.
    """
    rng = np.random.default_rng(seed)
    plan = dataset.venue.plan
    pos = plan.node_positions()
    times = np.arange(
        0.0, scenario.duration, scenario.scan_interval, dtype=float
    )
    # Enough corridor to fill the trip even with fast segments.
    min_length = 1.5 * scenario.base_speed * scenario.duration
    walks: List[Walk] = []
    for _ in range(scenario.devices):
        waypoints = _random_walk_waypoints(
            plan.hallway_graph, pos, rng, min_length
        )
        kinematics = PathKinematics(
            waypoints, rng, base_speed=scenario.base_speed
        )
        positions = np.stack(
            [kinematics.position(t) for t in times]
        )
        scans = np.stack(
            [
                dataset.channel.measure(p, rng).rssi
                for p in positions
            ]
        )
        walks.append(
            Walk(
                venue=dataset.name,
                times=times.copy(),
                positions=positions,
                scans=scans,
            )
        )
    return walks


def simulate_multifloor_walks(
    dataset: "MultiFloorDataset",
    scenario: TrackingScenario,
    seed: int,
) -> List[Walk]:
    """Simulate the fleet on a stacked venue, portals included.

    Every device walks the full floor stack bottom to top
    (:func:`~repro.survey.plan_multifloor_walk`), so each walk crosses
    every portal level; each tick's scan is measured by the
    ground-truth floor's channel — the fingerprints genuinely migrate
    to the next floor's APs mid-ride, which is what the tracking
    layer's classifier and portal hand-off have to follow.  Leg
    lengths are sized so the portal crossings land inside the
    scenario's duration.
    """
    rng = np.random.default_rng(seed)
    times = np.arange(
        0.0, scenario.duration, scenario.scan_interval, dtype=float
    )
    n_floors = dataset.venue.n_floors
    hop_time = sum(
        p.traversal_seconds for p in dataset.venue.portals[: n_floors - 1]
    )
    leg_length = max(
        10.0,
        scenario.base_speed
        * (scenario.duration - hop_time)
        / (2.0 * max(n_floors, 1)),
    )
    walks: List[Walk] = []
    for _ in range(scenario.devices):
        plan = plan_multifloor_walk(
            dataset.venue,
            rng,
            leg_length=leg_length,
            base_speed=scenario.base_speed,
        )
        floors: List[str] = []
        positions: List[np.ndarray] = []
        scans: List[np.ndarray] = []
        for t in times:
            fid, xy = plan.locate(float(t))
            floors.append(fid)
            positions.append(xy)
            scans.append(dataset.channels[fid].measure(xy, rng).rssi)
        walks.append(
            Walk(
                venue=dataset.name,
                times=times.copy(),
                positions=np.stack(positions),
                scans=np.stack(scans),
                floors=np.array(floors, dtype=object),
            )
        )
    return walks


@dataclass
class TrackingReport:
    """Accuracy/throughput summary of one tracked fleet replay.

    ``floor_accuracy`` is the fraction of stepped scans whose
    session sat on the ground-truth floor (``None`` on single-floor
    replays — floors aren't in play).
    """

    scenario: TrackingScenario
    venue: str
    devices: int
    steps: int
    raw_rmse: float
    tracked_rmse: float
    improvement: float
    elapsed: float
    rejected: int
    clamped: int
    floor_accuracy: Optional[float] = None

    @property
    def steps_per_second(self) -> float:
        return self.steps / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        out = (
            f"{self.scenario.name:>10} {self.venue}: "
            f"{self.devices} devices x "
            f"{self.steps // max(self.devices, 1)} scans | "
            f"per-scan RMSE {self.raw_rmse:.2f}m -> tracked "
            f"{self.tracked_rmse:.2f}m "
            f"({100 * self.improvement:+.0f}%) | "
            f"{self.steps_per_second:.0f} steps/s | "
            f"fixes rejected={self.rejected} clamped={self.clamped}"
        )
        if self.floor_accuracy is not None:
            out += f" | floor accuracy {100 * self.floor_accuracy:.1f}%"
        return out


def replay_walks(
    tracking: TrackingService,
    walks: Sequence[Walk],
    scenario: TrackingScenario,
) -> TrackingReport:
    """Drive a simulated fleet through the tracking service.

    Sessions open on each walk's first scan; every later tick
    advances the whole fleet with one ``step_batch``.  Scoring spans
    the *stepped* ticks (the first fix is identical on both sides by
    construction — the tracker starts at it).
    """
    if not walks:
        raise TrackingError("no walks to replay")
    n_steps = min(len(w) for w in walks)
    if n_steps < 2:
        raise TrackingError("walks need at least two scans")
    venue = walks[0].venue
    t_start = time.perf_counter()
    sids = tracking.start_batch(
        [w.venue for w in walks],
        [w.scans[0] for w in walks],
        times=[float(w.times[0]) for w in walks],
    )
    raw_rows: List[np.ndarray] = []
    tracked_rows: List[np.ndarray] = []
    truth_rows: List[np.ndarray] = []
    rejected = clamped = 0
    floor_hits = floor_total = 0
    for k in range(1, n_steps):
        batch = tracking.step_batch(
            sids,
            [w.scans[k] for w in walks],
            times=[float(w.times[k]) for w in walks],
        )
        raw_rows.append(batch.raw)
        tracked_rows.append(batch.positions)
        truth_rows.append(np.stack([w.positions[k] for w in walks]))
        rejected += int((~batch.accepted).sum())
        clamped += int(batch.clamped.sum())
        if batch.floors:
            for j, walk in enumerate(walks):
                if walk.floors is not None:
                    floor_total += 1
                    floor_hits += int(
                        batch.floors[j] == walk.floors[k]
                    )
    elapsed = time.perf_counter() - t_start
    for sid in sids:
        tracking.end(sid)
    raw = np.concatenate(raw_rows)
    tracked = np.concatenate(tracked_rows)
    truth = np.concatenate(truth_rows)
    return TrackingReport(
        scenario=scenario,
        venue=venue,
        devices=len(walks),
        steps=len(walks) * (n_steps - 1),
        raw_rmse=trajectory_rmse(raw, truth),
        tracked_rmse=trajectory_rmse(tracked, truth),
        improvement=tracking_improvement(raw, tracked, truth),
        elapsed=elapsed,
        rejected=rejected,
        clamped=clamped,
        floor_accuracy=(
            floor_hits / floor_total if floor_total else None
        ),
    )


def run(
    config: ExperimentConfig,
    *,
    venue: str = "kaide",
    scenario: Optional[TrackingScenario] = None,
    motion: Optional[MotionConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Deploy a venue, replay a tracked fleet, score the gain.

    The venue deploys on the instant mean-fill WKNN path with the
    per-scan cache disabled (sequential scans of a moving phone never
    repeat, and the raw-fix baseline should pay full price per scan),
    and its hallway polygons register as the walkable constraint.
    ``seed`` drives the walks — same seed, same fleet.
    """
    scenario = scenario or DEFAULT_TRACKING_SCENARIO
    base_seed = config.dataset_seed if seed is None else int(seed)
    dataset = get_dataset(venue, config)
    positioning = PositioningService(cache_size=0)
    positioning.deploy(
        venue,
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        estimator=WKNNEstimator(),
    )
    tracking = TrackingService(positioning, motion=motion)
    tracking.register_walkable(
        venue, MultiPolygon(dataset.venue.plan.hallways)
    )
    walks = simulate_walks(dataset, scenario, base_seed + 31)
    report = replay_walks(tracking, walks, scenario)
    stats = tracking.stats
    lines = [
        f"venue: {venue} | {scenario.devices} devices, scan every "
        f"{scenario.scan_interval}s for {scenario.duration}s | "
        f"seed {base_seed}",
        report.render(),
        stats.render(),
    ]
    return ExperimentResult(
        experiment_id="Trajectory tracking",
        rendered="\n".join(lines),
        data={
            "venue": venue,
            "devices": report.devices,
            "steps": report.steps,
            "raw_rmse": report.raw_rmse,
            "tracked_rmse": report.tracked_rmse,
            "improvement": report.improvement,
            "steps_per_second": report.steps_per_second,
            "rejected": report.rejected,
            "clamped": report.clamped,
            "seed": base_seed,
        },
    )


def run_multifloor(
    config: ExperimentConfig,
    *,
    venue: str = "kaide",
    n_floors: int = 2,
    scale: float = 0.35,
    scenario: Optional[TrackingScenario] = None,
    motion: Optional[MotionConfig] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Deploy a stacked venue, replay a portal-crossing fleet, score.

    The full floor-aware stack in one run: per-floor shards behind a
    floor classifier (:func:`~repro.serving.deploy_floors`), per-floor
    walkable constraints plus the portal hand-off model
    (:meth:`~repro.tracking.TrackingService.register_floors`), and a
    fleet whose every device rides a portal mid-walk.  Scores floor
    accuracy and tracked-vs-per-scan RMSE across the transitions —
    the numbers ``BENCH_multifloor.json`` gates on.
    """
    scenario = scenario or TrackingScenario(
        name="multifloor", duration=90.0
    )
    base_seed = config.dataset_seed if seed is None else int(seed)
    dataset = make_multifloor_dataset(
        venue, n_floors=n_floors, scale=scale, seed=base_seed
    )
    positioning = PositioningService(cache_size=0)
    deploy_floors(
        positioning,
        dataset.venue,
        dataset.radio_maps,
        lambda floor: TopoACDifferentiator(
            entities=floor.plan.entities
        ),
        estimator_factory=WKNNEstimator,
    )
    tracking = TrackingService(positioning, motion=motion)
    tracking.register_floors(dataset.venue)
    walks = simulate_multifloor_walks(
        dataset, scenario, base_seed + 31
    )
    report = replay_walks(tracking, walks, scenario)
    stats = tracking.stats
    lines = [
        f"venue: {venue} x {n_floors} floors | "
        f"{scenario.devices} devices, scan every "
        f"{scenario.scan_interval}s for {scenario.duration}s | "
        f"seed {base_seed}",
        dataset.venue.describe(),
        report.render(),
        stats.render(),
    ]
    return ExperimentResult(
        experiment_id="Multi-floor tracking",
        rendered="\n".join(lines),
        data={
            "venue": venue,
            "n_floors": n_floors,
            "devices": report.devices,
            "steps": report.steps,
            "raw_rmse": report.raw_rmse,
            "tracked_rmse": report.tracked_rmse,
            "improvement": report.improvement,
            "floor_accuracy": report.floor_accuracy,
            "floor_switches": stats.floor_switches,
            "floor_rejections": stats.floor_rejections,
            "floor_reanchors": stats.floor_reanchors,
            "steps_per_second": report.steps_per_second,
            "rejected": report.rejected,
            "clamped": report.clamped,
            "seed": base_seed,
        },
    )
