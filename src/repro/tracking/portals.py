"""Portal-aware floor transitions for tracked sessions.

A stacked venue's floors are disjoint 2D worlds — a track living on
``"kaide/f1"`` cannot smoothly Kalman-step onto ``"kaide/f2"``,
because the 40-metre "jump" from the elevator lobby on one floor to
the same lobby on the next would fail the innovation gate and the
track would coast forever while the device rides upward.  The venue
model knows better: floors connect only at
:class:`~repro.venue.Portal` footprints (stairs, elevators), so a
floor change is legal exactly when the track is standing at a portal
that reaches the classified floor.

:class:`PortalMap` is the tracking layer's index over a venue's
portals: given *where the track is* and *which floor the scans now
say*, :meth:`PortalMap.handoff` answers with the matching portal's
exit point on the new floor — the position the track re-anchors at —
or ``None`` when no portal is in reach (an off-floor misclassification
to reject, not a traversal).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..venue.multifloor import Portal, Venue

__all__ = ["PortalMap"]


class PortalMap:
    """Floor-pair → portals index of one stacked venue.

    Built once per venue at registration time
    (:meth:`~repro.tracking.TrackingService.register_floors`); lookup
    is a dict hit plus a few norms over the handful of portals
    connecting a floor pair.
    """

    def __init__(self, portals: Sequence[Portal]):
        self._by_pair: Dict[
            Tuple[str, str], List[Portal]
        ] = {}
        for portal in portals:
            for a, b in (
                (portal.floor_a, portal.floor_b),
                (portal.floor_b, portal.floor_a),
            ):
                self._by_pair.setdefault((a, b), []).append(portal)

    @classmethod
    def from_venue(cls, venue: Venue) -> "PortalMap":
        return cls(venue.portals)

    def __len__(self) -> int:
        # Each portal indexes under both directions.
        return sum(len(v) for v in self._by_pair.values()) // 2

    def connects(self, floor_a: str, floor_b: str) -> bool:
        """Whether any portal directly joins the two floors."""
        return (floor_a, floor_b) in self._by_pair

    def portals_between(
        self, floor_a: str, floor_b: str
    ) -> List[Portal]:
        return list(self._by_pair.get((floor_a, floor_b), []))

    def handoff(
        self,
        from_floor: str,
        to_floor: str,
        position: np.ndarray,
        *,
        radius: float,
    ) -> Optional[np.ndarray]:
        """Exit point on ``to_floor`` if a portal is within reach.

        Scans the portals joining the floor pair for the one whose
        entry point on ``from_floor`` lies within ``radius`` metres of
        the track ``position``; returns that portal's exit point on
        ``to_floor`` (the position the handed-off track starts from),
        or ``None`` when the track is nowhere near a way up or down.
        """
        pos = np.asarray(position, dtype=float)
        best: Optional[np.ndarray] = None
        best_d = float(radius)
        for portal in self._by_pair.get((from_floor, to_floor), ()):
            entry = portal.endpoint(from_floor)
            d = float(np.linalg.norm(pos - entry))
            if d <= best_d:
                best = portal.endpoint(to_floor)
                best_d = d
        return best

    def arrival(
        self,
        from_floor: str,
        to_floor: str,
        fix: np.ndarray,
        *,
        radius: float,
    ) -> Optional[np.ndarray]:
        """Exit point on ``to_floor`` if a *fix there* is within reach.

        The complement of :meth:`handoff` for when the track side is
        ambiguous: a Kalman track lags the device by its smoothing
        horizon, so at the moment the first next-floor scan arrives
        the track may still sit several metres short of the portal
        entry.  The scan's own position fix — already resolved on
        ``to_floor`` — is independent evidence: a device that just
        stepped out of an elevator fixes right at its exit.  Returns
        the closest joining portal's exit point on ``to_floor`` within
        ``radius`` metres of ``fix``, or ``None``.
        """
        pos = np.asarray(fix, dtype=float)
        best: Optional[np.ndarray] = None
        best_d = float(radius)
        for portal in self._by_pair.get((from_floor, to_floor), ()):
            exit_xy = portal.endpoint(to_floor)
            d = float(np.linalg.norm(pos - exit_xy))
            if d <= best_d:
                best = exit_xy
                best_d = d
        return best
