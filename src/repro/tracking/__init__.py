"""Trajectory tracking subsystem: stateful session positioning with
motion-model fusion.

Everything below the serving layer answers one-shot scans; production
traffic is millions of phones each emitting a *sequence* of
correlated scans while walking a venue.  This package fuses the
per-scan fixes with a constant-velocity motion model:

* :class:`Tracker` / :class:`TrackerBank` — the constant-velocity
  Kalman filter, as a single-session object and as a vectorized bank
  whose ``step_batch`` advances thousands of sessions with batched
  numpy (bit-identical to stepping each session alone);
* :class:`WalkableConstraint` — clamps (or rejects) fused positions
  that leave the venue's walkable
  :class:`~repro.geometry.Polygon`/:class:`~repro.geometry.MultiPolygon`;
* :class:`TrackingService` — the session create/step/end API layered
  on :class:`~repro.serving.PositioningService`, with a thread-safe
  session store (TTL + max-sessions eviction) that survives shard
  ``reload``/``apply_delta`` hot swaps;
* :mod:`repro.tracking.loadgen` — the ``python -m repro track``
  workload: correlated scan sequences generated from survey
  kinematics, replayed in lockstep and scored as tracked-vs-per-scan
  RMSE;
* :func:`~repro.metrics.trajectory_rmse` /
  :func:`~repro.metrics.tracking_improvement` (in
  :mod:`repro.metrics`) — the headline accuracy numbers.

See ``examples/trajectory_tracking.py`` for an end-to-end demo and
``benchmarks/bench_tracking.py`` for the acceptance numbers.
"""

from .constraint import WalkableConstraint
from .kalman import (
    MotionConfig,
    StepResult,
    Tracker,
    TrackerBank,
    kalman_predict,
    kalman_update,
)
from .loadgen import (
    DEFAULT_TRACKING_SCENARIO,
    TrackingReport,
    TrackingScenario,
    Walk,
    replay_walks,
    simulate_multifloor_walks,
    simulate_walks,
)
from .portals import PortalMap
from .service import (
    SessionSummary,
    TrackedBatch,
    TrackedFix,
    TrackingService,
    TrackingStats,
)

__all__ = [
    "DEFAULT_TRACKING_SCENARIO",
    "MotionConfig",
    "PortalMap",
    "SessionSummary",
    "StepResult",
    "TrackedBatch",
    "TrackedFix",
    "Tracker",
    "TrackerBank",
    "TrackingReport",
    "TrackingScenario",
    "TrackingService",
    "TrackingStats",
    "Walk",
    "WalkableConstraint",
    "kalman_predict",
    "kalman_update",
    "replay_walks",
    "simulate_multifloor_walks",
    "simulate_walks",
]
