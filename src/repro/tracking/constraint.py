"""Walkable-area constraint for tracked positions.

The venue's walkable area — corridor polygons, or any
:class:`~repro.geometry.Polygon` / :class:`~repro.geometry.MultiPolygon`
— is a hard prior the motion model should respect: phones do not walk
through store walls.  :class:`WalkableConstraint` post-processes each
Kalman step:

* ``"clamp"`` (default) — a fused position landing outside the
  walkable area is pulled to the nearest point of the walkable
  boundary (velocity and covariance are kept, so the track keeps its
  heading);
* ``"reject"`` — the fix is discarded instead: the track reverts to
  its motion prediction (``accepted`` comes back False), and only if
  the prediction itself has drifted off the walkable area is *that*
  clamped.

All tests run through the vectorised
:meth:`Polygon.contains_points` / :meth:`MultiPolygon.contains_points`
(boundary points count as walkable), and the nearest-boundary
projection is one batched pass over the walkable edge set — per-row
independent arithmetic, preserving the tracker's step/step_batch
bit-parity contract.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..exceptions import TrackingError
from ..geometry import MultiPolygon, Polygon

Walkable = Union[Polygon, MultiPolygon]

#: Constraint policies for out-of-area positions.
MODES = ("clamp", "reject")


class WalkableConstraint:
    """Keeps tracked positions on a venue's walkable geometry."""

    def __init__(self, walkable: Walkable, mode: str = "clamp"):
        if mode not in MODES:
            raise TrackingError(
                f"constraint mode must be one of {MODES}, got {mode!r}"
            )
        if isinstance(walkable, Polygon):
            walkable = MultiPolygon([walkable])
        if not isinstance(walkable, MultiPolygon) or not len(walkable):
            raise TrackingError(
                "walkable area must be a Polygon or a non-empty "
                "MultiPolygon"
            )
        self.walkable = walkable
        self.mode = mode
        starts, ends = walkable.edge_arrays()
        self._starts = starts
        self._vecs = ends - starts
        self._len2 = np.maximum(
            (self._vecs**2).sum(axis=1), 1e-12
        )

    def inside(self, points: np.ndarray) -> np.ndarray:
        """``(n,)`` booleans: on or within the walkable area."""
        return self.walkable.contains_points(points, boundary=True)

    def nearest(self, points: np.ndarray) -> np.ndarray:
        """Nearest point of the walkable *boundary* to each point.

        One batched projection of every point onto every walkable
        edge; ``(n, 2)`` in → ``(n, 2)`` out.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        d = pts[:, None, :] - self._starts[None, :, :]
        t = np.clip(
            (d * self._vecs[None, :, :]).sum(axis=2) / self._len2,
            0.0,
            1.0,
        )
        proj = (
            self._starts[None, :, :]
            + t[:, :, None] * self._vecs[None, :, :]
        )
        dist2 = ((pts[:, None, :] - proj) ** 2).sum(axis=2)
        best = np.argmin(dist2, axis=1)
        return proj[np.arange(pts.shape[0]), best]

    def constrain(
        self,
        x_pred: np.ndarray,
        P_pred: np.ndarray,
        x_fused: np.ndarray,
        P_fused: np.ndarray,
        accepted: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Apply the policy to one step's fused states.

        Returns ``(x, P, accepted, clamped)``; rows already inside
        pass through untouched.
        """
        outside = ~self.inside(x_fused[:, :2])
        clamped = np.zeros(outside.shape[0], dtype=bool)
        if not outside.any():
            return x_fused, P_fused, accepted, clamped
        if self.mode == "reject":
            x = np.where(outside[:, None], x_pred, x_fused)
            P = np.where(outside[:, None, None], P_pred, P_fused)
            accepted = accepted & ~outside
            stray = outside & ~self.inside(x[:, :2])
            if stray.any():
                x[stray, :2] = self.nearest(x[stray, :2])
                clamped = stray
            return x, P, accepted, clamped
        x = x_fused.copy()
        x[outside, :2] = self.nearest(x_fused[outside, :2])
        return x, P_fused, accepted, outside
