"""Per-request tracing: spans, sampled retention, slow-query log.

A :class:`Span` is one timed stage of one request — trace id, stage
name, start, duration, child spans.  The serving layers thread spans
through the request path (``ServingPipeline.submit`` →
``PositioningService.query_batch`` → ``VenueShard.locate`` → the
spatial-index kernel stages timed by ``KERNEL_STATS``), so a retained
trace answers "where did this query spend its time" stage by stage.

Tracing every request would cost more than it tells, so the
:class:`Tracer` samples **deterministically**: one trace in every
``sample_every`` sampling decisions (``1`` traces everything — what
the CI smoke uses; ``0`` disables).  Determinism keeps tests and
benchmarks replayable — no RNG on the serve path.

Finished root spans land in two bounded deques: recent traces
(``keep``) and the **slow-query log** (``keep_slow``) for roots whose
duration crossed ``slow_ms`` — the full span tree is kept, so a slow
query's breakdown survives until an operator exports it.

The active span is tracked per thread; :meth:`Tracer.activate` hands
a span across threads (the pipeline's submit thread opens the root,
the flusher thread serves under it).  Fleet workers drain finished
spans as plain dicts (:meth:`Tracer.drain`) and ship them over their
pipes next to the metric deltas.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from threading import RLock, local
from typing import Dict, Iterator, List, Optional, Set

__all__ = ["Span", "Tracer"]


class Span:
    """One timed stage of one trace; children nest beneath it.

    A span may be attached as a child of several roots (a batched
    serve is shared by every request in the batch) — the tree is
    read-only after finish, so sharing is safe and ``to_dict``
    simply duplicates the shared subtree per parent.
    """

    __slots__ = (
        "trace_id", "name", "start", "duration", "children", "meta"
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        start: float = 0.0,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.name = name
        self.start = start
        self.duration = 0.0
        self.children: List["Span"] = []
        self.meta = meta

    def child(
        self,
        name: str,
        *,
        duration: float = 0.0,
        meta: Optional[Dict[str, object]] = None,
    ) -> "Span":
        """Attach and return a pre-timed child (for stages whose
        duration is known only after the fact, like kernel stages
        reconstructed from ``KERNEL_STATS`` deltas)."""
        span = Span(self.trace_id, name, start=self.start, meta=meta)
        span.duration = duration
        self.children.append(span)
        return span

    def stage_names(self) -> Set[str]:
        """Every stage name in this tree (for coverage asserts)."""
        names = {self.name}
        for c in self.children:
            names |= c.stage_names()
        return names

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "trace_id": self.trace_id,
            "name": self.name,
            "duration_ms": self.duration * 1e3,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def render(self, indent: int = 0) -> str:
        lines = [
            f"{'  ' * indent}{self.name:<24s} "
            f"{self.duration * 1e3:8.3f}ms"
            + (f"  {self.meta}" if self.meta else "")
        ]
        for c in self.children:
            lines.append(c.render(indent + 1))
        return "\n".join(lines)


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullContext()


class Tracer:
    """Deterministic 1-in-N span sampler with bounded retention."""

    def __init__(
        self,
        *,
        sample_every: int = 64,
        slow_ms: Optional[float] = None,
        keep: int = 64,
        keep_slow: int = 32,
    ) -> None:
        self.sample_every = int(sample_every)
        self.slow_ms = slow_ms
        self._lock = RLock()
        self._tls = local()
        self._decisions = 0
        self._seq = 0
        self._traces: deque = deque(maxlen=keep)
        self._slow: deque = deque(maxlen=keep_slow)

    # -- sampling + span construction ------------------------------

    def sample(self) -> bool:
        """One sampling decision: the 1st, (N+1)th, … of every
        ``sample_every`` calls returns True."""
        if self.sample_every <= 0:
            return False
        if self.sample_every == 1:
            return True
        with self._lock:
            n = self._decisions
            self._decisions = n + 1
            return n % self.sample_every == 0

    def start(
        self, name: str, meta: Optional[Dict[str, object]] = None
    ) -> Span:
        """Open a root span (caller gates with :meth:`sample`)."""
        with self._lock:
            self._seq += 1
            trace_id = f"t{self._seq:08d}"
        return Span(
            trace_id, name, start=time.perf_counter(), meta=meta
        )

    def finish(self, span: Span) -> None:
        """Stamp the root's duration and retain it (slow log too if
        over the threshold)."""
        if span.duration == 0.0:
            span.duration = time.perf_counter() - span.start
        with self._lock:
            self._traces.append(span)
            if (
                self.slow_ms is not None
                and span.duration * 1e3 >= self.slow_ms
            ):
                self._slow.append(span)

    # -- active-span threading -------------------------------------

    def current(self) -> Optional[Span]:
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the calling thread's active span — the
        cross-thread handoff (submit thread opens, flusher serves)."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    @contextmanager
    def trace(
        self, name: str, meta: Optional[Dict[str, object]] = None
    ) -> Iterator[Span]:
        """Open, activate, time and retain a root span."""
        span = self.start(name, meta)
        try:
            with self.activate(span):
                yield span
        finally:
            self.finish(span)

    def span(
        self, name: str, meta: Optional[Dict[str, object]] = None
    ):
        """Context manager for a child of the current active span;
        a no-op (yielding ``None``) when no span is active."""
        if self.current() is None:
            return _NULL
        return self._child_span(name, meta)

    @contextmanager
    def _child_span(
        self, name: str, meta: Optional[Dict[str, object]]
    ) -> Iterator[Span]:
        parent = self.current()
        child = Span(
            parent.trace_id,
            name,
            start=time.perf_counter(),
            meta=meta,
        )
        parent.children.append(child)
        stack = self._tls.stack
        stack.append(child)
        try:
            yield child
        finally:
            child.duration = time.perf_counter() - child.start
            stack.pop()

    # -- retention accessors ---------------------------------------

    def traces(self) -> List[Span]:
        with self._lock:
            return list(self._traces)

    def slow_queries(self) -> List[Span]:
        with self._lock:
            return list(self._slow)

    def drain(self) -> Dict[str, List[Dict[str, object]]]:
        """Retained traces as plain dicts, clearing the deques —
        the picklable span payload fleet workers ship each tick."""
        with self._lock:
            out = {
                "spans": [s.to_dict() for s in self._traces],
                "slow": [s.to_dict() for s in self._slow],
            }
            self._traces.clear()
            self._slow.clear()
            return out

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._slow.clear()
