"""Shared latency-percentile helpers.

``serving/fleetbench.py`` and ``serving/loadgen.py`` each used to
hand-roll p50/p95/p99 from raw latency arrays; this is the one
implementation both now call.  Where a registry histogram is present,
:func:`histogram_percentiles_ms` derives the same percentiles from
live bucket counts — within one bucket width
(:data:`~repro.obs.metrics.BUCKET_FACTOR`) of the exact order
statistic, which is the acceptance contract the telemetry tests pin.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .metrics import Histogram, histogram_quantile

__all__ = ["percentiles_ms", "histogram_percentiles_ms"]

#: The percentiles every serving report quotes.
PERCENTILES = (50, 95, 99)


def percentiles_ms(
    latencies_s: Sequence[float],
    percentiles: Sequence[int] = PERCENTILES,
) -> Dict[str, float]:
    """Exact percentiles of raw latencies (seconds in, ms out).

    Empty input yields all-zero percentiles, matching the legacy
    behaviour of both former call sites.
    """
    lat_ms = 1e3 * np.asarray(
        latencies_s if len(latencies_s) else [0.0], dtype=np.float64
    )
    return {
        f"p{p}_ms": float(np.percentile(lat_ms, p))
        for p in percentiles
    }


def histogram_percentiles_ms(
    hist: Histogram,
    percentiles: Sequence[int] = PERCENTILES,
) -> Dict[str, float]:
    """Live percentiles from a latency histogram's bucket counts."""
    bounds = hist.bounds
    counts = hist.counts
    return {
        f"p{p}_ms": 1e3 * histogram_quantile(bounds, counts, p / 100)
        for p in percentiles
    }
