"""Streaming metrics: counters, gauges, and log-bucket histograms.

The serving stack's stats objects (``ServiceStats``, ``WorkerStats``,
…) all follow the same discipline: accumulate locally while computing,
publish in one critical section, snapshot under that same lock.  This
module factors that discipline into reusable metric primitives so the
legacy dataclasses can become thin *views* over one shared
:class:`MetricsRegistry` — and so live latency distributions exist on
the server, not just in the offline load generator.

Write-path design (the part that must stay off the profile):

* :class:`Counter` and :class:`Histogram` accumulate into
  **per-thread cells** — plain objects owned by exactly one writer
  thread, appended to the metric's cell list (under the registry
  lock) only on each thread's first touch.  The hot ``add``/``record``
  is then an unsynchronised read-modify-write of thread-private state:
  no lock, no contention, no false sharing.
* Readers merge the cells.  A merge can miss a write that is still
  in flight (the value is *stale*, bounded by one increment) but can
  never observe a torn multi-field invariant **within** one metric:
  a histogram's count is *derived* from its bucket counts
  (``counts.sum()``), so "sum of buckets == records observed" holds
  by construction in every snapshot.
* Cross-**metric** atomicity (e.g. ``queries == hits + misses``) is
  the caller's contract, exactly as before: services mutate their
  counters under their existing service lock and build their stats
  view under that same lock.  The registry does not impose a global
  ordering it cannot cheaply provide.

``reset()`` and ``drain()`` are watermark-based: cells are never
zeroed from a foreign thread (that would race the owner's
read-modify-write); instead the metric records the merged value at
reset/drain time and subtracts it.  Handles stay valid across resets.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..exceptions import ObservabilityError

__all__ = [
    "LATENCY_BUCKETS",
    "BUCKET_FACTOR",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Log-spaced latency bucket upper edges, in seconds: 8 buckets per
#: decade from 1 µs to 10 s (factor ``10 ** (1/8) ≈ 1.334`` between
#: adjacent edges).  Quantiles read from these buckets are therefore
#: within one bucket width (~33%) of the exact order statistic — tight
#: enough to rank p50/p95/p99 regressions, cheap enough to keep on the
#: serve path.  Values above 10 s land in a final overflow bucket.
LATENCY_BUCKETS = tuple(
    float(v) for v in 10.0 ** (np.arange(-48, 9) / 8.0)
)

#: Multiplicative width of one latency bucket.
BUCKET_FACTOR = float(10.0 ** (1.0 / 8.0))


def render_key(name: str, labels: Dict[str, str]) -> str:
    """``name{k="v",…}`` with sorted label keys — the registry key."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{labels[k]}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`render_key` (labels must not contain ``","``)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v.strip('"')
    return name, labels


class _CounterCell:
    """One thread's private accumulator for one counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _HistogramCell:
    """One thread's private bucket counts + value sum."""

    __slots__ = ("counts", "total")

    def __init__(self, n_buckets: int) -> None:
        self.counts = np.zeros(n_buckets, dtype=np.int64)
        self.total = 0.0


class Counter:
    """Monotone sum with per-thread accumulation cells.

    ``add`` is wait-free after a thread's first touch; ``value``
    merges the cells (stale by at most the writes still in flight,
    never torn below the float level).  Created via
    :meth:`MetricsRegistry.counter`.
    """

    __slots__ = (
        "name", "labels", "_lock", "_tls", "_cells",
        "_offset", "_drained",
    )

    def __init__(
        self, name: str, labels: Dict[str, str], lock: threading.RLock
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = lock
        self._tls = threading.local()
        self._cells: List[_CounterCell] = []
        self._offset = 0.0   # merged value at last reset()
        self._drained = 0.0  # merged value at last drain()

    def add(self, n: float = 1.0) -> None:
        tls = self._tls
        cell = getattr(tls, "cell", None)
        if cell is None:
            cell = _CounterCell()
            with self._lock:
                self._cells.append(cell)
            tls.cell = cell
        cell.value += n

    def _raw(self) -> float:
        return sum(cell.value for cell in self._cells)

    @property
    def value(self) -> float:
        with self._lock:
            return self._raw() - self._offset

    def reset(self) -> None:
        with self._lock:
            raw = self._raw()
            self._offset = raw
            self._drained = raw

    def drain(self) -> float:
        """Value accumulated since the last drain (for delta export)."""
        with self._lock:
            raw = self._raw()
            delta = raw - self._drained
            self._drained = raw
            return delta


class Gauge:
    """A point-in-time value (bytes resident, venues known, …).

    Gauge updates are rare (load/evict events, snapshot syncs), so
    they simply take the registry lock — no cell machinery.
    """

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(
        self, name: str, labels: Dict[str, str], lock: threading.RLock
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)

    def drain(self) -> float:
        """Gauges export their *current* value, not a delta."""
        return self.value


class Histogram:
    """Fixed-bucket streaming histogram with per-thread cells.

    ``bounds`` are ascending bucket *upper* edges; a value ``v`` lands
    in the first bucket with ``v <= bound`` (one trailing overflow
    bucket catches the rest), so ``record`` is one ``searchsorted``
    plus two thread-private increments.  ``count`` is derived from the
    bucket counts, so no snapshot can ever show a count that
    disagrees with its buckets.
    """

    __slots__ = (
        "name", "labels", "_lock", "_tls", "_cells",
        "_bounds", "_nb",
        "_offset_counts", "_offset_total",
        "_drained_counts", "_drained_total",
    )

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        lock: threading.RLock,
        bounds: Iterable[float],
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = lock
        self._tls = threading.local()
        self._cells: List[_HistogramCell] = []
        self._bounds = np.asarray(tuple(bounds), dtype=np.float64)
        if self._bounds.ndim != 1 or self._bounds.size == 0:
            raise ObservabilityError(
                f"histogram {name!r}: bounds must be a non-empty "
                "1-D sequence"
            )
        if np.any(np.diff(self._bounds) <= 0):
            raise ObservabilityError(
                f"histogram {name!r}: bounds must be strictly "
                "increasing"
            )
        self._nb = self._bounds.size + 1  # + overflow bucket
        self._offset_counts = np.zeros(self._nb, dtype=np.int64)
        self._offset_total = 0.0
        self._drained_counts = np.zeros(self._nb, dtype=np.int64)
        self._drained_total = 0.0

    @property
    def bounds(self) -> np.ndarray:
        return self._bounds.copy()

    def _cell(self) -> _HistogramCell:
        tls = self._tls
        cell = getattr(tls, "cell", None)
        if cell is None:
            cell = _HistogramCell(self._nb)
            with self._lock:
                self._cells.append(cell)
            tls.cell = cell
        return cell

    def record(self, value: float) -> None:
        cell = self._cell()
        idx = int(self._bounds.searchsorted(value, side="left"))
        cell.counts[idx] += 1
        cell.total += value

    def record_n(self, value: float, n: int) -> None:
        """``n`` observations of the same value in one bump — for
        batch paths where every request in the batch saw the same
        wall-clock latency."""
        cell = self._cell()
        idx = int(self._bounds.searchsorted(value, side="left"))
        cell.counts[idx] += n
        cell.total += value * n

    def record_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        cell = self._cell()
        idx = self._bounds.searchsorted(values, side="left")
        np.add.at(cell.counts, idx, 1)
        cell.total += float(values.sum())

    def _raw(self) -> Tuple[np.ndarray, float]:
        counts = np.zeros(self._nb, dtype=np.int64)
        total = 0.0
        for cell in self._cells:
            counts += cell.counts
            total += cell.total
        return counts, total

    @property
    def counts(self) -> np.ndarray:
        with self._lock:
            counts, _ = self._raw()
            return counts - self._offset_counts

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def total(self) -> float:
        with self._lock:
            _, total = self._raw()
            return total - self._offset_total

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-quantile
        (``q`` in [0, 1]) — within one bucket width of exact."""
        return histogram_quantile(self._bounds, self.counts, q)

    def reset(self) -> None:
        with self._lock:
            counts, total = self._raw()
            self._offset_counts = counts
            self._offset_total = total
            self._drained_counts = counts.copy()
            self._drained_total = total

    def drain(self) -> Optional[Dict[str, object]]:
        """Bucket-count delta since the last drain, or ``None`` if
        nothing was recorded in the interval."""
        with self._lock:
            counts, total = self._raw()
            delta = counts - self._drained_counts
            dtotal = total - self._drained_total
            self._drained_counts = counts
            self._drained_total = total
            if not delta.any():
                return None
            return {
                "bounds": self._bounds.tolist(),
                "counts": delta.tolist(),
                "total": float(dtotal),
            }

    def merge_counts(self, counts: np.ndarray, total: float) -> None:
        """Fold a drained delta from another registry (e.g. a fleet
        worker) into the calling thread's cell."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size != self._nb:
            raise ObservabilityError(
                f"histogram {self.name!r}: cannot merge "
                f"{counts.size} buckets into {self._nb}"
            )
        cell = self._cell()
        cell.counts += counts
        cell.total += float(total)

    def snapshot_dict(self) -> Dict[str, object]:
        with self._lock:
            counts, total = self._raw()
            return {
                "bounds": self._bounds.tolist(),
                "counts": (counts - self._offset_counts).tolist(),
                "total": float(total - self._offset_total),
            }


def histogram_quantile(
    bounds: np.ndarray, counts: np.ndarray, q: float
) -> float:
    """Prometheus-style quantile: the upper edge of the bucket where
    the cumulative count first reaches ``q * total``.

    Returns 0.0 for an empty histogram and clamps the overflow bucket
    to the top edge (the histogram cannot see past its last bound).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    cum = np.cumsum(counts)
    idx = int(cum.searchsorted(q * total, side="left"))
    bounds = np.asarray(bounds, dtype=np.float64)
    if idx >= bounds.size:
        return float(bounds[-1])
    return float(bounds[idx])


class MetricsRegistry:
    """Named metrics, keyed by ``name{labels}``, with atomic-enough
    snapshot / delta-drain / merge / reset.

    One registry per service (or per fleet worker); fleet workers
    :meth:`drain` deltas over their pipes each tick and the parent
    :meth:`merge`\\ s them into one fleet view.  ``snapshot()``
    returns a plain JSON-able dict — the input shape the exporters in
    :mod:`repro.obs.export` render.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, object] = {}

    @property
    def lock(self) -> threading.RLock:
        return self._lock

    def _get(self, cls, name: str, labels: Dict[str, str], **kw):
        key = render_key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, self._lock, **kw)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ObservabilityError(
                    f"metric {key!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        if bounds is None:
            bounds = LATENCY_BUCKETS
        return self._get(Histogram, name, labels, bounds=bounds)

    def get(self, key: str):
        """Look up an existing metric by rendered key, or ``None``."""
        with self._lock:
            return self._metrics.get(key)

    def labelled(
        self, name: str
    ) -> List[Tuple[Dict[str, str], object]]:
        """All metrics sharing ``name`` (any labels)."""
        with self._lock:
            return [
                (m.labels, m)
                for m in self._metrics.values()
                if m.name == name
            ]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-able snapshot of every metric.

        Per-metric consistency is guaranteed (a histogram's count is
        its bucket sum); cross-metric consistency holds exactly when
        the mutators serialise under one external lock, as the
        serving stats views do.
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        with self._lock:
            for key, metric in sorted(self._metrics.items()):
                if isinstance(metric, Counter):
                    out["counters"][key] = metric.value
                elif isinstance(metric, Gauge):
                    out["gauges"][key] = metric.value
                else:
                    out["histograms"][key] = metric.snapshot_dict()
        return out

    def drain(
        self, gauge_labels: Optional[Dict[str, str]] = None
    ) -> Dict[str, Dict[str, object]]:
        """Everything accumulated since the last drain, as a
        picklable delta dict for :meth:`merge`.

        Counters and histograms ship deltas (summable across
        sources); gauges ship absolute values, optionally re-labelled
        with ``gauge_labels`` (e.g. ``{"worker": "3"}``) so gauges
        from different sources never clobber each other last-wins.
        """
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        with self._lock:
            for key, metric in self._metrics.items():
                if isinstance(metric, Counter):
                    delta = metric.drain()
                    if delta:
                        out["counters"][key] = delta
                elif isinstance(metric, Gauge):
                    if gauge_labels:
                        labels = dict(metric.labels)
                        labels.update(gauge_labels)
                        key = render_key(metric.name, labels)
                    out["gauges"][key] = metric.value
                else:
                    delta = metric.drain()
                    if delta is not None:
                        out["histograms"][key] = delta
        return out

    def merge(self, delta: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`drain` payload into this registry."""
        for key, value in delta.get("counters", {}).items():
            name, labels = parse_key(key)
            self.counter(name, **labels).add(float(value))
        for key, value in delta.get("gauges", {}).items():
            name, labels = parse_key(key)
            self.gauge(name, **labels).set(float(value))
        for key, payload in delta.get("histograms", {}).items():
            name, labels = parse_key(key)
            hist = self.histogram(
                name, bounds=payload["bounds"], **labels
            )
            hist.merge_counts(
                np.asarray(payload["counts"], dtype=np.int64),
                float(payload["total"]),
            )

    def reset(self) -> None:
        """Zero every metric in place; existing handles stay valid."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()
