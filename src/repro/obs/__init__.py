"""Unified telemetry: streaming metrics, request tracing, exporters.

The serving stack's observability backbone.  Three pieces:

* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of named
  counters, gauges and fixed-bucket streaming histograms with
  lock-cheap per-thread accumulation; the six legacy stats
  dataclasses (``ServiceStats``, ``RegistryStats``, ``WorkerStats``,
  ``FleetStats``, ``TrackingStats``, ``KernelStats``) are thin views
  over these metrics.
* :mod:`~repro.obs.trace` — sampled per-request :class:`Span` trees
  threaded from pipeline submit down to the spatial-index kernel
  stages, plus a slow-query log.
* :mod:`~repro.obs.export` — JSON and Prometheus text renderers over
  registry snapshots, used by ``python -m repro obs`` and
  ``serve-bench --telemetry``.

:class:`Telemetry` bundles one registry and one tracer for threading
through service constructors; fleet workers drain metric/span deltas
over their pipes each tick and the parent merges them into one
fleet-wide view.
"""

from .metrics import (
    BUCKET_FACTOR,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
)
from .trace import Span, Tracer
from .telemetry import Telemetry
from .export import parse_prometheus, render_json, render_prometheus
from .quantiles import histogram_percentiles_ms, percentiles_ms

__all__ = [
    "BUCKET_FACTOR",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "histogram_quantile",
    "Span",
    "Tracer",
    "Telemetry",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "histogram_percentiles_ms",
    "percentiles_ms",
]
