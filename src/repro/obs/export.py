"""Exporters: registry snapshots → JSON text / Prometheus text.

Both exporters consume the plain dict produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (or a
:meth:`Telemetry.snapshot` bundle, which nests one under
``"metrics"``), so a snapshot taken on a fleet parent after merging
worker deltas renders the whole fleet in one shot.

The Prometheus rendering follows the text exposition format:

* counters  → ``repro_<name>_total{labels} value``
* gauges    → ``repro_<name>{labels} value``
* histograms → cumulative ``_bucket{le="…"}`` series plus ``_sum``
  and ``_count``, with the overflow bucket as ``le="+Inf"``.

Metric names are sanitised (``.`` → ``_``); a minimal
:func:`parse_prometheus` validates the output line-by-line so CI can
assert the export parses without a prometheus client dependency.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple

from ..exceptions import ObservabilityError
from .metrics import parse_key

__all__ = [
    "render_json",
    "render_prometheus",
    "parse_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: ``name{labels} value`` — the only sample shape we emit.
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[^{}]*\})?"
    r" ([0-9eE+.\-]+|[+-]?Inf|NaN)$"
)


def _prom_name(name: str, prefix: str = "repro") -> str:
    return f"{prefix}_{_NAME_OK.sub('_', name)}"


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{_NAME_OK.sub("_", k)}="{v}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_json(snapshot: Dict, *, indent: int = 2) -> str:
    """A registry (or telemetry) snapshot as deterministic JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def render_prometheus(snapshot: Dict) -> str:
    """Render a snapshot in Prometheus text exposition format.

    Accepts either a bare registry snapshot or a telemetry bundle
    carrying one under ``"metrics"``.
    """
    if "metrics" in snapshot and "counters" not in snapshot:
        snapshot = snapshot["metrics"]
    lines: List[str] = []

    for key in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][key]
        name, labels = parse_key(key)
        pname = _prom_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname}{_prom_labels(labels)} {value}")

    for key in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][key]
        name, labels = parse_key(key)
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname}{_prom_labels(labels)} {value}")

    for key in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][key]
        name, labels = parse_key(key)
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cum = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cum += int(count)
            le = _prom_labels(labels, f'le="{bound}"')
            lines.append(f"{pname}_bucket{le} {cum}")
        cum += int(payload["counts"][-1])
        le = _prom_labels(labels, 'le="+Inf"')
        lines.append(f"{pname}_bucket{le} {cum}")
        lab = _prom_labels(labels)
        lines.append(f"{pname}_sum{lab} {payload['total']}")
        lines.append(f"{pname}_count{lab} {cum}")

    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> List[Tuple[str, str, float]]:
    """Validate Prometheus text format, returning
    ``(name, labels_text, value)`` samples.

    Raises :class:`~repro.exceptions.ObservabilityError` on any line
    that is neither a comment nor a well-formed sample — the CI
    smoke's "does the export parse" assert.
    """
    samples: List[Tuple[str, str, float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ObservabilityError(
                f"prometheus line {lineno} does not parse: {line!r}"
            )
        name, labels, value = m.groups()
        samples.append((name, labels or "", float(value)))
    return samples
