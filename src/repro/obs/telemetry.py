"""The telemetry bundle services attach: one registry + one tracer.

A :class:`Telemetry` is what flows through constructor keywords
(``PositioningService(telemetry=…)``, ``ShardFleet(telemetry=…)``,
``loadgen.run(telemetry=…)``): the metrics registry the service binds
its counters/histograms to, the tracer that samples request spans,
and — on a fleet parent — the landing zone for span payloads shipped
back from worker processes (:meth:`ingest`).

:meth:`snapshot` bundles everything an exporter needs:
``{"metrics": …, "spans": […], "slow_queries": […]}``.
"""

from __future__ import annotations

from collections import deque
from threading import RLock
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """One registry + one tracer + remote-span intake."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        *,
        sample_every: int = 64,
        slow_ms: Optional[float] = None,
        keep_remote: int = 256,
    ) -> None:
        self.metrics = metrics if metrics is not None else (
            MetricsRegistry()
        )
        self.tracer = tracer if tracer is not None else Tracer(
            sample_every=sample_every, slow_ms=slow_ms
        )
        self._lock = RLock()
        self._remote_spans: deque = deque(maxlen=keep_remote)
        self._remote_slow: deque = deque(maxlen=keep_remote)

    def ingest(self, payload: Dict[str, object]) -> None:
        """Fold one worker delta (metrics + span dicts) into the
        fleet view — called by the parent's collector threads."""
        metrics = payload.get("metrics")
        if metrics:
            self.metrics.merge(metrics)
        spans = payload.get("spans")
        slow = payload.get("slow")
        if spans or slow:
            with self._lock:
                if spans:
                    self._remote_spans.extend(spans)
                if slow:
                    self._remote_slow.extend(slow)

    def spans(self) -> List[Dict[str, object]]:
        """Retained span trees as dicts: local tracer + remote."""
        out = [s.to_dict() for s in self.tracer.traces()]
        with self._lock:
            out.extend(self._remote_spans)
        return out

    def slow_queries(self) -> List[Dict[str, object]]:
        out = [s.to_dict() for s in self.tracer.slow_queries()]
        with self._lock:
            out.extend(self._remote_slow)
        return out

    def snapshot(self) -> Dict[str, object]:
        """JSON-able bundle for the exporters."""
        return {
            "metrics": self.metrics.snapshot(),
            "spans": self.spans(),
            "slow_queries": self.slow_queries(),
        }
