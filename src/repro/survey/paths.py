"""Survey-path planning over the hallway graph.

Surveyors walk predefined corridor paths (paper Fig. 2).  We plan paths
that jointly cover every hallway edge: a greedy edge-covering walk —
start somewhere, keep extending along unused edges, start a new path
when stuck.  Repeating the cover (``n_passes``) yields more fingerprints
per RP, matching how the real datasets contain several visits per RP.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from ..exceptions import SurveyError
from ..venue import FloorPlan


def plan_survey_paths(
    plan: FloorPlan,
    rng: np.random.Generator,
    *,
    n_passes: int = 1,
    max_edges_per_path: int = 12,
) -> List[np.ndarray]:
    """Plan survey paths covering every hallway edge ``n_passes`` times.

    Returns a list of waypoint arrays, each of shape ``(k, 2)`` with
    ``k >= 2`` — the corridor-centreline polyline a surveyor walks.
    """
    if n_passes < 1:
        raise SurveyError("need at least one pass")
    graph = plan.hallway_graph
    pos = plan.node_positions()
    paths: List[np.ndarray] = []
    for _ in range(n_passes):
        paths.extend(
            _cover_edges_once(graph, pos, rng, max_edges_per_path)
        )
    if not paths:
        raise SurveyError("no survey paths could be planned")
    return paths


def _cover_edges_once(
    graph: nx.Graph,
    pos: dict,
    rng: np.random.Generator,
    max_edges_per_path: int,
) -> List[np.ndarray]:
    """One greedy cover of all graph edges by node-walks."""
    remaining = {frozenset(e) for e in graph.edges()}
    paths: List[np.ndarray] = []
    nodes = list(graph.nodes())
    while remaining:
        # Start at a node incident to an uncovered edge.
        candidates = [
            n
            for n in nodes
            if any(frozenset((n, nb)) in remaining for nb in graph.neighbors(n))
        ]
        current = candidates[int(rng.integers(len(candidates)))]
        walk = [current]
        for _ in range(max_edges_per_path):
            unused = [
                nb
                for nb in graph.neighbors(current)
                if frozenset((current, nb)) in remaining
            ]
            if not unused:
                break
            nxt = unused[int(rng.integers(len(unused)))]
            remaining.discard(frozenset((current, nxt)))
            walk.append(nxt)
            current = nxt
        if len(walk) >= 2:
            paths.append(np.array([pos[n] for n in walk], dtype=float))
        else:
            # Stuck immediately: cover one incident edge directly.
            nb = next(
                nb
                for nb in graph.neighbors(current)
                if frozenset((current, nb)) in remaining
            )
            remaining.discard(frozenset((current, nb)))
            paths.append(np.array([pos[current], pos[nb]], dtype=float))
    return paths


def rps_on_path(
    waypoints: np.ndarray,
    rps: np.ndarray,
    *,
    tolerance: float = 1.0,
) -> List[int]:
    """Indices of RPs lying on a path, ordered by arc length.

    An RP counts as "on" the path when its distance to some path segment
    is below ``tolerance`` metres.
    """
    hits: List[tuple] = []
    for idx in range(rps.shape[0]):
        d, s = _distance_to_polyline(rps[idx], waypoints)
        if d <= tolerance:
            hits.append((s, idx))
    hits.sort()
    return [idx for _, idx in hits]


def _distance_to_polyline(
    point: np.ndarray, waypoints: np.ndarray
) -> tuple:
    """Distance from a point to a polyline plus the arc length of the
    closest approach (for ordering RPs along a path)."""
    best_d = float("inf")
    best_s = 0.0
    acc = 0.0
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        ab = b - a
        seg_len = float(np.linalg.norm(ab))
        if seg_len < 1e-12:
            continue
        t = float(np.clip(np.dot(point - a, ab) / (seg_len**2), 0.0, 1.0))
        proj = a + t * ab
        d = float(np.linalg.norm(point - proj))
        if d < best_d:
            best_d = d
            best_s = acc + t * seg_len
        acc += seg_len
    return best_d, best_s
