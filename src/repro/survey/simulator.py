"""Walking-survey simulation.

A surveyor walks each planned path with realistic kinematics (variable
speed, pauses — see :mod:`repro.survey.kinematics`), while the device
scans for APs on a jittered clock — *asynchronously* from the moments
the surveyor passes reference points.  That asynchrony is what makes
created radio maps sparse in RP labels (paper Section II-B), so the
simulator models it explicitly:

* RSSI records fire on the scan clock;
* RP records fire when the surveyor passes within ``rp_snap`` metres of
  a pre-selected RP (once per pass, with timing jitter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import SurveyError
from ..radio import ChannelModel
from ..venue import VenueSpec
from .kinematics import PathKinematics
from .paths import _distance_to_polyline, plan_survey_paths, rps_on_path
from .records import (
    RecordTruth,
    RPRecord,
    RSSIRecord,
    WalkingSurveyRecordTable,
)


@dataclass(frozen=True)
class SurveyConfig:
    """Knobs of the walking-survey process.

    Attributes
    ----------
    walking_speed:
        Mean surveyor speed (m/s).
    speed_jitter:
        Log-normal sigma of per-segment speed variation (intra-path
        pace drift; breaks time-linear RP interpolation, as real
        surveys do).
    pause_probability / pause_duration:
        Chance and mean length of pauses at corridor corners.
    scan_interval / scan_jitter:
        Mean and std-dev of seconds between RSSI scans.
    rp_snap:
        Distance (m) within which passing an RP logs an RP record.
    rp_time_jitter:
        Std-dev (s) of RP-record timing error — drives the asynchrony
        between RP and RSSI records.
    n_passes:
        How many times the full corridor network is covered.
    """

    walking_speed: float = 1.0
    speed_jitter: float = 0.25
    pause_probability: float = 0.25
    pause_duration: float = 3.0
    scan_interval: float = 2.0
    scan_jitter: float = 0.4
    rp_snap: float = 1.2
    rp_time_jitter: float = 0.6
    n_passes: int = 2

    def __post_init__(self) -> None:
        if self.walking_speed <= 0 or self.scan_interval <= 0:
            raise SurveyError("speed and scan interval must be positive")


def simulate_survey(
    venue: VenueSpec,
    channel: ChannelModel,
    config: SurveyConfig,
    rng: np.random.Generator,
) -> List[WalkingSurveyRecordTable]:
    """Simulate the whole survey campaign for a venue.

    Returns one record table per planned path, each validated and
    time-sorted with times starting at 0 within the path.
    """
    paths = plan_survey_paths(venue.plan, rng, n_passes=config.n_passes)
    tables: List[WalkingSurveyRecordTable] = []
    for path_id, waypoints in enumerate(paths):
        table = _simulate_one_path(
            path_id, waypoints, venue, channel, config, rng
        )
        if len(table) >= 2:
            tables.append(table)
    if not tables:
        raise SurveyError("survey produced no usable record tables")
    return tables


def _simulate_one_path(
    path_id: int,
    waypoints: np.ndarray,
    venue: VenueSpec,
    channel: ChannelModel,
    config: SurveyConfig,
    rng: np.random.Generator,
) -> WalkingSurveyRecordTable:
    table = WalkingSurveyRecordTable(path_id=path_id, n_aps=channel.n_aps)
    kin = PathKinematics(
        waypoints,
        rng,
        base_speed=config.walking_speed,
        speed_jitter=config.speed_jitter,
        pause_probability=config.pause_probability,
        pause_duration=config.pause_duration,
    )

    # --- RP records: when the surveyor passes a pre-selected RP.
    for rp_idx in rps_on_path(
        waypoints, venue.reference_points, tolerance=config.rp_snap
    ):
        rp = venue.reference_points[rp_idx]
        _, s = _distance_to_polyline(rp, waypoints)
        t = kin.time_at_arc(s) + float(
            rng.normal(0.0, config.rp_time_jitter)
        )
        t = float(np.clip(t, 0.0, kin.duration))
        true_pos = kin.position(t)
        table.add(
            RPRecord(
                time=t,
                location=(float(rp[0]), float(rp[1])),
                truth=RecordTruth(
                    position=(float(true_pos[0]), float(true_pos[1]))
                ),
            )
        )

    # --- RSSI records: on the scan clock.
    t = float(abs(rng.normal(0.5, 0.3)))
    while t < kin.duration:
        pos = kin.position(t)
        meas = channel.measure(pos, rng)
        readings = {
            d: float(meas.rssi[d])
            for d in range(channel.n_aps)
            if np.isfinite(meas.rssi[d])
        }
        if readings:
            table.add(
                RSSIRecord(
                    time=t,
                    readings=readings,
                    truth=RecordTruth(
                        position=(float(pos[0]), float(pos[1])),
                        missing_type=meas.missing_type,
                    ),
                )
            )
        step = float(rng.normal(config.scan_interval, config.scan_jitter))
        t += max(step, 0.2)

    table.sort()
    table.validate()
    return table
