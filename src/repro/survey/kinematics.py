"""Surveyor kinematics: variable speed and pauses along a path.

Walking surveys are not constant-speed: surveyors slow down at turns,
pause to annotate RPs, and drift in pace.  This matters for imputation
benchmarks — with perfectly constant speed, time-linear interpolation
of RPs (the LI baseline) is exact by construction and no learned model
can beat it.  Real data breaks that, so the simulator must too.

:class:`PathKinematics` draws a per-segment speed profile plus random
pauses and exposes ``position(t)`` / ``time_at_arc(s)`` for the record
generators.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..exceptions import SurveyError
from ..geometry import interpolate_along


class PathKinematics:
    """Time ↔ position mapping for one surveyed polyline.

    Parameters
    ----------
    waypoints:
        ``(k, 2)`` corridor polyline.
    base_speed:
        Mean walking speed (m/s).
    speed_jitter:
        Log-normal sigma of per-segment speed variation.
    pause_probability:
        Chance of a pause at each interior waypoint.
    pause_duration:
        Mean pause length (s), exponentially distributed.
    """

    def __init__(
        self,
        waypoints: np.ndarray,
        rng: np.random.Generator,
        *,
        base_speed: float = 1.0,
        speed_jitter: float = 0.25,
        pause_probability: float = 0.25,
        pause_duration: float = 3.0,
        segment_length: float = 4.0,
    ):
        if base_speed <= 0:
            raise SurveyError("base speed must be positive")
        self.waypoints = np.asarray(waypoints, dtype=float)
        if self.waypoints.shape[0] < 2:
            raise SurveyError("need at least two waypoints")

        seg_vecs = np.diff(self.waypoints, axis=0)
        seg_lens = np.linalg.norm(seg_vecs, axis=1)
        self.total_length = float(seg_lens.sum())

        # Sub-divide into ~segment_length pieces, each with its own
        # speed; insert pauses at waypoint boundaries.
        arcs: List[Tuple[float, float, float]] = []  # (s0, s1, speed)
        pauses: List[Tuple[float, float]] = []  # (arc s, duration)
        s = 0.0
        for i, length in enumerate(seg_lens):
            n_sub = max(1, int(np.ceil(length / segment_length)))
            sub_len = length / n_sub
            for _ in range(n_sub):
                speed = base_speed * float(
                    rng.lognormal(0.0, speed_jitter)
                )
                speed = float(np.clip(speed, 0.2, 3.0))
                arcs.append((s, s + sub_len, speed))
                s += sub_len
            if i < len(seg_lens) - 1 and rng.random() < pause_probability:
                pauses.append((s, float(rng.exponential(pause_duration))))

        # Build the piecewise-linear time(s) map.
        self._knots_s: List[float] = [0.0]
        self._knots_t: List[float] = [0.0]
        t = 0.0
        pause_iter = iter(pauses)
        next_pause = next(pause_iter, None)
        for s0, s1, speed in arcs:
            t += (s1 - s0) / speed
            self._knots_s.append(s1)
            self._knots_t.append(t)
            while next_pause is not None and abs(next_pause[0] - s1) < 1e-9:
                t += next_pause[1]
                self._knots_s.append(s1)
                self._knots_t.append(t)
                next_pause = next(pause_iter, None)
        self.duration = t
        self._s_arr = np.array(self._knots_s)
        self._t_arr = np.array(self._knots_t)

    # ------------------------------------------------------------------
    def arc_at_time(self, t: float) -> float:
        """Arc length travelled by time ``t`` (clamped)."""
        t = float(np.clip(t, 0.0, self.duration))
        return float(np.interp(t, self._t_arr, self._s_arr))

    def time_at_arc(self, s: float) -> float:
        """First time the surveyor reaches arc length ``s`` (clamped)."""
        s = float(np.clip(s, 0.0, self.total_length))
        return float(np.interp(s, self._s_arr, self._t_arr))

    def position(self, t: float) -> np.ndarray:
        """Surveyor position at time ``t``."""
        return interpolate_along(self.waypoints, self.arc_at_time(t))
