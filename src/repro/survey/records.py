"""Walking Survey Record Table (paper Table II).

A walking survey produces a time-sorted stream of two record types:

* **RP records** — the surveyor reached a pre-selected reference point
  and logged its coordinates;
* **RSSI records** — a Wi-Fi scan completed, yielding readings for the
  subset of APs heard at that moment.

Because the simulator knows the true surveyor position and the true
cause of every missing reading, each record can carry an optional
:class:`RecordTruth`; downstream code treats it as evaluation-only
metadata that real datasets would not have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import SurveyError


@dataclass(frozen=True)
class RecordTruth:
    """Simulation-only ground truth attached to a record.

    Attributes
    ----------
    position:
        True surveyor coordinates when the record was captured.
    missing_type:
        ``(D,)`` int array (``1`` observed / ``0`` MAR / ``-1`` MNAR),
        present on RSSI records only.
    """

    position: Tuple[float, float]
    missing_type: Optional[np.ndarray] = None


@dataclass
class RPRecord:
    """An RP (reference point) record: the surveyor logged a location."""

    time: float
    location: Tuple[float, float]
    truth: Optional[RecordTruth] = None

    record_type = "RP"


@dataclass
class RSSIRecord:
    """An RSSI record: readings for the APs heard in one scan."""

    time: float
    readings: Dict[int, float]
    truth: Optional[RecordTruth] = None

    record_type = "RSSI"


SurveyRecord = object  # union alias (RPRecord | RSSIRecord) for readability


@dataclass
class WalkingSurveyRecordTable:
    """All records of one survey path, sorted by time."""

    path_id: int
    n_aps: int
    records: List[SurveyRecord] = field(default_factory=list)

    def add(self, record: SurveyRecord) -> None:
        self.records.append(record)

    def sort(self) -> None:
        self.records.sort(key=lambda r: r.time)

    def validate(self) -> None:
        """Check temporal ordering and reading sanity."""
        times = [r.time for r in self.records]
        if times != sorted(times):
            raise SurveyError("records are not time-sorted")
        for r in self.records:
            if isinstance(r, RSSIRecord):
                for ap, val in r.readings.items():
                    if not 0 <= ap < self.n_aps:
                        raise SurveyError(f"AP id {ap} out of range")
                    if not np.isfinite(val):
                        raise SurveyError("non-finite RSSI reading")

    @property
    def rp_records(self) -> List[RPRecord]:
        return [r for r in self.records if isinstance(r, RPRecord)]

    @property
    def rssi_records(self) -> List[RSSIRecord]:
        return [r for r in self.records if isinstance(r, RSSIRecord)]

    def duration(self) -> float:
        """Survey duration in seconds (0 for empty tables)."""
        if not self.records:
            return 0.0
        times = [r.time for r in self.records]
        return max(times) - min(times)

    def __len__(self) -> int:
        return len(self.records)
