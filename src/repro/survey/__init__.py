"""Walking-survey simulation: paths, surveyor kinematics, record
tables, and multi-floor walks through portals."""

from .kinematics import PathKinematics
from .multifloor import (
    FloorLeg,
    MultiFloorKinematics,
    PortalHop,
    plan_multifloor_walk,
)
from .paths import plan_survey_paths, rps_on_path
from .records import (
    RecordTruth,
    RPRecord,
    RSSIRecord,
    WalkingSurveyRecordTable,
)
from .simulator import SurveyConfig, simulate_survey

__all__ = [
    "FloorLeg",
    "MultiFloorKinematics",
    "PathKinematics",
    "PortalHop",
    "RPRecord",
    "RSSIRecord",
    "RecordTruth",
    "SurveyConfig",
    "WalkingSurveyRecordTable",
    "plan_multifloor_walk",
    "plan_survey_paths",
    "rps_on_path",
    "simulate_survey",
]
