"""Walking-survey simulation: paths, surveyor kinematics, record tables."""

from .kinematics import PathKinematics
from .paths import plan_survey_paths, rps_on_path
from .records import (
    RecordTruth,
    RPRecord,
    RSSIRecord,
    WalkingSurveyRecordTable,
)
from .simulator import SurveyConfig, simulate_survey

__all__ = [
    "PathKinematics",
    "RPRecord",
    "RSSIRecord",
    "RecordTruth",
    "SurveyConfig",
    "WalkingSurveyRecordTable",
    "plan_survey_paths",
    "rps_on_path",
    "simulate_survey",
]
