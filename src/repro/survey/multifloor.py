"""Multi-floor walks: per-floor kinematics stitched through portals.

A walk in a stacked venue is a sequence of single-floor *legs* — each
an ordinary :class:`~repro.survey.PathKinematics` over that floor's
corridor graph — joined by portal *hops*: the device dwells inside the
stairwell/elevator for the portal's traversal time, entering on one
floor and emerging on the next.  :class:`MultiFloorKinematics` exposes
the same ``position``-style query as the single-floor kinematics but
returns ``(floor_id, xy)``, which is exactly what the tracking loadgen
needs to score floor classification and portal hand-offs against
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import SurveyError
from ..venue.multifloor import Portal, Venue
from .kinematics import PathKinematics


@dataclass
class FloorLeg:
    """One single-floor stretch of a multi-floor walk."""

    floor_id: str
    kinematics: PathKinematics
    t_start: float

    @property
    def t_end(self) -> float:
        return self.t_start + self.kinematics.duration


@dataclass
class PortalHop:
    """The dwell between two legs while traversing a portal."""

    portal: Portal
    from_floor: str
    to_floor: str
    t_start: float
    t_end: float


class MultiFloorKinematics:
    """Time → ``(floor_id, position)`` for one multi-floor walk.

    During a portal hop the device sits at the portal's entry point
    for the first half of the traversal and at its exit point for the
    second half — the floor label flips at the midpoint, mirroring how
    a phone's scans migrate to the destination floor's APs mid-ride.
    """

    def __init__(
        self, legs: Sequence[FloorLeg], hops: Sequence[PortalHop]
    ):
        if not legs:
            raise SurveyError("a walk needs at least one leg")
        if len(hops) != len(legs) - 1:
            raise SurveyError(
                f"{len(legs)} legs need {len(legs) - 1} hops, "
                f"got {len(hops)}"
            )
        self.legs = list(legs)
        self.hops = list(hops)

    @property
    def duration(self) -> float:
        return self.legs[-1].t_end

    @property
    def floor_ids(self) -> Tuple[str, ...]:
        return tuple(leg.floor_id for leg in self.legs)

    def locate(self, t: float) -> Tuple[str, np.ndarray]:
        """Floor id and xy at time ``t`` (clamped to the walk's span)."""
        t = float(t)
        for leg, hop in zip(self.legs, self.hops + [None]):
            if t <= leg.t_end or hop is None:
                return (
                    leg.floor_id,
                    leg.kinematics.position(t - leg.t_start),
                )
            if t < hop.t_end:
                mid = 0.5 * (hop.t_start + hop.t_end)
                if t < mid:
                    return (
                        hop.from_floor,
                        hop.portal.endpoint(hop.from_floor),
                    )
                return hop.to_floor, hop.portal.endpoint(hop.to_floor)
        raise SurveyError("unreachable")  # pragma: no cover


def _nearest_node(
    pos: Dict[int, np.ndarray], point: np.ndarray
) -> int:
    return min(
        pos,
        key=lambda n: (
            float(np.linalg.norm(pos[n] - point)),
            n,
        ),
    )


def _random_walk_nodes(
    graph: nx.Graph,
    pos: Dict[int, np.ndarray],
    rng: np.random.Generator,
    min_length: float,
    start: Optional[int] = None,
) -> List[int]:
    """A corridor node walk of at least ``min_length`` metres,
    avoiding immediate backtracks where the junction allows."""
    nodes = sorted(graph.nodes())
    current = (
        nodes[int(rng.integers(len(nodes)))] if start is None else start
    )
    walk = [current]
    previous = None
    length = 0.0
    while length < min_length:
        neighbours = list(graph.neighbors(current))
        if not neighbours:  # pragma: no cover - validated venues
            break
        choices = [n for n in neighbours if n != previous]
        if not choices:
            choices = neighbours
        nxt = choices[int(rng.integers(len(choices)))]
        length += float(np.linalg.norm(pos[nxt] - pos[current]))
        walk.append(nxt)
        previous, current = current, nxt
    return walk


def plan_multifloor_walk(
    venue: Venue,
    rng: np.random.Generator,
    *,
    floor_sequence: Optional[Sequence[str]] = None,
    leg_length: float = 60.0,
    base_speed: float = 1.0,
    speed_jitter: float = 0.25,
    pause_probability: float = 0.25,
    pause_duration: float = 3.0,
) -> MultiFloorKinematics:
    """Plan one walk visiting ``floor_sequence`` through portals.

    Each leg random-walks its floor's corridor graph for about
    ``leg_length`` metres, then heads (shortest corridor path) to a
    portal connecting to the next floor in the sequence; the next leg
    starts at that portal's exit.  Defaults to a bottom-to-top pass
    over all floors, which makes every walk cross every portal level —
    the hardest tracking scenario the venue offers.
    """
    floor_ids = (
        list(venue.floor_ids)
        if floor_sequence is None
        else list(floor_sequence)
    )
    if not floor_ids:
        raise SurveyError("empty floor sequence")
    for fid in floor_ids:
        venue.floor(fid)  # raises on unknown floors

    legs: List[FloorLeg] = []
    hops: List[PortalHop] = []
    t = 0.0
    start_node: Optional[int] = None
    for k, fid in enumerate(floor_ids):
        floor = venue.floor(fid)
        graph = floor.plan.hallway_graph
        pos = floor.plan.node_positions()
        nodes = _random_walk_nodes(
            graph, pos, rng, leg_length, start=start_node
        )
        portal: Optional[Portal] = None
        if k + 1 < len(floor_ids):
            nxt = floor_ids[k + 1]
            options = venue.portals_between(fid, nxt)
            if not options:
                raise SurveyError(
                    f"no portal connects {fid!r} to {nxt!r}"
                )
            portal = options[int(rng.integers(len(options)))]
            target = _nearest_node(pos, portal.endpoint(fid))
            tail = nx.shortest_path(
                graph, nodes[-1], target, weight="length"
            )
            nodes.extend(tail[1:])
            if nodes[-1] != target:  # pragma: no cover - path ends there
                nodes.append(target)
        waypoints = np.array([pos[n] for n in nodes], dtype=float)
        if waypoints.shape[0] < 2:
            # A leg that starts on its portal node still needs a
            # polyline: pace to a neighbour and back.
            neighbour = next(iter(graph.neighbors(nodes[0])))
            waypoints = np.array(
                [pos[nodes[0]], pos[neighbour], pos[nodes[0]]],
                dtype=float,
            )
        kinematics = PathKinematics(
            waypoints,
            rng,
            base_speed=base_speed,
            speed_jitter=speed_jitter,
            pause_probability=pause_probability,
            pause_duration=pause_duration,
        )
        leg = FloorLeg(floor_id=fid, kinematics=kinematics, t_start=t)
        legs.append(leg)
        t = leg.t_end
        if portal is not None:
            hop = PortalHop(
                portal=portal,
                from_floor=fid,
                to_floor=floor_ids[k + 1],
                t_start=t,
                t_end=t + portal.traversal_seconds,
            )
            hops.append(hop)
            t = hop.t_end
            next_pos = venue.floor(floor_ids[k + 1]).plan
            start_node = _nearest_node(
                next_pos.node_positions(),
                portal.endpoint(floor_ids[k + 1]),
            )
        else:
            start_node = None
    return MultiFloorKinematics(legs, hops)
