"""BiSIM as an :class:`~repro.imputers.base.Imputer`, plus the paper's
named pipeline combinations D-BiSIM (DasaKM + BiSIM) and T-BiSIM
(TopoAC + BiSIM)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..imputers.base import ImputationResult, Imputer
from ..radiomap import RadioMap
from .config import BiSIMConfig
from .trainer import BiSIMTrainer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .checkpoint import BiSIMTrainerCache


@dataclass
class BiSIMImputer(Imputer):
    """Trains BiSIM on the given radio map, then imputes it.

    By default a fresh model is trained per call (the paper's
    protocol: the imputer is fit on the very radio map it completes).
    When a ``trainer_cache`` is attached, training is skipped for
    inputs whose content hash matches an already-fitted trainer —
    training is deterministic, so the cached model is bit-identical to
    what a fresh fit would produce.  The experiment harness uses this
    so figures sharing a (config, seed, radio map) train once.
    """

    config: BiSIMConfig = field(default_factory=BiSIMConfig)
    trainer_cache: Optional["BiSIMTrainerCache"] = field(
        default=None, repr=False, compare=False
    )
    name: str = field(default="BiSIM", init=False)

    #: Filled after each :meth:`impute` call, for inspection.
    last_trainer_: Optional[BiSIMTrainer] = field(
        default=None, init=False, repr=False
    )

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        if self.trainer_cache is not None:
            trainer = self.trainer_cache.get_or_train(
                radio_map, amended_mask, self.config
            )
        else:
            trainer = BiSIMTrainer(radio_map.n_aps, self.config)
            trainer.fit(radio_map, amended_mask)
        fingerprints, rps = trainer.impute(radio_map, amended_mask)
        self.last_trainer_ = trainer
        return ImputationResult(
            fingerprints=fingerprints,
            rps=rps,
            kept_indices=np.arange(radio_map.n_records),
        )
