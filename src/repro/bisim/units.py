"""Encoder and decoder units (Section IV-C, Figs. 9-10).

Encoder unit (Eqs. 2-5):
    f'_i  = W_f h_{i-1} + b_f                      (estimate)
    fc_i  = m_i ⊙ f_i + (1 - m_i) ⊙ f'_i          (combine)
    γ_i   = exp(-max(0, W_γ δ_i + b_γ))            (temporal decay)
    h_i   = Cell(fc_i ⊕ m_i, h_{i-1} ⊙ γ_i)

Decoder unit (Eqs. 6-8): same shape without the time-lag term, with the
attention context concatenated into the cell input:
    l'_j  = W_l s_{j-1} + b_l
    lc_j  = k_j ⊙ l_j + (1 - k_j) ⊙ l'_j
    s_j   = Cell(lc_j ⊕ c_j, s_{j-1})

For the Fig. 18 ablations both units can toggle their time-lag decay.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ImputationError
from ..neuro import Linear, LSTMCell, Module, SimpleRecurrentCell, Tensor, concat


def _make_cell(kind: str, input_size: int, hidden: int, rng):
    if kind == "lstm":
        return LSTMCell(input_size, hidden, rng)
    if kind == "simple":
        return SimpleRecurrentCell(input_size, hidden, rng)
    raise ImputationError(f"unknown cell kind {kind!r}")


class TemporalDecay(Module):
    """γ = exp(-max(0, W δ + b)).

    ``scalar`` mode maps the time-lag vector to one decay factor per
    sample (the paper's wording); ``vector`` mode produces one factor
    per hidden dimension (the BRITS convention).
    """

    def __init__(
        self,
        lag_size: int,
        hidden_size: int,
        mode: str,
        rng: np.random.Generator,
    ):
        if mode not in ("scalar", "vector"):
            raise ImputationError(f"unknown decay mode {mode!r}")
        out = 1 if mode == "scalar" else hidden_size
        self.mode = mode
        self.linear = Linear(lag_size, out, rng)

    def __call__(self, lag: Tensor) -> Tensor:
        return (-self.linear(lag).relu()).exp()


class EncoderUnit(Module):
    """One shared-weights encoder step over ``(B, D)`` inputs."""

    def __init__(
        self,
        n_aps: int,
        hidden_size: int,
        rng: np.random.Generator,
        *,
        use_time_lag: bool = True,
        decay_mode: str = "scalar",
        cell: str = "lstm",
    ):
        self.n_aps = n_aps
        self.hidden_size = hidden_size
        self.use_time_lag = use_time_lag
        self.estimate = Linear(hidden_size, n_aps, rng)  # W_f, b_f
        self.decay = (
            TemporalDecay(n_aps, hidden_size, decay_mode, rng)
            if use_time_lag
            else None
        )
        self.cell = _make_cell(cell, 2 * n_aps, hidden_size, rng)

    def initial_state(self, batch: int) -> Tuple[Tensor, Tensor]:
        return self.cell.initial_state(batch)

    def step(
        self,
        f: Tensor,
        m: Tensor,
        lag: Tensor,
        state: Tuple[Tensor, Tensor],
    ) -> Tuple[Tensor, Tensor, Tuple[Tensor, Tensor]]:
        """Returns ``(f_prime, f_complemented, new_state)``."""
        h_prev, c_prev = state
        f_prime = self.estimate(h_prev)
        fc = m * f + (1.0 - m) * f_prime
        if self.decay is not None:
            h_prev = h_prev * self.decay(lag)
        h, c = self.cell(concat([fc, m], axis=1), (h_prev, c_prev))
        return f_prime, fc, (h, c)


class DecoderUnit(Module):
    """One shared-weights decoder step over ``(B, 2)`` RP inputs."""

    def __init__(
        self,
        hidden_size: int,
        context_size: int,
        rng: np.random.Generator,
        *,
        use_time_lag: bool = False,
        decay_mode: str = "scalar",
        cell: str = "lstm",
    ):
        self.hidden_size = hidden_size
        self.context_size = context_size
        self.estimate = Linear(hidden_size, 2, rng)  # W_l, b_l
        self.decay = (
            TemporalDecay(2, hidden_size, decay_mode, rng)
            if use_time_lag
            else None
        )
        self.cell = _make_cell(
            cell, 2 + context_size, hidden_size, rng
        )

    def step(
        self,
        l: Tensor,
        k: Tensor,
        context: Optional[Tensor],
        lag: Optional[Tensor],
        state: Tuple[Tensor, Tensor],
    ) -> Tuple[Tensor, Tensor, Tuple[Tensor, Tensor]]:
        """Returns ``(l_prime, l_complemented, new_state)``."""
        s_prev, c_prev = state
        l_prime = self.estimate(s_prev)
        lc = k * l + (1.0 - k) * l_prime
        if self.decay is not None and lag is not None:
            s_prev = s_prev * self.decay(lag)
        cell_in = lc if context is None else concat([lc, context], axis=1)
        s, c = self.cell(cell_in, (s_prev, c_prev))
        return l_prime, lc, (s, c)
