"""The paper's core contribution, part 2: the BiSIM data imputer."""

from .attention import (
    AttentionUnit,
    NoAttention,
    SparsityFriendlyAttention,
    VanillaBahdanauAttention,
)
from .checkpoint import (
    BiSIMTrainerCache,
    load_online_imputer,
    load_trainer,
    save_online_imputer,
    save_trainer,
)
from .config import BiSIMConfig
from .features import (
    FeatureSpace,
    SequenceChunk,
    batch_chunks,
    build_feature_space,
    prepare_chunks,
    stack_batch,
    time_lag_vectors,
    time_lag_vectors_batched,
)
from .imputer import BiSIMImputer
from .loss import cross_loss, direction_loss, overall_loss
from .model import BiSIM, DirectionOutput
from .online import OnlineImputer
from .trainer import BiSIMTrainer, TrainingHistory
from .units import DecoderUnit, EncoderUnit, TemporalDecay

__all__ = [
    "AttentionUnit",
    "BiSIM",
    "BiSIMConfig",
    "BiSIMImputer",
    "BiSIMTrainer",
    "BiSIMTrainerCache",
    "DecoderUnit",
    "DirectionOutput",
    "EncoderUnit",
    "FeatureSpace",
    "NoAttention",
    "OnlineImputer",
    "SequenceChunk",
    "SparsityFriendlyAttention",
    "TemporalDecay",
    "TrainingHistory",
    "VanillaBahdanauAttention",
    "batch_chunks",
    "build_feature_space",
    "cross_loss",
    "direction_loss",
    "load_online_imputer",
    "load_trainer",
    "overall_loss",
    "prepare_chunks",
    "save_online_imputer",
    "save_trainer",
    "stack_batch",
    "time_lag_vectors",
    "time_lag_vectors_batched",
]
