"""The BiSIM model (Section IV-A, Fig. 8).

A bidirectional sequence-to-sequence imputer: the *encoder* stack
consumes the fingerprint sequence ``(δ_i, f_i, m_i)`` and produces
per-step imputations ``fc_i`` plus latent vectors ``h_i``; the last
latent seeds the *decoder* stack, which consumes the RP sequence
``(l_j, k_j)`` and, guided by the attention unit over all ``h_i``,
produces RP imputations ``lc_j``.  The same network is run over the
reversed sequences (with time-lag vectors recomputed per Eq. 1 for the
reversed order), and the two directions' complemented vectors are
averaged into the final output (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ImputationError
from ..neuro import Module, Tensor
from .attention import (
    AttentionUnit,
    NoAttention,
    SparsityFriendlyAttention,
    VanillaBahdanauAttention,
)
from .config import BiSIMConfig
from .features import time_lag_vectors_batched
from .units import DecoderUnit, EncoderUnit


@dataclass
class DirectionOutput:
    """Per-direction model outputs, time-major lists of ``(B, ·)``.

    ``f_prime``/``l_prime`` are the *predicted* vectors the
    reconstruction loss scores; ``fc``/``lc`` are the complemented
    vectors forming the imputation output.  Lists are aligned with the
    original (forward) time order regardless of direction.
    """

    f_prime: List[Tensor]
    fc: List[Tensor]
    l_prime: List[Tensor]
    lc: List[Tensor]


class BiSIM(Module):
    """Bi-directional Sequence-to-Sequence Imputation Model."""

    def __init__(self, n_aps: int, config: BiSIMConfig):
        if n_aps <= 0:
            raise ImputationError("n_aps must be positive")
        self.n_aps = n_aps
        self.config = config
        rng = np.random.default_rng(config.seed)
        self.encoder = EncoderUnit(
            n_aps,
            config.hidden_size,
            rng,
            use_time_lag=config.time_lag_encoder,
            decay_mode=config.decay_mode,
            cell=config.cell,
        )
        self.attention = self._build_attention(rng)
        self.decoder = DecoderUnit(
            config.hidden_size,
            self.attention.context_size,
            rng,
            use_time_lag=config.time_lag_decoder,
            decay_mode=config.decay_mode,
            cell=config.cell,
        )

    def _build_attention(self, rng: np.random.Generator) -> AttentionUnit:
        cfg = self.config
        if cfg.attention == "sparsity":
            return SparsityFriendlyAttention(
                cfg.hidden_size, self.n_aps, cfg.attention_hidden, rng
            )
        if cfg.attention == "vanilla":
            return VanillaBahdanauAttention(
                cfg.hidden_size, cfg.attention_hidden, rng
            )
        return NoAttention()

    # ------------------------------------------------------------------
    def run_direction(
        self,
        fp: np.ndarray,
        m: np.ndarray,
        rp: np.ndarray,
        k: np.ndarray,
        times: np.ndarray,
        *,
        reverse: bool,
    ) -> DirectionOutput:
        """Run encoder + decoder over a ``(B, T, ·)`` batch.

        When ``reverse`` is True the time axis is flipped on input, the
        Eq. 1 lags are recomputed for the flipped order (reversed
        timestamps are negated so gaps stay positive), and the outputs
        are flipped back so both directions align with original order.
        """
        if reverse:
            fp = fp[:, ::-1]
            m = m[:, ::-1]
            rp = rp[:, ::-1]
            k = k[:, ::-1]
            times = -times[:, ::-1]
        fp_lag = time_lag_vectors_batched(times, m)
        rp_lag = time_lag_vectors_batched(times, k)
        batch, t_len, _ = fp.shape

        # --- encoder stack
        state = self.encoder.initial_state(batch)
        latents: List[Tensor] = []
        masks: List[np.ndarray] = []
        f_primes: List[Tensor] = []
        fcs: List[Tensor] = []
        for i in range(t_len):
            f_prime, fc, state = self.encoder.step(
                Tensor(fp[:, i]),
                Tensor(m[:, i]),
                Tensor(fp_lag[:, i]),
                state,
            )
            latents.append(state[0])
            masks.append(m[:, i])
            f_primes.append(f_prime)
            fcs.append(fc)

        # --- decoder stack seeded with h_T (s_0 = h_T)
        self.attention.prepare(latents, masks)
        dec_state: Tuple[Tensor, Tensor] = state
        l_primes: List[Tensor] = []
        lcs: List[Tensor] = []
        for j in range(t_len):
            context = self.attention.step(dec_state[0])
            l_prime, lc, dec_state = self.decoder.step(
                Tensor(rp[:, j]),
                Tensor(k[:, j]),
                context,
                Tensor(rp_lag[:, j]),
                dec_state,
            )
            l_primes.append(l_prime)
            lcs.append(lc)

        if reverse:
            f_primes.reverse()
            fcs.reverse()
            l_primes.reverse()
            lcs.reverse()
        return DirectionOutput(
            f_prime=f_primes, fc=fcs, l_prime=l_primes, lc=lcs
        )

    def forward(
        self,
        fp: np.ndarray,
        m: np.ndarray,
        rp: np.ndarray,
        k: np.ndarray,
        times: np.ndarray,
    ) -> Tuple[DirectionOutput, Optional[DirectionOutput]]:
        """Run forward (and, if configured, backward) passes."""
        fwd = self.run_direction(fp, m, rp, k, times, reverse=False)
        bwd = (
            self.run_direction(fp, m, rp, k, times, reverse=True)
            if self.config.bidirectional
            else None
        )
        return fwd, bwd

    # ------------------------------------------------------------------
    def impute_batch(
        self,
        fp: np.ndarray,
        m: np.ndarray,
        rp: np.ndarray,
        k: np.ndarray,
        times: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Eq. 13 outputs: averaged complemented vectors.

        Returns ``(fingerprints, rps)`` as ``(B, T, ·)`` arrays in the
        normalised feature space.
        """
        fwd, bwd = self.forward(fp, m, rp, k, times)
        t_len = len(fwd.fc)
        f_out = np.stack(
            [
                (fwd.fc[i].data + bwd.fc[i].data) / 2.0
                if bwd is not None
                else fwd.fc[i].data
                for i in range(t_len)
            ],
            axis=1,
        )
        l_out = np.stack(
            [
                (fwd.lc[j].data + bwd.lc[j].data) / 2.0
                if bwd is not None
                else fwd.lc[j].data
                for j in range(t_len)
            ],
            axis=1,
        )
        return f_out, l_out
