"""BiSIM input-feature preparation (Section IV-B).

For each survey-path sequence of radio-map records we build:

* the *fingerprint* inputs ``(delta_i, f_i, m_i)`` — the Eq. 1 time-lag
  vector, the normalised fingerprint (0 where null), and the amended
  mask row (1 observed or MNAR-filled, 0 MAR);
* the *RP* inputs ``(l_j, k_j)`` — the normalised RP (0 where null)
  and its 2-bit mask — plus an RP time-lag vector for the
  time-lag-in-decoder ablation.

Sequences longer than ``sequence_length`` are sliced before encoding
and reassembled after decoding, exactly as Section V-C describes; the
Eq. 1 recursion restarts in each slice (its first unit has delta = 0).
Time-lag vectors are recomputed per direction from timestamps and
masks, so the backward pass gets exact Eq. 1 lags for the reversed
order rather than an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, List, Optional, Tuple

import numpy as np

from ..constants import MNAR_FILL, RSSI_MAX
from ..exceptions import ImputationError
from ..radiomap import RadioMap

#: dBm span used to squash RSSIs into [0, 1].
_RSSI_SPAN = float(RSSI_MAX - MNAR_FILL)


def time_lag_vectors(times: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Eq. 1: per-dimension time since the last *observed* value.

    Parameters
    ----------
    times:
        ``(T,)`` record timestamps.
    mask:
        ``(T, D)`` 0/1 mask (1 = observed).

    Returns
    -------
    ``(T, D)`` float array ``delta`` with ``delta[0] = 0`` and

    * ``delta[i, j] = t_i - t_{i-1}``                   if ``m[i-1, j] = 1``
    * ``delta[i, j] = delta[i-1, j] + (t_i - t_{i-1})`` otherwise.
    """
    times = np.asarray(times, dtype=float)
    mask = np.asarray(mask)
    if mask.ndim != 2 or mask.shape[0] != times.shape[0]:
        raise ImputationError("mask must be (T, D) aligned with times")
    return time_lag_vectors_batched(times[None, :], mask[None, :, :])[0]


def time_lag_vectors_batched(
    times: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Eq. 1 over a ``(B, T)`` / ``(B, T, D)`` batch."""
    times = np.asarray(times, dtype=float)
    mask = np.asarray(mask)
    b, t_len, d = mask.shape
    delta = np.zeros((b, t_len, d))
    for i in range(1, t_len):
        dt = (times[:, i] - times[:, i - 1])[:, None]
        observed_prev = mask[:, i - 1] == 1
        delta[:, i] = np.where(observed_prev, dt, delta[:, i - 1] + dt)
    return delta


@dataclass
class SequenceChunk:
    """One model-ready slice of a survey-path sequence.

    All arrays are time-major; fingerprints and RPs are normalised to
    [0, 1] and zero-filled at nulls.
    """

    rows: np.ndarray  # (T,) radio-map row indices
    fingerprints: np.ndarray  # (T, D)
    fp_mask: np.ndarray  # (T, D) amended mask (0 = MAR)
    rps: np.ndarray  # (T, 2)
    rp_mask: np.ndarray  # (T, 2)
    times: np.ndarray  # (T,) scaled timestamps

    @property
    def length(self) -> int:
        return int(self.rows.shape[0])


@dataclass
class FeatureSpace:
    """Normalisation constants shared by encode/decode round trips."""

    rp_min: np.ndarray
    rp_span: np.ndarray
    time_lag_scale: float

    def normalize_fp(self, fp: np.ndarray) -> np.ndarray:
        out = (fp - MNAR_FILL) / _RSSI_SPAN
        return np.nan_to_num(out, nan=0.0)

    def denormalize_fp(self, fp_norm: np.ndarray) -> np.ndarray:
        return fp_norm * _RSSI_SPAN + MNAR_FILL

    def normalize_rp(self, rp: np.ndarray) -> np.ndarray:
        out = (rp - self.rp_min) / self.rp_span
        return np.nan_to_num(out, nan=0.0)

    def denormalize_rp(self, rp_norm: np.ndarray) -> np.ndarray:
        return rp_norm * self.rp_span + self.rp_min


def build_feature_space(
    radio_map: RadioMap, time_lag_scale: float
) -> FeatureSpace:
    """Fit normalisation constants on the observed RPs."""
    observed = radio_map.rps[radio_map.rp_observed_mask]
    if observed.shape[0] == 0:
        raise ImputationError("radio map has no observed RPs")
    rp_min = observed.min(axis=0)
    rp_span = observed.max(axis=0) - rp_min
    rp_span[rp_span <= 0] = 1.0
    return FeatureSpace(
        rp_min=rp_min, rp_span=rp_span, time_lag_scale=time_lag_scale
    )


def prepare_chunks(
    radio_map: RadioMap,
    amended_mask: np.ndarray,
    space: FeatureSpace,
    sequence_length: int,
) -> List[SequenceChunk]:
    """Slice every path sequence into model-ready chunks."""
    chunks, _ = prepare_chunks_with_paths(
        radio_map, amended_mask, space, sequence_length
    )
    if not chunks:
        raise ImputationError("no sequences to impute")
    return chunks


def prepare_chunks_with_paths(
    radio_map: RadioMap,
    amended_mask: np.ndarray,
    space: FeatureSpace,
    sequence_length: int,
    paths: Optional[Collection[int]] = None,
) -> Tuple[List[SequenceChunk], List[int]]:
    """Slice path sequences into chunks, tagged with their path ids.

    ``paths`` restricts the slicing to the given survey paths (the
    incremental-index refresh path); ``None`` slices every path.
    Returns ``(chunks, path_ids)`` with one path id per chunk; an empty
    result is legal here — the all-paths wrapper
    :func:`prepare_chunks` is the one that raises on it.
    """
    if amended_mask.shape != radio_map.fingerprints.shape:
        raise ImputationError("amended mask shape mismatch")
    wanted = None if paths is None else {int(p) for p in paths}
    chunks: List[SequenceChunk] = []
    path_ids: List[int] = []

    # Normalisation is elementwise, so doing it per selected path is
    # identical to normalising the whole map up front — and lets a
    # restricted refresh skip the untouched rows entirely.
    for pid, rows in radio_map.path_sequences():
        if wanted is not None and pid not in wanted:
            continue
        fp_norm = space.normalize_fp(radio_map.fingerprints[rows])
        rp_norm = space.normalize_rp(radio_map.rps[rows])
        rp_mask = np.repeat(
            radio_map.rp_observed_mask[rows].astype(float)[:, None],
            2,
            axis=1,
        )
        for start in range(0, rows.size, sequence_length):
            stop = start + sequence_length
            sel = rows[start:stop]
            m = (amended_mask[sel] == 1).astype(float)
            k = rp_mask[start:stop]
            chunks.append(
                SequenceChunk(
                    rows=sel,
                    fingerprints=fp_norm[start:stop] * m,
                    fp_mask=m,
                    rps=rp_norm[start:stop] * k,
                    rp_mask=k,
                    times=radio_map.times[sel] / space.time_lag_scale,
                )
            )
            path_ids.append(pid)
    return chunks, path_ids


def batch_chunks(
    chunks: List[SequenceChunk], batch_size: int
) -> List[List[SequenceChunk]]:
    """Group chunks of equal length into batches."""
    by_length: dict = {}
    for c in chunks:
        by_length.setdefault(c.length, []).append(c)
    batches: List[List[SequenceChunk]] = []
    for _, group in sorted(by_length.items()):
        for i in range(0, len(group), batch_size):
            batches.append(group[i : i + batch_size])
    return batches


def stack_batch(batch: List[SequenceChunk]) -> Tuple[np.ndarray, ...]:
    """Stack a same-length batch into ``(B, T, ·)`` arrays.

    Returns ``(fp, m, rp, k, times)`` with ``times`` of shape ``(B, T)``.
    """
    return (
        np.stack([c.fingerprints for c in batch]),
        np.stack([c.fp_mask for c in batch]),
        np.stack([c.rps for c in batch]),
        np.stack([c.rp_mask for c in batch]),
        np.stack([c.times for c in batch]),
    )
