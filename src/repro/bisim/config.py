"""BiSIM configuration, including every ablation switch of Section V-C."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict

from ..constants import DEFAULT_SEQUENCE_LENGTH
from ..exceptions import ImputationError

ATTENTION_KINDS = ("sparsity", "vanilla", "none")
DECAY_MODES = ("scalar", "vector")
CELL_KINDS = ("lstm", "simple")


@dataclass
class BiSIMConfig:
    """Hyperparameters of BiSIM.

    Defaults follow Section V-C: latent size 64, sequence length 5,
    Adam at lr=0.001, batch size 32.  The paper trains 500 epochs on a
    GPU; the default here is laptop-scale and overridable.

    Ablation switches
    -----------------
    attention:
        ``"sparsity"`` (the paper's adapted Bahdanau), ``"vanilla"``
        (standard Bahdanau) or ``"none"`` (Fig. 17).
    time_lag_encoder / time_lag_decoder:
        where the temporal-decay mechanism applies (Fig. 18); the
        paper's design is encoder-only.
    bidirectional / cross_loss:
        disable to ablate the bidirectional architecture (extra
        ablation beyond the paper).
    decay_mode:
        ``"scalar"`` is the paper's "scalar temporal decay factor";
        ``"vector"`` is the BRITS-style per-dimension decay.
    """

    hidden_size: int = 64
    sequence_length: int = DEFAULT_SEQUENCE_LENGTH
    attention: str = "sparsity"
    attention_hidden: int = 32
    time_lag_encoder: bool = True
    time_lag_decoder: bool = False
    bidirectional: bool = True
    cross_loss: bool = True
    decay_mode: str = "scalar"
    cell: str = "lstm"
    learning_rate: float = 1e-3
    epochs: int = 120
    batch_size: int = 32
    grad_clip: float = 5.0
    time_lag_scale: float = 10.0
    seed: int = 29

    def __post_init__(self) -> None:
        if self.attention not in ATTENTION_KINDS:
            raise ImputationError(f"unknown attention {self.attention!r}")
        if self.decay_mode not in DECAY_MODES:
            raise ImputationError(f"unknown decay mode {self.decay_mode!r}")
        if self.cell not in CELL_KINDS:
            raise ImputationError(f"unknown cell {self.cell!r}")
        if self.hidden_size <= 0 or self.sequence_length <= 0:
            raise ImputationError("sizes must be positive")
        if self.epochs < 0 or self.batch_size <= 0:
            raise ImputationError("invalid training settings")
        if not self.bidirectional and self.cross_loss:
            self.cross_loss = False  # cross loss needs both directions

    # ------------------------------------------------------------------
    # Serialisation (checkpoint manifests)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able field dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BiSIMConfig":
        """Rebuild a config from :meth:`to_dict` output.

        The key set must match the fields exactly — a checkpoint
        written by a different library version (extra *or* missing
        fields) must fail loudly, not half-apply with defaults.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        missing = sorted(known - set(data))
        if unknown or missing:
            raise ImputationError(
                f"BiSIMConfig field mismatch; unknown={unknown}, "
                f"missing={missing}"
            )
        return cls(**data)
