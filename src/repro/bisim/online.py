"""Online fingerprint imputation (the paper's future-work item).

Section VII: *"In future work, it is of interest to design more
efficient methods that enable online imputation of fingerprints."*
This module implements that extension on top of a trained BiSIM: an
online query fingerprint (one scan from a user's device) is imputed by
conditioning the trained encoder on the most similar survey context.

Mechanics: during :meth:`OnlineImputer.fit` we keep the training
chunks.  At query time we pick the chunk whose (masked) final
fingerprint is most similar to the query, append the query as an extra
encoder step (with the user-supplied time gap driving the Eq. 1 decay),
run the forward encoder, and read the final complemented vector.  Cost
is one encoder pass over ``T+1`` steps — milliseconds — versus
retraining, which is what makes it *online*.

Serving API
-----------
:meth:`OnlineImputer.impute_batch` is the production entry point: it
selects context chunks for *all* queries with a handful of matmuls
(the ``‖a‖²+‖b‖²−2a·b`` expansion over the chunk index), groups the
queries by selected-chunk length, and runs **one batched forward
encoder pass per group** — the :class:`~repro.neuro.LSTMCell` already
takes ``(batch, input)`` inputs, so stacking queries replaces the
per-query Python loop.  :meth:`OnlineImputer.impute_fingerprint` stays
as the single-scan reference implementation the parity tests compare
against.  Shape contract mirrors the positioning layer: ``(n, D)`` in
→ ``(n, D)`` out, ``(D,)`` in → ``(D,)`` out (``squeeze=False`` forces
``(1, D)``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..constants import RSSI_MAX, RSSI_MIN
from ..exceptions import ImputationError
from ..neuro import Tensor
from ..radiomap import RadioMap
from .config import BiSIMConfig
from .features import (
    SequenceChunk,
    prepare_chunks_with_paths,
    time_lag_vectors,
    time_lag_vectors_batched,
)
from .trainer import BiSIMTrainer


class OnlineImputer:
    """Imputes single online fingerprints with a trained BiSIM encoder."""

    def __init__(self, trainer: BiSIMTrainer):
        if trainer.space is None:
            raise ImputationError("trainer must be fitted first")
        self._trainer = trainer
        self._chunks: List[SequenceChunk] = []
        self._chunk_paths: Optional[np.ndarray] = None

    @property
    def trainer(self) -> BiSIMTrainer:
        """The fitted trainer backing this imputer (for map imputation)."""
        return self._trainer

    @classmethod
    def fit(
        cls,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        config: Optional[BiSIMConfig] = None,
    ) -> "OnlineImputer":
        """Train a BiSIM on the radio map and build the online index."""
        config = config or BiSIMConfig()
        trainer = BiSIMTrainer(radio_map.n_aps, config)
        trainer.fit(radio_map, amended_mask)
        imputer = cls(trainer)
        imputer.index(radio_map, amended_mask)
        return imputer

    def index(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> None:
        """(Re)build the full context index from a radio map."""
        assert self._trainer.space is not None
        chunks, paths = prepare_chunks_with_paths(
            radio_map,
            amended_mask,
            self._trainer.space,
            self._trainer.config.sequence_length,
        )
        self._set_chunks(chunks, paths)

    def refreshed(
        self,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        path_ids,
    ) -> "OnlineImputer":
        """A copy of this imputer with the given paths' chunks rebuilt.

        The trainer (and its weights) is shared; only the context
        chunks of the *dirty* paths are re-sliced from the updated
        radio map — clean paths keep their existing chunks, and the
        result is bit-identical to a full :meth:`index` over the
        updated map (chunks are kept in canonical ascending-path
        order).  Returns a **new** imputer so the serving layer can
        swap it in atomically; the in-place variant is
        :meth:`refresh_paths`.

        Imputers restored from artifacts written before chunk→path
        metadata existed fall back to a full re-index.
        """
        assert self._trainer.space is not None
        fresh = OnlineImputer(self._trainer)
        if self._chunk_paths is None:
            # Legacy index without path metadata: full rebuild.
            fresh.index(radio_map, amended_mask)
            return fresh
        dirty = {int(p) for p in np.asarray(path_ids).ravel()}
        new_chunks, new_paths = prepare_chunks_with_paths(
            radio_map,
            amended_mask,
            self._trainer.space,
            self._trainer.config.sequence_length,
            paths=dirty,
        )
        by_path: dict = {}
        for chunk, pid in zip(new_chunks, new_paths):
            by_path.setdefault(pid, []).append(chunk)
        for chunk, pid in zip(self._chunks, self._chunk_paths):
            if int(pid) not in dirty:
                by_path.setdefault(int(pid), []).append(chunk)
        chunks: List[SequenceChunk] = []
        paths: List[int] = []
        for pid in sorted(by_path):
            chunks.extend(by_path[pid])
            paths.extend([pid] * len(by_path[pid]))
        fresh._set_chunks(chunks, paths)
        return fresh

    def refresh_paths(
        self,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        path_ids,
    ) -> int:
        """In-place :meth:`refreshed` (single-threaded use only).

        Returns the number of context chunks now indexed.  Not safe
        under concurrent :meth:`impute_batch` calls — a serving layer
        should swap in the imputer returned by :meth:`refreshed`
        instead.
        """
        fresh = self.refreshed(radio_map, amended_mask, path_ids)
        self._adopt(fresh)
        return len(self._chunks)

    def _adopt(self, other: "OnlineImputer") -> None:
        self._chunks = other._chunks
        self._chunk_paths = other._chunk_paths
        self._last_fp = other._last_fp
        self._last_m = other._last_m
        self._all_fp = other._all_fp
        self._all_m = other._all_m
        self._chunk_lengths = other._chunk_lengths

    @property
    def chunk_paths(self) -> Optional[np.ndarray]:
        """Per-chunk survey-path ids (``None`` on legacy restores)."""
        return self._chunk_paths

    def _set_chunks(
        self,
        chunks: List[SequenceChunk],
        paths: Optional[List[int]] = None,
    ) -> None:
        """Install the context chunks and precompute the stacked views
        over the index, so the batched query path is pure matmuls at
        serve time (also the restore path for checkpoint loading).
        ``paths`` tags each chunk with its survey path, enabling the
        incremental :meth:`refreshed`; ``None`` (legacy checkpoints)
        disables it."""
        if not chunks:
            raise ImputationError("no context chunks available")
        if paths is not None and len(paths) != len(chunks):
            raise ImputationError("chunk/path metadata length mismatch")
        self._chunks = chunks
        self._chunk_paths = (
            None if paths is None else np.asarray(paths, dtype=int)
        )
        self._last_fp = np.stack([c.fingerprints[-1] for c in self._chunks])
        self._last_m = np.stack([c.fp_mask[-1] for c in self._chunks])
        self._all_fp = np.vstack([c.fingerprints for c in self._chunks])
        self._all_m = np.vstack([c.fp_mask for c in self._chunks])
        self._chunk_lengths = np.array(
            [c.length for c in self._chunks], dtype=int
        )

    # ------------------------------------------------------------------
    # Checkpointing (see :mod:`repro.bisim.checkpoint`)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint trainer + context index as a ``"bisim.online"``
        artifact, so a fresh process can serve without retraining."""
        from .checkpoint import save_online_imputer

        save_online_imputer(self, path)

    @classmethod
    def load(cls, path) -> "OnlineImputer":
        """Rebuild a serving-ready imputer from a :meth:`save` artifact."""
        from .checkpoint import load_online_imputer

        return load_online_imputer(path)

    # ------------------------------------------------------------------
    def impute_fingerprint(
        self,
        fingerprint: np.ndarray,
        *,
        time_gap: float = 2.0,
    ) -> np.ndarray:
        """Impute the missing entries of one online fingerprint.

        This is the per-query *reference* implementation; production
        batches should go through :meth:`impute_batch`, which computes
        the same values vectorized.

        Parameters
        ----------
        fingerprint:
            ``(D,)`` RSSI vector with NaN for missing readings.
        time_gap:
            Seconds assumed between the context's last record and the
            online scan (drives the temporal decay).

        Returns
        -------
        A complete ``(D,)`` fingerprint; observed entries pass through,
        missing ones are model estimates clipped into [-99, 0] dBm.
        """
        space = self._trainer.space
        assert space is not None
        fp = np.asarray(fingerprint, dtype=float)
        model = self._trainer.model
        if fp.shape != (model.n_aps,):
            raise ImputationError(
                f"fingerprint must be ({model.n_aps},)"
            )
        query_mask = np.isfinite(fp).astype(float)
        query_norm = space.normalize_fp(fp) * query_mask

        chunk = self._most_similar_chunk(query_norm, query_mask)

        # Extended sequence: context chunk + the online scan.
        fp_seq = np.vstack([chunk.fingerprints, query_norm])
        m_seq = np.vstack([chunk.fp_mask, query_mask])
        times = np.concatenate(
            [
                chunk.times,
                [chunk.times[-1] + time_gap / space.time_lag_scale],
            ]
        )
        lags = time_lag_vectors(times, m_seq)

        state = model.encoder.initial_state(1)
        fc_last = None
        for i in range(fp_seq.shape[0]):
            _, fc, state = model.encoder.step(
                Tensor(fp_seq[None, i]),
                Tensor(m_seq[None, i]),
                Tensor(lags[None, i]),
                state,
            )
            fc_last = fc
        assert fc_last is not None
        imputed = space.denormalize_fp(fc_last.data[0])

        # Blend the encoder estimate with a masked signal-space KNN
        # estimate over the indexed records: the encoder contributes
        # temporal context, the neighbours contribute per-dimension
        # level calibration.  Dimensions no neighbour ever observed
        # fall back to the encoder alone.
        knn = self._knn_estimate(query_norm, query_mask)
        knn_dbm = space.denormalize_fp(knn)

        blended = np.where(
            np.isfinite(knn), 0.5 * imputed + 0.5 * knn_dbm, imputed
        )
        blended = np.clip(blended, RSSI_MIN, RSSI_MAX)
        out = fp.copy()
        missing = query_mask == 0
        out[missing] = blended[missing]
        return out

    def _knn_estimate(
        self,
        query_norm: np.ndarray,
        query_mask: np.ndarray,
        k: int = 3,
    ) -> np.ndarray:
        """Per-dimension mean of the k most similar indexed records.

        Similarity uses the dimensions both records observed; returns
        NaN for dimensions none of the neighbours observed (all values
        in normalised feature space).
        """
        all_fp = self._all_fp
        all_m = self._all_m

        both = (all_m == 1) & (query_mask[None, :] == 1)
        counts = both.sum(axis=1)
        diff = np.where(both, all_fp - query_norm[None, :], 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            dist = np.sqrt((diff**2).sum(axis=1)) / np.maximum(counts, 1)
        dist[counts == 0] = np.inf
        order = np.argsort(dist, kind="stable")[:k]
        neigh_fp = all_fp[order]
        neigh_m = all_m[order]
        seen = neigh_m.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            estimate = (neigh_fp * neigh_m).sum(axis=0) / seen
        estimate[seen == 0] = np.nan
        return estimate

    def impute_batch(
        self,
        fingerprints: np.ndarray,
        *,
        time_gap: float = 2.0,
        squeeze: bool = True,
    ) -> np.ndarray:
        """Impute a batch of online fingerprints, fully vectorized.

        Context selection runs as matmuls over the whole batch; the
        encoder then runs once per selected-chunk length with all the
        group's extended sequences stacked into one ``(G, D)`` batch
        per time step.  Numerically equivalent to calling
        :meth:`impute_fingerprint` per row (the parity tests assert
        agreement to ``atol=1e-8``).

        Parameters
        ----------
        fingerprints:
            ``(n, D)`` RSSI batch (NaN = missing) or one ``(D,)`` scan.
        time_gap:
            Seconds assumed between each context's last record and the
            online scan.
        squeeze:
            When True (default) a ``(D,)`` query returns ``(D,)``;
            with ``squeeze=False`` the output is always ``(n, D)``.
        """
        space = self._trainer.space
        assert space is not None
        model = self._trainer.model
        fps = np.asarray(fingerprints, dtype=float)
        single = fps.ndim == 1
        if single:
            fps = fps[None, :]
        if fps.ndim != 2 or fps.shape[1] != model.n_aps:
            raise ImputationError(
                f"fingerprints must be (n, {model.n_aps})"
            )
        if fps.shape[0] == 0:
            return np.empty((0, model.n_aps))
        query_mask = np.isfinite(fps).astype(float)
        query_norm = space.normalize_fp(fps) * query_mask

        chunk_idx = self._select_chunks(query_norm, query_mask)
        imputed = np.empty_like(fps)
        lengths = self._chunk_lengths[chunk_idx]
        for t_len in np.unique(lengths):
            group = np.where(lengths == t_len)[0]
            imputed[group] = self._encode_group(
                query_norm[group],
                query_mask[group],
                chunk_idx[group],
                time_gap,
            )

        knn = self._knn_estimate_batch(query_norm, query_mask)
        knn_dbm = space.denormalize_fp(knn)
        blended = np.where(
            np.isfinite(knn), 0.5 * imputed + 0.5 * knn_dbm, imputed
        )
        blended = np.clip(blended, RSSI_MIN, RSSI_MAX)
        out = fps.copy()
        missing = query_mask == 0
        out[missing] = blended[missing]
        return out[0] if single and squeeze else out

    def _select_chunks(
        self, query_norm: np.ndarray, query_mask: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_most_similar_chunk` over ``(B, D)`` queries.

        The masked distance ``Σ_d m·(f−q)²`` expands into three matmuls
        against the precomputed chunk index; ``argmin`` keeps the
        loop's first-strict-minimum tie-break.
        """
        ml, fl = self._last_m, self._last_fp
        counts = query_mask @ ml.T  # (B, C) overlap sizes
        sq = (
            query_mask @ (ml * fl**2).T
            - 2.0 * (query_norm @ (ml * fl).T)
            + (query_norm**2) @ ml.T
        )
        dist = np.sqrt(np.maximum(sq, 0.0)) / np.sqrt(
            np.maximum(counts, 1.0)
        )
        # No overlap: compare observability patterns instead
        # (|a−b| = a+b−2ab for 0/1 masks).
        mismatch = (
            query_mask.sum(axis=1)[:, None]
            + ml.sum(axis=1)[None, :]
            - 2.0 * counts
        ) / ml.shape[1]
        dist = np.where(counts > 0, dist, 1.0 + mismatch)
        return np.argmin(dist, axis=1)

    def _encode_group(
        self,
        query_norm: np.ndarray,
        query_mask: np.ndarray,
        chunk_idx: np.ndarray,
        time_gap: float,
    ) -> np.ndarray:
        """One batched encoder pass over same-length extended sequences.

        Returns the ``(G, D)`` denormalised final complemented vectors.
        """
        space = self._trainer.space
        assert space is not None
        model = self._trainer.model
        chunks = [self._chunks[i] for i in chunk_idx]
        ctx_fp = np.stack([c.fingerprints for c in chunks])
        ctx_m = np.stack([c.fp_mask for c in chunks])
        ctx_t = np.stack([c.times for c in chunks])
        fp_seq = np.concatenate([ctx_fp, query_norm[:, None, :]], axis=1)
        m_seq = np.concatenate([ctx_m, query_mask[:, None, :]], axis=1)
        times = np.concatenate(
            [ctx_t, ctx_t[:, -1:] + time_gap / space.time_lag_scale],
            axis=1,
        )
        lags = time_lag_vectors_batched(times, m_seq)

        state = model.encoder.initial_state(fp_seq.shape[0])
        fc_last = None
        for i in range(fp_seq.shape[1]):
            _, fc_last, state = model.encoder.step(
                Tensor(fp_seq[:, i]),
                Tensor(m_seq[:, i]),
                Tensor(lags[:, i]),
                state,
            )
        assert fc_last is not None
        return space.denormalize_fp(fc_last.data)

    def _knn_estimate_batch(
        self,
        query_norm: np.ndarray,
        query_mask: np.ndarray,
        k: int = 3,
    ) -> np.ndarray:
        """Vectorized :meth:`_knn_estimate` over ``(B, D)`` queries."""
        all_fp, all_m = self._all_fp, self._all_m
        counts = query_mask @ all_m.T  # (B, R)
        sq = (
            query_mask @ (all_m * all_fp**2).T
            - 2.0 * (query_norm @ (all_m * all_fp).T)
            + (query_norm**2) @ all_m.T
        )
        dist = np.sqrt(np.maximum(sq, 0.0)) / np.maximum(counts, 1.0)
        dist[counts == 0] = np.inf
        order = np.argsort(dist, axis=1, kind="stable")[:, :k]
        neigh_fp = all_fp[order]  # (B, k, D)
        neigh_m = all_m[order]
        seen = neigh_m.sum(axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            estimate = (neigh_fp * neigh_m).sum(axis=1) / seen
        estimate[seen == 0] = np.nan
        return estimate

    # ------------------------------------------------------------------
    def _most_similar_chunk(
        self, query_norm: np.ndarray, query_mask: np.ndarray
    ) -> SequenceChunk:
        """Context chunk whose final fingerprint best matches the query.

        Similarity is measured on the dimensions both sides observed;
        ties and empty overlaps fall back to overall observed-pattern
        similarity.
        """
        best: Tuple[float, Optional[SequenceChunk]] = (np.inf, None)
        for chunk in self._chunks:
            last_fp = chunk.fingerprints[-1]
            last_m = chunk.fp_mask[-1]
            both = (last_m == 1) & (query_mask == 1)
            if both.any():
                d = float(
                    np.linalg.norm(
                        (last_fp[both] - query_norm[both])
                    )
                ) / np.sqrt(both.sum())
            else:
                # No overlap: compare observability patterns instead.
                d = 1.0 + float(
                    np.abs(last_m - query_mask).mean()
                )
            if d < best[0]:
                best = (d, chunk)
        assert best[1] is not None
        return best[1]
