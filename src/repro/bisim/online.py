"""Online fingerprint imputation (the paper's future-work item).

Section VII: *"In future work, it is of interest to design more
efficient methods that enable online imputation of fingerprints."*
This module implements that extension on top of a trained BiSIM: an
online query fingerprint (one scan from a user's device) is imputed by
conditioning the trained encoder on the most similar survey context.

Mechanics: during :meth:`OnlineImputer.fit` we keep the training
chunks.  At query time we pick the chunk whose (masked) final
fingerprint is most similar to the query, append the query as an extra
encoder step (with the user-supplied time gap driving the Eq. 1 decay),
run the forward encoder, and read the final complemented vector.  Cost
is one encoder pass over ``T+1`` steps — milliseconds — versus
retraining, which is what makes it *online*.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..constants import RSSI_MAX, RSSI_MIN
from ..exceptions import ImputationError
from ..neuro import Tensor
from ..radiomap import RadioMap
from .config import BiSIMConfig
from .features import SequenceChunk, prepare_chunks, time_lag_vectors
from .trainer import BiSIMTrainer


class OnlineImputer:
    """Imputes single online fingerprints with a trained BiSIM encoder."""

    def __init__(self, trainer: BiSIMTrainer):
        if trainer.space is None:
            raise ImputationError("trainer must be fitted first")
        self._trainer = trainer
        self._chunks: List[SequenceChunk] = []

    @classmethod
    def fit(
        cls,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        config: Optional[BiSIMConfig] = None,
    ) -> "OnlineImputer":
        """Train a BiSIM on the radio map and build the online index."""
        config = config or BiSIMConfig()
        trainer = BiSIMTrainer(radio_map.n_aps, config)
        trainer.fit(radio_map, amended_mask)
        imputer = cls(trainer)
        imputer.index(radio_map, amended_mask)
        return imputer

    def index(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> None:
        """(Re)build the context index from a radio map."""
        assert self._trainer.space is not None
        self._chunks = prepare_chunks(
            radio_map,
            amended_mask,
            self._trainer.space,
            self._trainer.config.sequence_length,
        )
        if not self._chunks:
            raise ImputationError("no context chunks available")

    # ------------------------------------------------------------------
    def impute_fingerprint(
        self,
        fingerprint: np.ndarray,
        *,
        time_gap: float = 2.0,
    ) -> np.ndarray:
        """Impute the missing entries of one online fingerprint.

        Parameters
        ----------
        fingerprint:
            ``(D,)`` RSSI vector with NaN for missing readings.
        time_gap:
            Seconds assumed between the context's last record and the
            online scan (drives the temporal decay).

        Returns
        -------
        A complete ``(D,)`` fingerprint; observed entries pass through,
        missing ones are model estimates clipped into [-99, 0] dBm.
        """
        space = self._trainer.space
        assert space is not None
        fp = np.asarray(fingerprint, dtype=float)
        model = self._trainer.model
        if fp.shape != (model.n_aps,):
            raise ImputationError(
                f"fingerprint must be ({model.n_aps},)"
            )
        query_mask = np.isfinite(fp).astype(float)
        query_norm = space.normalize_fp(fp) * query_mask

        chunk = self._most_similar_chunk(query_norm, query_mask)

        # Extended sequence: context chunk + the online scan.
        fp_seq = np.vstack([chunk.fingerprints, query_norm])
        m_seq = np.vstack([chunk.fp_mask, query_mask])
        times = np.concatenate(
            [
                chunk.times,
                [chunk.times[-1] + time_gap / space.time_lag_scale],
            ]
        )
        lags = time_lag_vectors(times, m_seq)

        state = model.encoder.initial_state(1)
        fc_last = None
        for i in range(fp_seq.shape[0]):
            _, fc, state = model.encoder.step(
                Tensor(fp_seq[None, i]),
                Tensor(m_seq[None, i]),
                Tensor(lags[None, i]),
                state,
            )
            fc_last = fc
        assert fc_last is not None
        imputed = space.denormalize_fp(fc_last.data[0])

        # Blend the encoder estimate with a masked signal-space KNN
        # estimate over the indexed records: the encoder contributes
        # temporal context, the neighbours contribute per-dimension
        # level calibration.  Dimensions no neighbour ever observed
        # fall back to the encoder alone.
        knn = self._knn_estimate(query_norm, query_mask)
        knn_dbm = space.denormalize_fp(knn)

        out = fp.copy()
        missing = np.where(query_mask == 0)[0]
        for d in missing:
            if np.isfinite(knn[d]):
                value = 0.5 * imputed[d] + 0.5 * knn_dbm[d]
            else:
                value = imputed[d]
            out[d] = np.clip(value, RSSI_MIN, RSSI_MAX)
        return out

    def _knn_estimate(
        self,
        query_norm: np.ndarray,
        query_mask: np.ndarray,
        k: int = 3,
    ) -> np.ndarray:
        """Per-dimension mean of the k most similar indexed records.

        Similarity uses the dimensions both records observed; returns
        NaN for dimensions none of the neighbours observed (all values
        in normalised feature space).
        """
        rows = []
        masks = []
        for chunk in self._chunks:
            rows.append(chunk.fingerprints)
            masks.append(chunk.fp_mask)
        all_fp = np.vstack(rows)
        all_m = np.vstack(masks)

        both = (all_m == 1) & (query_mask[None, :] == 1)
        counts = both.sum(axis=1)
        diff = np.where(both, all_fp - query_norm[None, :], 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            dist = np.sqrt((diff**2).sum(axis=1)) / np.maximum(counts, 1)
        dist[counts == 0] = np.inf
        order = np.argsort(dist, kind="stable")[:k]
        neigh_fp = all_fp[order]
        neigh_m = all_m[order]
        seen = neigh_m.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            estimate = (neigh_fp * neigh_m).sum(axis=0) / seen
        estimate[seen == 0] = np.nan
        return estimate

    def impute_batch(
        self, fingerprints: np.ndarray, *, time_gap: float = 2.0
    ) -> np.ndarray:
        """Impute several online fingerprints (row-wise)."""
        fps = np.asarray(fingerprints, dtype=float)
        if fps.ndim == 1:
            fps = fps[None, :]
        return np.stack(
            [
                self.impute_fingerprint(fps[i], time_gap=time_gap)
                for i in range(fps.shape[0])
            ]
        )

    # ------------------------------------------------------------------
    def _most_similar_chunk(
        self, query_norm: np.ndarray, query_mask: np.ndarray
    ) -> SequenceChunk:
        """Context chunk whose final fingerprint best matches the query.

        Similarity is measured on the dimensions both sides observed;
        ties and empty overlaps fall back to overall observed-pattern
        similarity.
        """
        best: Tuple[float, Optional[SequenceChunk]] = (np.inf, None)
        for chunk in self._chunks:
            last_fp = chunk.fingerprints[-1]
            last_m = chunk.fp_mask[-1]
            both = (last_m == 1) & (query_mask == 1)
            if both.any():
                d = float(
                    np.linalg.norm(
                        (last_fp[both] - query_norm[both])
                    )
                ) / np.sqrt(both.sum())
            else:
                # No overlap: compare observability patterns instead.
                d = 1.0 + float(
                    np.abs(last_m - query_mask).mean()
                )
            if d < best[0]:
                best = (d, chunk)
        assert best[1] is not None
        return best[1]
