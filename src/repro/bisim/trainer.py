"""BiSIM training loop and full-map imputation driver."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..constants import RSSI_MAX, RSSI_MIN
from ..exceptions import ImputationError
from ..neuro import Adam
from ..radiomap import RadioMap
from .config import BiSIMConfig
from .features import (
    FeatureSpace,
    SequenceChunk,
    batch_chunks,
    build_feature_space,
    prepare_chunks,
    stack_batch,
)
from .loss import overall_loss
from .model import BiSIM


@dataclass
class TrainingHistory:
    """Per-epoch training record: mean loss and wall-clock seconds.

    ``best_epoch`` (0-based index of the lowest mean loss) is what the
    trainer's best-loss checkpointing keys on, so early-stopping and
    checkpoint decisions stay inspectable after the fact.
    """

    losses: List[float] = field(default_factory=list)
    epoch_seconds: List[float] = field(default_factory=list)

    def record(self, loss: float, seconds: float) -> None:
        self.losses.append(float(loss))
        self.epoch_seconds.append(float(seconds))

    @property
    def n_epochs(self) -> int:
        return len(self.losses)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ImputationError("model has not been trained")
        return self.losses[-1]

    @property
    def best_epoch(self) -> int:
        """Index of the epoch with the lowest mean loss."""
        if not self.losses:
            raise ImputationError("model has not been trained")
        return int(np.argmin(self.losses))

    @property
    def best_loss(self) -> float:
        if not self.losses:
            raise ImputationError("model has not been trained")
        return float(min(self.losses))

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))


class BiSIMTrainer:
    """Trains a :class:`BiSIM` on one radio map and imputes it.

    The model is trained self-supervised on reconstruction of observed
    entries (Section IV-D); imputation then assembles the Eq. 13
    outputs chunk by chunk back into a complete radio map.
    """

    def __init__(self, n_aps: int, config: BiSIMConfig):
        self.config = config
        self.model = BiSIM(n_aps, config)
        self.space: FeatureSpace | None = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def fit(
        self,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        *,
        keep_best: bool = True,
    ) -> TrainingHistory:
        """Train on the MNAR-filled radio map.

        With ``keep_best`` (the default) the weights are checkpointed
        in memory whenever an epoch improves on the best mean loss so
        far, and the best checkpoint is restored after the last epoch —
        so the model that gets served (or saved) is the best one seen,
        not whatever the final epoch happened to leave behind.
        ``history.best_epoch`` records which epoch that was.
        """
        cfg = self.config
        self.space = build_feature_space(radio_map, cfg.time_lag_scale)
        chunks = prepare_chunks(
            radio_map, amended_mask, self.space, cfg.sequence_length
        )
        batches = batch_chunks(chunks, cfg.batch_size)
        optimizer = Adam(self.model.parameters(), lr=cfg.learning_rate)
        rng = np.random.default_rng(cfg.seed + 1)

        best_loss = np.inf
        best_state: Optional[dict] = None
        for _ in range(cfg.epochs):
            epoch_start = time.perf_counter()
            order = rng.permutation(len(batches))
            epoch_losses = []
            for b in order:
                batch = batches[int(b)]
                fp, m, rp, k, times = stack_batch(batch)
                optimizer.zero_grad()
                fwd, bwd = self.model.forward(fp, m, rp, k, times)
                loss = overall_loss(
                    fwd, bwd, fp, m, rp, k, use_cross=cfg.cross_loss
                )
                loss.backward()
                optimizer.clip_gradients(cfg.grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            mean_loss = float(np.mean(epoch_losses))
            self.history.record(
                mean_loss, time.perf_counter() - epoch_start
            )
            if keep_best and mean_loss < best_loss:
                best_loss = mean_loss
                best_state = self.model.state_dict()
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self.history

    # ------------------------------------------------------------------
    # Checkpointing (see :mod:`repro.bisim.checkpoint`)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the fitted trainer (weights, feature space,
        config, history) as a ``"bisim.trainer"`` artifact."""
        from .checkpoint import save_trainer

        save_trainer(self, path)

    @classmethod
    def load(cls, path) -> "BiSIMTrainer":
        """Rebuild a fitted trainer from a :meth:`save` artifact."""
        from .checkpoint import load_trainer

        return load_trainer(path)

    # ------------------------------------------------------------------
    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> tuple:
        """Impute MARs and missing RPs; returns ``(fingerprints, rps)``.

        Observed values (and MNAR fills) are passed through unchanged —
        the complemented vectors copy them by construction — while MAR
        RSSIs are clipped into the observable range [-99, 0] dBm
        (footnote 2: a MAR would have been observed, so its value must
        be a legal observation).
        """
        if self.space is None:
            raise ImputationError("call fit() before impute()")
        cfg = self.config
        chunks = prepare_chunks(
            radio_map, amended_mask, self.space, cfg.sequence_length
        )
        fingerprints = radio_map.fingerprints.copy()
        rps = radio_map.rps.copy()
        for batch in batch_chunks(chunks, cfg.batch_size):
            fp, m, rp, k, times = stack_batch(batch)
            f_out, l_out = self.model.impute_batch(fp, m, rp, k, times)
            self._write_back(
                batch, f_out, l_out, fingerprints, rps, amended_mask
            )
        return fingerprints, rps

    def _write_back(
        self,
        batch: List[SequenceChunk],
        f_out: np.ndarray,
        l_out: np.ndarray,
        fingerprints: np.ndarray,
        rps: np.ndarray,
        amended_mask: np.ndarray,
    ) -> None:
        assert self.space is not None
        for b, chunk in enumerate(batch):
            f_imputed = self.space.denormalize_fp(f_out[b])
            l_imputed = self.space.denormalize_rp(l_out[b])
            for t, row in enumerate(chunk.rows):
                mar = amended_mask[row] == 0
                fingerprints[row, mar] = np.clip(
                    f_imputed[t, mar], RSSI_MIN, RSSI_MAX
                )
                if not np.isfinite(rps[row]).all():
                    rps[row] = l_imputed[t]
