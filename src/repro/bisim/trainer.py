"""BiSIM training loop and full-map imputation driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..constants import RSSI_MAX, RSSI_MIN
from ..exceptions import ImputationError
from ..neuro import Adam
from ..radiomap import RadioMap
from .config import BiSIMConfig
from .features import (
    FeatureSpace,
    SequenceChunk,
    batch_chunks,
    build_feature_space,
    prepare_chunks,
    stack_batch,
)
from .loss import overall_loss
from .model import BiSIM


@dataclass
class TrainingHistory:
    """Per-epoch mean training loss."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ImputationError("model has not been trained")
        return self.losses[-1]


class BiSIMTrainer:
    """Trains a :class:`BiSIM` on one radio map and imputes it.

    The model is trained self-supervised on reconstruction of observed
    entries (Section IV-D); imputation then assembles the Eq. 13
    outputs chunk by chunk back into a complete radio map.
    """

    def __init__(self, n_aps: int, config: BiSIMConfig):
        self.config = config
        self.model = BiSIM(n_aps, config)
        self.space: FeatureSpace | None = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def fit(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> TrainingHistory:
        """Train on the MNAR-filled radio map."""
        cfg = self.config
        self.space = build_feature_space(radio_map, cfg.time_lag_scale)
        chunks = prepare_chunks(
            radio_map, amended_mask, self.space, cfg.sequence_length
        )
        batches = batch_chunks(chunks, cfg.batch_size)
        optimizer = Adam(self.model.parameters(), lr=cfg.learning_rate)
        rng = np.random.default_rng(cfg.seed + 1)

        for _ in range(cfg.epochs):
            order = rng.permutation(len(batches))
            epoch_losses = []
            for b in order:
                batch = batches[int(b)]
                fp, m, rp, k, times = stack_batch(batch)
                optimizer.zero_grad()
                fwd, bwd = self.model.forward(fp, m, rp, k, times)
                loss = overall_loss(
                    fwd, bwd, fp, m, rp, k, use_cross=cfg.cross_loss
                )
                loss.backward()
                optimizer.clip_gradients(cfg.grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
            self.history.losses.append(float(np.mean(epoch_losses)))
        return self.history

    # ------------------------------------------------------------------
    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> tuple:
        """Impute MARs and missing RPs; returns ``(fingerprints, rps)``.

        Observed values (and MNAR fills) are passed through unchanged —
        the complemented vectors copy them by construction — while MAR
        RSSIs are clipped into the observable range [-99, 0] dBm
        (footnote 2: a MAR would have been observed, so its value must
        be a legal observation).
        """
        if self.space is None:
            raise ImputationError("call fit() before impute()")
        cfg = self.config
        chunks = prepare_chunks(
            radio_map, amended_mask, self.space, cfg.sequence_length
        )
        fingerprints = radio_map.fingerprints.copy()
        rps = radio_map.rps.copy()
        for batch in batch_chunks(chunks, cfg.batch_size):
            fp, m, rp, k, times = stack_batch(batch)
            f_out, l_out = self.model.impute_batch(fp, m, rp, k, times)
            self._write_back(
                batch, f_out, l_out, fingerprints, rps, amended_mask
            )
        return fingerprints, rps

    def _write_back(
        self,
        batch: List[SequenceChunk],
        f_out: np.ndarray,
        l_out: np.ndarray,
        fingerprints: np.ndarray,
        rps: np.ndarray,
        amended_mask: np.ndarray,
    ) -> None:
        assert self.space is not None
        for b, chunk in enumerate(batch):
            f_imputed = self.space.denormalize_fp(f_out[b])
            l_imputed = self.space.denormalize_rp(l_out[b])
            for t, row in enumerate(chunk.rows):
                mar = amended_mask[row] == 0
                fingerprints[row, mar] = np.clip(
                    f_imputed[t, mar], RSSI_MIN, RSSI_MAX
                )
                if not np.isfinite(rps[row]).all():
                    rps[row] = l_imputed[t]
