"""BiSIM checkpointing: trainers and online imputers as artifacts.

Two artifact kinds live here:

* ``"bisim.trainer"`` — a fitted :class:`BiSIMTrainer`: model weights,
  the fitted :class:`FeatureSpace`, the :class:`BiSIMConfig`, and the
  training history.  Enough to impute radio maps in a fresh process.
* ``"bisim.online"`` — a :class:`OnlineImputer`: the trainer payload
  plus the serialized context-chunk index, so the online serving path
  boots without a radio map or any retraining.

:class:`BiSIMTrainerCache` keys fitted trainers on a content hash of
(radio map, amended mask, config); the experiment harness wires one
instance into every :class:`~repro.bisim.imputer.BiSIMImputer` so
figures sharing a (config, seed, radio map) triple train once and
reuse the model.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..artifacts import (
    Artifact,
    ArtifactStore,
    content_hash,
    load_artifact,
    merge_prefixed,
    pack_ragged,
    save_artifact,
    split_prefixed,
    unpack_ragged,
)
from ..exceptions import ArtifactError, ImputationError
from ..radiomap import RadioMap
from .config import BiSIMConfig
from .features import FeatureSpace, SequenceChunk
from .online import OnlineImputer
from .trainer import BiSIMTrainer, TrainingHistory

TRAINER_KIND = "bisim.trainer"
ONLINE_KIND = "bisim.online"

Payload = Tuple[Dict[str, Any], Dict[str, np.ndarray], Dict[str, Any]]


# ----------------------------------------------------------------------
# Trainer payloads
# ----------------------------------------------------------------------
def trainer_payload(trainer: BiSIMTrainer) -> Payload:
    """``(config, arrays, metrics)`` of a fitted trainer.

    Exposed separately from :func:`save_trainer` so composite
    artifacts (online imputer, serving shard) can embed a trainer
    under a name prefix.
    """
    if trainer.space is None:
        raise ImputationError("cannot checkpoint an unfitted trainer")
    config = {
        "n_aps": int(trainer.model.n_aps),
        "bisim": trainer.config.to_dict(),
        "time_lag_scale": float(trainer.space.time_lag_scale),
    }
    arrays: Dict[str, np.ndarray] = {}
    merge_prefixed(arrays, "model.", trainer.model.state_dict())
    arrays["space.rp_min"] = np.asarray(trainer.space.rp_min, dtype=float)
    arrays["space.rp_span"] = np.asarray(
        trainer.space.rp_span, dtype=float
    )
    arrays["history.losses"] = np.asarray(
        trainer.history.losses, dtype=float
    )
    arrays["history.epoch_seconds"] = np.asarray(
        trainer.history.epoch_seconds, dtype=float
    )
    metrics: Dict[str, Any] = {}
    if trainer.history.losses:
        metrics = {
            "final_loss": trainer.history.final_loss,
            "best_loss": trainer.history.best_loss,
            "best_epoch": trainer.history.best_epoch,
            "train_seconds": trainer.history.total_seconds,
        }
    return config, arrays, metrics


def trainer_from_payload(
    config: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> BiSIMTrainer:
    """Inverse of :func:`trainer_payload`."""
    try:
        n_aps = int(config["n_aps"])
        bisim_config = BiSIMConfig.from_dict(config["bisim"])
        time_lag_scale = float(config["time_lag_scale"])
    except (KeyError, TypeError) as exc:
        raise ArtifactError(
            f"malformed trainer checkpoint config: {exc}"
        ) from exc
    trainer = BiSIMTrainer(n_aps, bisim_config)
    trainer.model.load_state_dict(split_prefixed(arrays, "model."))
    trainer.space = FeatureSpace(
        rp_min=arrays["space.rp_min"].copy(),
        rp_span=arrays["space.rp_span"].copy(),
        time_lag_scale=time_lag_scale,
    )
    trainer.history = TrainingHistory(
        losses=[float(x) for x in arrays["history.losses"]],
        epoch_seconds=[
            float(x) for x in arrays["history.epoch_seconds"]
        ],
    )
    return trainer


def save_trainer(trainer: BiSIMTrainer, path) -> None:
    config, arrays, metrics = trainer_payload(trainer)
    save_artifact(
        Artifact(
            kind=TRAINER_KIND,
            arrays=arrays,
            config=config,
            metrics=metrics,
        ),
        path,
    )


def load_trainer(path) -> BiSIMTrainer:
    artifact = load_artifact(path, expected_kind=TRAINER_KIND)
    return trainer_from_payload(artifact.config, artifact.arrays)


# ----------------------------------------------------------------------
# Online-imputer payloads (trainer + context index)
# ----------------------------------------------------------------------
def online_payload(imputer: OnlineImputer) -> Payload:
    """``(config, arrays, metrics)`` of a serving-ready online imputer."""
    config, arrays_t, metrics = trainer_payload(imputer.trainer)
    chunks = imputer._chunks
    if not chunks:
        raise ImputationError(
            "cannot checkpoint an online imputer with no context index"
        )
    arrays: Dict[str, np.ndarray] = {}
    merge_prefixed(arrays, "trainer.", arrays_t)
    chunk_paths = imputer.chunk_paths
    groups = []
    for i, c in enumerate(chunks):
        group = {
            "rows": np.asarray(c.rows, dtype=np.int64),
            "fingerprints": c.fingerprints,
            "fp_mask": c.fp_mask,
            "rps": c.rps,
            "rp_mask": c.rp_mask,
            "times": c.times,
        }
        if chunk_paths is not None:
            # One id per row keeps the ragged-pack axis-0 contract;
            # restore reads the first entry.  Absent on imputers
            # restored from pre-path-metadata artifacts.
            group["path_ids"] = np.full(
                c.length, int(chunk_paths[i]), dtype=np.int64
            )
        groups.append(group)
    packed = pack_ragged(groups)
    merge_prefixed(arrays, "chunks.", packed)
    metrics = dict(metrics, n_context_chunks=len(chunks))
    return config, arrays, metrics


def online_from_payload(
    config: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> OnlineImputer:
    """Inverse of :func:`online_payload`."""
    trainer = trainer_from_payload(
        config, split_prefixed(arrays, "trainer.")
    )
    groups = unpack_ragged(split_prefixed(arrays, "chunks."))
    paths: Optional[list] = []
    for g in groups:
        pids = g.pop("path_ids", None)
        if pids is None:
            # Artifact predates chunk→path metadata: the index still
            # serves, but incremental refresh falls back to re-index.
            paths = None
        elif paths is not None:
            paths.append(int(pids[0]))
    imputer = OnlineImputer(trainer)
    imputer._set_chunks([SequenceChunk(**g) for g in groups], paths)
    return imputer


def save_online_imputer(imputer: OnlineImputer, path) -> None:
    config, arrays, metrics = online_payload(imputer)
    save_artifact(
        Artifact(
            kind=ONLINE_KIND,
            arrays=arrays,
            config=config,
            metrics=metrics,
        ),
        path,
    )


def load_online_imputer(path) -> OnlineImputer:
    artifact = load_artifact(path, expected_kind=ONLINE_KIND)
    return online_from_payload(artifact.config, artifact.arrays)


# ----------------------------------------------------------------------
# Keyed trainer cache (train once per (map, mask, config))
# ----------------------------------------------------------------------
class BiSIMTrainerCache:
    """Content-addressed cache of fitted :class:`BiSIMTrainer` objects.

    Keys hash the exact training inputs — the MNAR-filled radio map's
    arrays, the amended mask, and the full config — so two experiments
    that would train bit-identical models share one.  Entries live in
    a bounded in-memory LRU and, when a ``store`` is given, are also
    checkpointed to disk so later *processes* warm-start too (set the
    ``REPRO_ARTIFACT_CACHE`` environment variable to point the
    experiment harness at a directory).
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        max_memory_entries: int = 8,
        store_factory: Optional[
            Callable[[], Optional[ArtifactStore]]
        ] = None,
    ):
        self._memory: "OrderedDict[str, BiSIMTrainer]" = OrderedDict()
        self._store = store
        # Resolved lazily on first use, so constructing a cache at
        # import time has no filesystem side effects and env-var
        # configuration read by the factory stays live until then.
        self._store_factory = store_factory if store is None else None
        self.max_memory_entries = int(max_memory_entries)
        self.hits = 0
        self.misses = 0

    @property
    def store(self) -> Optional[ArtifactStore]:
        if self._store_factory is not None:
            factory, self._store_factory = self._store_factory, None
            self._store = factory()
        return self._store

    def key_for(
        self,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        config: BiSIMConfig,
    ) -> str:
        digest = content_hash(
            {
                "fingerprints": radio_map.fingerprints,
                "rps": radio_map.rps,
                "times": radio_map.times,
                "path_ids": radio_map.path_ids,
                "amended_mask": np.asarray(amended_mask),
            },
            config.to_dict(),
        )
        return f"bisim-{digest[:32]}"

    def get(self, key: str) -> Optional[BiSIMTrainer]:
        trainer = self._memory.get(key)
        if trainer is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return trainer
        if self.store is not None and self.store.exists(key):
            try:
                artifact = self.store.load(key, TRAINER_KIND)
                trainer = trainer_from_payload(
                    artifact.config, artifact.arrays
                )
            except ArtifactError:
                # A truncated/corrupted cache entry (e.g. from a
                # killed run) must degrade to a miss — the caller
                # retrains and put() overwrites the bad file.
                self.store.delete(key)
            else:
                self._remember(key, trainer)
                self.hits += 1
                return trainer
        self.misses += 1
        return None

    def put(self, key: str, trainer: BiSIMTrainer) -> None:
        self._remember(key, trainer)
        if self.store is not None:
            save_trainer(trainer, self.store.path_for(key))

    def get_or_train(
        self,
        radio_map: RadioMap,
        amended_mask: np.ndarray,
        config: BiSIMConfig,
    ) -> BiSIMTrainer:
        """Cached trainer for the inputs, fitting one on a miss."""
        key = self.key_for(radio_map, amended_mask, config)
        trainer = self.get(key)
        if trainer is None:
            trainer = BiSIMTrainer(radio_map.n_aps, config)
            trainer.fit(radio_map, amended_mask)
            self.put(key, trainer)
        return trainer

    def clear(self) -> None:
        self._memory.clear()

    def _remember(self, key: str, trainer: BiSIMTrainer) -> None:
        self._memory[key] = trainer
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
