"""BiSIM loss (Section IV-D).

    L_o = L_forward + L_backward + L_cross

Each term averages per-step masked MSEs over the sequence; the
reconstruction terms score the *predicted* vectors ``f'``/``l'``
against the inputs (the complemented vectors would leak the observed
entries), and the cross term ties the two directions' predictions
together.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..neuro import Tensor, masked_mse
from .model import DirectionOutput


def direction_loss(
    out: DirectionOutput,
    fp: np.ndarray,
    m: np.ndarray,
    rp: np.ndarray,
    k: np.ndarray,
) -> Tensor:
    """L_forward or L_backward for one direction.

    ``fp``/``rp`` are the (normalised) inputs in original time order —
    DirectionOutput lists are always aligned to that order.
    """
    t_len = len(out.f_prime)
    total: Optional[Tensor] = None
    for i in range(t_len):
        term = masked_mse(
            out.f_prime[i], Tensor(fp[:, i]), m[:, i]
        ) + masked_mse(out.l_prime[i], Tensor(rp[:, i]), k[:, i])
        total = term if total is None else total + term
    assert total is not None
    return total * (1.0 / t_len)


def cross_loss(
    fwd: DirectionOutput,
    bwd: DirectionOutput,
    m: np.ndarray,
    k: np.ndarray,
) -> Tensor:
    """L_cross: consistency of forward vs backward predictions."""
    t_len = len(fwd.f_prime)
    total: Optional[Tensor] = None
    for i in range(t_len):
        term = masked_mse(
            fwd.f_prime[i], bwd.f_prime[i], m[:, i]
        ) + masked_mse(fwd.l_prime[i], bwd.l_prime[i], k[:, i])
        total = term if total is None else total + term
    assert total is not None
    return total * (1.0 / t_len)


def overall_loss(
    fwd: DirectionOutput,
    bwd: Optional[DirectionOutput],
    fp: np.ndarray,
    m: np.ndarray,
    rp: np.ndarray,
    k: np.ndarray,
    *,
    use_cross: bool = True,
) -> Tensor:
    """L_o — forward + backward + cross (terms drop out as configured)."""
    loss = direction_loss(fwd, fp, m, rp, k)
    if bwd is not None:
        loss = loss + direction_loss(bwd, fp, m, rp, k)
        if use_cross:
            loss = loss + cross_loss(fwd, bwd, m, k)
    return loss
