"""Attention units (Section IV-C, Eqs. 9-12) with ablation variants.

The **sparsity-friendly** attention projects each encoder latent vector
``h_i`` into the AP-dimension space (``h'_i = W_a h_i + b_a``) and
zeroes the components of unobserved APs (``h''_i = h'_i ⊙ m_i``), so
nulls cannot inject noise into the alignment.  The alignment function
is a Bahdanau-style MLP; weights come from a softmax over energies, and
the context is the weighted sum of the masked projections.

``VanillaBahdanauAttention`` skips the mask projection (Fig. 17's
second variant); ``NoAttention`` supplies no context at all.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..exceptions import ImputationError
from ..neuro import MLP, Linear, Module, Tensor, concat, stack


class AttentionUnit(Module):
    """Interface: ``prepare`` caches encoder latents, ``step`` yields
    the context vector for one decoder step."""

    context_size: int = 0

    def prepare(
        self, latents: List[Tensor], masks: List[np.ndarray]
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def step(self, s_prev: Tensor) -> Optional[Tensor]:  # pragma: no cover
        raise NotImplementedError


class SparsityFriendlyAttention(AttentionUnit):
    """The paper's adapted Bahdanau attention (Eqs. 9-12)."""

    def __init__(
        self,
        hidden_size: int,
        n_aps: int,
        attention_hidden: int,
        rng: np.random.Generator,
    ):
        if hidden_size <= 0 or n_aps <= 0:
            raise ImputationError("sizes must be positive")
        self.context_size = n_aps
        self.project = Linear(hidden_size, n_aps, rng)  # W_a, b_a
        self.align = MLP(
            [hidden_size + n_aps, attention_hidden, 1], rng
        )
        self._masked: List[Tensor] = []

    def prepare(
        self, latents: List[Tensor], masks: List[np.ndarray]
    ) -> None:
        if len(latents) != len(masks):
            raise ImputationError("latents/masks length mismatch")
        self._masked = [
            self.project(h) * Tensor(m) for h, m in zip(latents, masks)
        ]

    def step(self, s_prev: Tensor) -> Tensor:
        energies = [
            self.align(concat([s_prev, h2], axis=1))
            for h2 in self._masked
        ]
        e = concat(energies, axis=1)  # (B, T)
        alpha = e.softmax(axis=1)
        ctx = None
        for i, h2 in enumerate(self._masked):
            piece = alpha[:, i : i + 1] * h2
            ctx = piece if ctx is None else ctx + piece
        return ctx


class VanillaBahdanauAttention(AttentionUnit):
    """Standard Bahdanau attention over raw encoder latents."""

    def __init__(
        self,
        hidden_size: int,
        attention_hidden: int,
        rng: np.random.Generator,
    ):
        if hidden_size <= 0:
            raise ImputationError("hidden size must be positive")
        self.context_size = hidden_size
        self.align = MLP(
            [hidden_size * 2, attention_hidden, 1], rng
        )
        self._latents: List[Tensor] = []

    def prepare(
        self, latents: List[Tensor], masks: List[np.ndarray]
    ) -> None:
        self._latents = list(latents)

    def step(self, s_prev: Tensor) -> Tensor:
        energies = [
            self.align(concat([s_prev, h], axis=1))
            for h in self._latents
        ]
        e = concat(energies, axis=1)
        alpha = e.softmax(axis=1)
        ctx = None
        for i, h in enumerate(self._latents):
            piece = alpha[:, i : i + 1] * h
            ctx = piece if ctx is None else ctx + piece
        return ctx


class NoAttention(AttentionUnit):
    """Ablation: the decoder receives no context vector."""

    context_size = 0

    def prepare(
        self, latents: List[Tensor], masks: List[np.ndarray]
    ) -> None:
        pass

    def step(self, s_prev: Tensor) -> Optional[Tensor]:
        return None
