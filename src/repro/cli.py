"""Command-line interface: experiments plus the artifact pipeline.

Experiment reproduction (tables/figures)::

    python -m repro table5 --preset smoke
    python -m repro fig17 --preset bench
    python -m repro all --preset smoke

Artifact pipeline — stages communicate through versioned artifact
files (train once, serve many)::

    python -m repro train --venue kaide --preset smoke --out shard.npz
    python -m repro impute --venue kaide --model shard.npz --out map.npz
    python -m repro serve-bench --preset smoke --artifact shard.npz
    python -m repro ingest --venue kaide --out delta.npz --apply
    python -m repro load-test --preset smoke --threads 8 --drift

``load-test`` deploys two venues, replays a multi-threaded scenario
mix (Zipf venue skew, device re-scan duplicates, burst vs steady
arrival) through the micro-batching serving pipeline, and reports
p50/p95/p99 latency plus throughput against the single-caller
batch-256 baseline; ``--seed`` replays identical request streams,
``--drift`` interleaves ingestion-delta hot-applies with the traffic.

``ingest`` is the streaming write path: fold a fresh survey drop into
a delta artifact (chained on ``--base``'s content hash) and, with
``--apply``, hot-apply it to a live deployment.

``train`` runs the offline half (differentiate → fit BiSIM → fit
estimator) and writes a warm-start shard bundle;
:meth:`~repro.serving.PositioningService.deploy_from_artifact` boots
from it in a fresh process without retraining.  ``impute`` completes a
venue's radio map with a trained model and writes the imputed map.
``serve-bench`` benchmarks the serving subsystem, including cold-start
(train + deploy) versus warm-start (load artifact) timings.  With
``--workers N`` it instead runs the city-scale shard-fleet benchmark:
N worker processes serving a Zipf-skewed stream over ``--fleet-venues``
synthetic venues under a ``--memory-budget-mb`` LRU eviction budget,
compared head-to-head (and bit-for-bit) against one process::

    python -m repro serve-bench --workers 4 --fleet-venues 500

``obs`` exercises the unified telemetry layer end-to-end: it runs a
telemetry-instrumented load test and dumps the merged metric registry
(counters, gauges, streaming latency histograms) plus sampled trace
spans in Prometheus text or JSON snapshot form::

    python -m repro obs --preset smoke --format prometheus
    python -m repro obs --format json --out snapshot.json

``serve-bench --telemetry`` additionally measures the instrumentation
overhead (instrumented vs plain serve, reported as a percentage) and
verifies span coverage of every kernel stage.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .artifacts import load_artifact, read_manifest, split_prefixed
from .bisim import BiSIMConfig, BiSIMTrainer
from .bisim.checkpoint import (
    ONLINE_KIND,
    TRAINER_KIND,
    online_from_payload,
    trainer_from_payload,
)
from .core import TopoACDifferentiator
from .exceptions import ArtifactError, ReproError
from .obs import Telemetry, render_json, render_prometheus
from .experiments import (
    PRESETS,
    ablation_bidir,
    fig5,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig67,
    get_dataset,
    make_estimator,
    marshare,
    table5,
    table6,
    table7,
    table8,
)
from .imputers import fill_mnars
from .positioning import KERNELS
from .ingest import (
    DELTA_KIND,
    StreamIngestor,
    load_delta,
    simulate_new_survey,
)
from .radiomap import RadioMap, save_radio_map
from .serving import SHARD_KIND, PositioningService, VenueShard
from .serving import bench as serve_bench
from .serving import fleetbench, loadgen
from .tracking import TrackingScenario
from .tracking import loadgen as tracking_loadgen

EXPERIMENTS = {
    "table5": table5,
    "fig5": fig5,
    "fig67": fig67,
    "marshare": marshare,
    "fig12": fig12,
    "fig13": fig13,
    "table6": table6,
    "table7": table7,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "table8": table8,
    "ablation-bidir": ablation_bidir,
    "serve-bench": serve_bench,
}

#: Light experiments run first when ``all`` is requested.
_ALL_ORDER = [
    "table5",
    "fig5",
    "fig67",
    "marshare",
    "table7",
    "fig16",
    "fig17",
    "fig18",
    "ablation-bidir",
    "table6",
    "table8",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
]

#: Artifact-pipeline stages (everything else is an experiment name).
PIPELINE_COMMANDS = (
    "train",
    "impute",
    "ingest",
    "load-test",
    "track",
    "obs",
)

VENUES = ("kaide", "longhu")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Data Imputation for Sparse "
            "Radio Maps in Indoor Positioning' (ICDE 2023), and run "
            "the train/impute/serve artifact pipeline."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"] + list(PIPELINE_COMMANDS),
        metavar="command",
        help=(
            "a table/figure to regenerate (or 'all'), or a pipeline "
            f"stage: {', '.join(PIPELINE_COMMANDS)}"
        ),
    )
    parser.add_argument(
        "--preset",
        default="smoke",
        choices=sorted(PRESETS),
        help="experiment scale preset (default: smoke)",
    )
    pipeline = parser.add_argument_group(
        "artifact pipeline (train / impute / serve-bench)"
    )
    pipeline.add_argument(
        "--venue",
        default="kaide",
        choices=VENUES,
        help="venue dataset to train/impute on (default: kaide)",
    )
    pipeline.add_argument(
        "--out",
        help="output path: shard artifact (train) or radio map (impute)",
    )
    pipeline.add_argument(
        "--model",
        help="input artifact with a trained BiSIM (impute)",
    )
    pipeline.add_argument(
        "--artifact",
        help="where serve-bench keeps its warm-start shard bundle",
    )
    pipeline.add_argument(
        "--spatial-index",
        dest="spatial_index",
        action="store_true",
        default=True,
        help="serve-bench: time the spatial-indexed KNN path (default)",
    )
    pipeline.add_argument(
        "--no-spatial-index",
        dest="spatial_index",
        action="store_false",
        help="serve-bench: brute-force KNN only (A/B baseline)",
    )
    pipeline.add_argument(
        "--kernel",
        default="grouped",
        choices=KERNELS,
        help=(
            "serve-bench: indexed query kernel to headline (default: "
            "grouped); the fleet section always A/Bs it against the "
            "per-bucket loop"
        ),
    )
    pipeline.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "serve-bench: measure instrumentation overhead "
            "(instrumented vs plain serve) and trace span coverage "
            "of every kernel stage"
        ),
    )
    pipeline.add_argument(
        "--estimator",
        default="wknn",
        choices=("knn", "wknn", "rf"),
        help="location estimator to fit (train; default: wknn)",
    )
    pipeline.add_argument(
        "--mean-fill",
        action="store_true",
        help="train without BiSIM (instant per-AP mean-fill deploy)",
    )
    pipeline.add_argument(
        "--epochs",
        type=int,
        help="override the preset's BiSIM epoch count (train)",
    )
    pipeline.add_argument(
        "--hidden-size",
        type=int,
        help="override the preset's BiSIM hidden size (train)",
    )
    fleet = parser.add_argument_group(
        "shard fleet (serve-bench --workers N)"
    )
    fleet.add_argument(
        "--workers",
        type=int,
        help=(
            "serve-bench: run the multi-process shard-fleet benchmark "
            "with this many worker processes instead of the "
            "single-shard bench (try 4)"
        ),
    )
    fleet.add_argument(
        "--memory-budget-mb",
        dest="memory_budget_mb",
        type=float,
        help=(
            "per-registry memory budget in MiB; shards above it are "
            "LRU-evicted (default: sized to keep ~40%% of the venue "
            "pool resident)"
        ),
    )
    fleet.add_argument(
        "--fleet-venues",
        dest="fleet_venues",
        type=int,
        default=500,
        help="synthetic venues in the city pool (default: 500)",
    )
    ingest = parser.add_argument_group(
        "streaming ingestion (ingest)"
    )
    ingest.add_argument(
        "--base",
        help=(
            "base artifact the delta chains on (shard bundle from "
            "train); its content hash becomes the delta's parent"
        ),
    )
    ingest.add_argument(
        "--new-passes",
        type=int,
        default=1,
        help=(
            "corridor-coverage passes of fresh survey records to "
            "ingest (default: 1)"
        ),
    )
    ingest.add_argument(
        "--apply",
        action="store_true",
        help=(
            "after writing the delta, deploy the venue and hot-apply "
            "it live (prints the apply report)"
        ),
    )
    load = parser.add_argument_group(
        "concurrent load test (load-test)"
    )
    load.add_argument(
        "--threads",
        type=int,
        default=8,
        help="worker threads submitting queries (default: 8)",
    )
    load.add_argument(
        "--requests",
        type=int,
        default=1024,
        help="requests per worker thread (default: 1024)",
    )
    load.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="micro-batch flush size (default: 256)",
    )
    load.add_argument(
        "--max-delay-ms",
        type=float,
        default=0.0,
        help="micro-batch flush deadline in ms (default: 0, flush\n eagerly; raise to trade latency for bigger batches)",
    )
    load.add_argument(
        "--duplicate-rate",
        type=float,
        help="override every scenario's device re-scan rate [0, 1]",
    )
    load.add_argument(
        "--seed",
        type=int,
        help=(
            "seed for every random choice downstream — scan pools, "
            "worker schedules, arrivals, drift deltas — so runs "
            "replay identically (default: the preset's dataset "
            "seed; also seeds the ingest stage's survey simulation)"
        ),
    )
    load.add_argument(
        "--drift",
        action="store_true",
        help=(
            "append the drift scenario: ingestion deltas hot-apply "
            "to a live venue while query traffic runs"
        ),
    )
    obs = parser.add_argument_group("telemetry dump (obs)")
    obs.add_argument(
        "--format",
        dest="obs_format",
        default="prometheus",
        choices=("prometheus", "json"),
        help=(
            "obs: export format for the merged metric/span snapshot "
            "(default: prometheus)"
        ),
    )
    obs.add_argument(
        "--sample-every",
        dest="sample_every",
        type=int,
        default=1,
        help=(
            "obs: keep one traced request in every N sampled "
            "(default: 1, trace everything)"
        ),
    )
    obs.add_argument(
        "--slow-ms",
        dest="slow_ms",
        type=float,
        help=(
            "obs: also log any span slower than this many ms to the "
            "slow-query log, regardless of sampling"
        ),
    )
    track = parser.add_argument_group("trajectory tracking (track)")
    track.add_argument(
        "--devices",
        type=int,
        default=32,
        help="simulated phones walking concurrently (default: 32)",
    )
    track.add_argument(
        "--scan-interval",
        type=float,
        default=1.0,
        help="seconds between a device's scans (default: 1.0)",
    )
    track.add_argument(
        "--duration",
        type=float,
        default=45.0,
        help="seconds each device walks (default: 45)",
    )
    track.add_argument(
        "--floors",
        type=int,
        default=1,
        help=(
            "stack the venue this many floors high and route every "
            "device through the portals (floor-classified shards, "
            "portal hand-off tracking); 1 = the single-floor path "
            "(default: 1)"
        ),
    )
    return parser


# ----------------------------------------------------------------------
# Pipeline stages
# ----------------------------------------------------------------------
def _bisim_config(args, config) -> BiSIMConfig:
    return BiSIMConfig(
        hidden_size=(
            config.hidden_size
            if args.hidden_size is None
            else args.hidden_size
        ),
        epochs=config.epochs if args.epochs is None else args.epochs,
        batch_size=config.batch_size,
    )


def build_shard(
    venue: str,
    config,
    *,
    estimator_name: str = "wknn",
    bisim_config: Optional[BiSIMConfig] = None,
) -> VenueShard:
    """The offline half of the pipeline for one synthetic venue.

    Deterministic in (venue, preset, estimator, BiSIM config) — the
    artifact round-trip tests rely on rebuilding this bit-identically.
    """
    dataset = get_dataset(venue, config)
    return VenueShard.build(
        venue,
        dataset.radio_map,
        TopoACDifferentiator(entities=dataset.venue.plan.entities),
        estimator=make_estimator(estimator_name.upper()),
        bisim_config=bisim_config,
    )


def _cmd_train(args, parser: argparse.ArgumentParser) -> int:
    if not args.out:
        parser.error("train requires --out PATH for the shard artifact")
    config = PRESETS[args.preset]
    bisim = None if args.mean_fill else _bisim_config(args, config)
    start = time.perf_counter()
    shard = build_shard(
        args.venue,
        config,
        estimator_name=args.estimator,
        bisim_config=bisim,
    )
    elapsed = time.perf_counter() - start
    shard.save(args.out)
    pipeline = "mean-fill" if bisim is None else (
        f"BiSIM(h={bisim.hidden_size}, epochs={bisim.epochs})"
    )
    print(
        f"trained {args.venue} [{pipeline} + "
        f"{shard.estimator.name}] in {elapsed:.1f}s "
        f"-> {args.out}"
    )
    if shard.online_imputer is not None:
        history = shard.online_imputer.trainer.history
        print(
            f"  best loss {history.best_loss:.4f} at epoch "
            f"{history.best_epoch + 1}/{history.n_epochs}"
        )
    return 0


def _trainer_from_artifact(path) -> BiSIMTrainer:
    """Extract a fitted BiSIM trainer from any artifact carrying one."""
    artifact = load_artifact(path)
    if artifact.kind == TRAINER_KIND:
        return trainer_from_payload(artifact.config, artifact.arrays)
    if artifact.kind == ONLINE_KIND:
        return online_from_payload(
            artifact.config, artifact.arrays
        ).trainer
    if artifact.kind == SHARD_KIND:
        if artifact.config.get("imputer") is None:
            raise ArtifactError(
                f"shard artifact {path} was trained with --mean-fill "
                "and carries no BiSIM model"
            )
        return online_from_payload(
            artifact.config["imputer"],
            split_prefixed(artifact.arrays, "imputer."),
        ).trainer
    raise ArtifactError(
        f"cannot extract a BiSIM trainer from artifact kind "
        f"{artifact.kind!r}"
    )


def _cmd_impute(args, parser: argparse.ArgumentParser) -> int:
    if not args.model or not args.out:
        parser.error("impute requires --model ARTIFACT and --out PATH")
    config = PRESETS[args.preset]
    trainer = _trainer_from_artifact(args.model)
    dataset = get_dataset(args.venue, config)
    radio_map = dataset.radio_map
    if trainer.model.n_aps != radio_map.n_aps:
        raise ArtifactError(
            f"artifact {args.model} was trained on "
            f"{trainer.model.n_aps} APs but venue {args.venue!r} "
            f"under preset {args.preset!r} has {radio_map.n_aps}"
        )
    mask = TopoACDifferentiator(
        entities=dataset.venue.plan.entities
    ).differentiate(radio_map)
    filled, amended = fill_mnars(radio_map, mask)
    start = time.perf_counter()
    fingerprints, rps = trainer.impute(filled, amended)
    elapsed = time.perf_counter() - start
    imputed = RadioMap(
        fingerprints=fingerprints,
        rps=rps,
        times=radio_map.times.copy(),
        path_ids=radio_map.path_ids.copy(),
    )
    save_radio_map(imputed, args.out)
    print(
        f"imputed {args.venue} with {args.model} in {elapsed:.1f}s "
        f"-> {args.out}"
    )
    print(f"  {imputed.describe()}")
    return 0


def _cmd_ingest(args, parser: argparse.ArgumentParser) -> int:
    """Streaming ingestion: records in → delta artifact out → apply.

    Simulates a fresh crowdsourced survey drop for the venue, folds it
    through a :class:`~repro.ingest.StreamIngestor`, and writes one
    lineage-chained delta artifact.  With ``--base`` the delta chains
    on an existing artifact's content hash; with ``--apply`` the venue
    is deployed and the delta hot-applied live, printing the apply
    report (rows, paths, cache keys invalidated/kept, latency).
    """
    if not args.out:
        parser.error("ingest requires --out PATH for the delta artifact")
    if args.new_passes < 1:
        parser.error("--new-passes must be >= 1")
    config = PRESETS[args.preset]
    seed = config.dataset_seed if args.seed is None else args.seed
    dataset = get_dataset(args.venue, config)
    parent_hash = None
    sequence = 0
    start_path_id = None
    if args.base:
        manifest = read_manifest(args.base)
        parent_hash = str(manifest["content_hash"])
        if manifest.get("kind") == DELTA_KIND:
            # Chaining on a previous delta resumes its sequence
            # numbering AND its path numbering — a new drop reusing
            # the parent delta's path ids would replace those paths
            # on apply instead of extending the map.
            sequence = (
                int(manifest.get("config", {}).get("sequence", -1)) + 1
            )
            parent_delta, _ = load_delta(args.base)
            start_path_id = max(
                int(dataset.radio_map.path_ids.max()),
                int(parent_delta.path_ids.max()),
            ) + 1
    tables = simulate_new_survey(
        dataset,
        n_passes=args.new_passes,
        seed=seed + 101 + sequence,
        start_path_id=start_path_id,
    )
    ingestor = StreamIngestor(
        dataset.radio_map.n_aps,
        parent_hash=parent_hash,
        sequence=sequence,
    )
    start = time.perf_counter()
    for table in tables:
        ingestor.ingest_table(table)
    published = ingestor.publish(args.out)
    elapsed = time.perf_counter() - start
    print(
        f"ingested {args.venue}: {ingestor.stats.render()} "
        f"in {elapsed:.2f}s -> {args.out}"
    )
    parent = published.parent_hash or "(unanchored)"
    print(
        f"  lineage: parent {parent[:12]} -> delta "
        f"{published.content_hash[:12]} (sequence "
        f"{published.sequence})"
    )
    if args.apply:
        service = PositioningService()
        service.deploy(
            args.venue,
            dataset.radio_map,
            TopoACDifferentiator(entities=dataset.venue.plan.entities),
        )
        report = service.apply_delta(args.venue, published.delta)
        print(f"  {report.describe()}")
        print(f"  {service.shard(args.venue).radio_map.describe()}")
    return 0


def _cmd_load_test(args, parser: argparse.ArgumentParser) -> int:
    if args.threads < 1:
        parser.error("--threads must be >= 1")
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.max_batch < 1:
        parser.error("--max-batch must be >= 1")
    if args.max_delay_ms < 0:
        parser.error("--max-delay-ms must be >= 0")
    if args.duplicate_rate is not None and not (
        0.0 <= args.duplicate_rate <= 1.0
    ):
        parser.error("--duplicate-rate must be in [0, 1]")
    config = PRESETS[args.preset]
    start = time.perf_counter()
    result = loadgen.run(
        config,
        threads=args.threads,
        requests_per_thread=args.requests,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        duplicate_rate=args.duplicate_rate,
        seed=args.seed,
        include_drift=args.drift,
    )
    elapsed = time.perf_counter() - start
    print(f"\n== {result.experiment_id} ({elapsed:.1f}s) ==")
    print(result.rendered)
    return 0


def _cmd_obs(args, parser: argparse.ArgumentParser) -> int:
    """Telemetry dump: instrumented load test → metric/span export.

    Runs the concurrent load test with a :class:`~repro.obs.Telemetry`
    bundle attached, then exports the merged registry (counters,
    gauges, streaming latency histograms) and sampled spans in the
    requested format.  The rendered load-test report (including live
    histogram percentiles) goes to stderr so stdout stays parseable;
    ``--out`` writes the export to a file instead.
    """
    if args.sample_every < 0:
        parser.error("--sample-every must be >= 0")
    if args.slow_ms is not None and args.slow_ms < 0:
        parser.error("--slow-ms must be >= 0")
    if args.threads < 1:
        parser.error("--threads must be >= 1")
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    config = PRESETS[args.preset]
    telemetry = Telemetry(
        sample_every=args.sample_every, slow_ms=args.slow_ms
    )
    start = time.perf_counter()
    result = loadgen.run(
        config,
        threads=args.threads,
        requests_per_thread=args.requests,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        duplicate_rate=args.duplicate_rate,
        seed=args.seed,
        include_drift=args.drift,
        telemetry=telemetry,
    )
    elapsed = time.perf_counter() - start
    print(
        f"\n== {result.experiment_id} ({elapsed:.1f}s) ==",
        file=sys.stderr,
    )
    print(result.rendered, file=sys.stderr)
    snapshot = telemetry.snapshot()
    if args.obs_format == "prometheus":
        rendered = render_prometheus(snapshot)
    else:
        rendered = render_json(snapshot)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered)
            if not rendered.endswith("\n"):
                fh.write("\n")
        print(
            f"wrote {args.obs_format} telemetry export -> {args.out}",
            file=sys.stderr,
        )
    else:
        print(rendered)
    return 0


def _cmd_track(args, parser: argparse.ArgumentParser) -> int:
    """Trajectory tracking: replay a walking fleet, score the gain."""
    if args.devices < 1:
        parser.error("--devices must be >= 1")
    if args.scan_interval <= 0:
        parser.error("--scan-interval must be positive")
    if args.duration <= args.scan_interval:
        parser.error("--duration must exceed --scan-interval")
    if args.floors < 1:
        parser.error("--floors must be >= 1")
    config = PRESETS[args.preset]
    start = time.perf_counter()
    if args.floors > 1:
        scenario = TrackingScenario(
            name="multifloor",
            devices=args.devices,
            scan_interval=args.scan_interval,
            duration=args.duration,
        )
        result = tracking_loadgen.run_multifloor(
            config,
            venue=args.venue,
            n_floors=args.floors,
            scenario=scenario,
            seed=args.seed,
        )
    else:
        scenario = TrackingScenario(
            devices=args.devices,
            scan_interval=args.scan_interval,
            duration=args.duration,
        )
        result = tracking_loadgen.run(
            config, venue=args.venue, scenario=scenario, seed=args.seed
        )
    elapsed = time.perf_counter() - start
    print(f"\n== {result.experiment_id} ({elapsed:.1f}s) ==")
    print(result.rendered)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.experiment == "train":
            return _cmd_train(args, parser)
        if args.experiment == "impute":
            return _cmd_impute(args, parser)
        if args.experiment == "ingest":
            return _cmd_ingest(args, parser)
        if args.experiment == "load-test":
            return _cmd_load_test(args, parser)
        if args.experiment == "track":
            return _cmd_track(args, parser)
        if args.experiment == "obs":
            return _cmd_obs(args, parser)
    except ReproError as exc:
        # Expected pipeline failures (bad artifact kind, AP-count
        # mismatch, …) are user errors, not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 1

    config = PRESETS[args.preset]
    names = _ALL_ORDER if args.experiment == "all" else [args.experiment]
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        if name == "serve-bench" and args.workers is not None:
            result = fleetbench.run(
                config,
                n_venues=args.fleet_venues,
                workers=args.workers,
                memory_budget_mb=args.memory_budget_mb,
                seed=args.seed,
            )
        elif name == "serve-bench":
            result = module.run(
                config,
                artifact_path=args.artifact,
                spatial_index=args.spatial_index,
                kernel=args.kernel,
                telemetry=args.telemetry,
            )
        else:
            result = module.run(config)
        elapsed = time.perf_counter() - start
        print(f"\n== {result.experiment_id} ({elapsed:.1f}s) ==")
        print(result.rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
