"""Command-line interface: ``python -m repro <experiment> [--preset P]``.

Runs any of the table/figure experiments and prints the rendered
result, e.g.::

    python -m repro table5 --preset smoke
    python -m repro fig17 --preset bench
    python -m repro all --preset smoke

``serve-bench`` exercises the serving subsystem instead of a paper
table: it times the batched online query path against the old
per-query loop (see :mod:`repro.serving.bench`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import (
    PRESETS,
    ablation_bidir,
    fig5,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig67,
    marshare,
    table5,
    table6,
    table7,
    table8,
)
from .serving import bench as serve_bench

EXPERIMENTS = {
    "table5": table5,
    "fig5": fig5,
    "fig67": fig67,
    "marshare": marshare,
    "fig12": fig12,
    "fig13": fig13,
    "table6": table6,
    "table7": table7,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "table8": table8,
    "ablation-bidir": ablation_bidir,
    "serve-bench": serve_bench,
}

#: Light experiments run first when ``all`` is requested.
_ALL_ORDER = [
    "table5",
    "fig5",
    "fig67",
    "marshare",
    "table7",
    "fig16",
    "fig17",
    "fig18",
    "ablation-bidir",
    "table6",
    "table8",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce tables/figures of 'Data Imputation for Sparse "
            "Radio Maps in Indoor Positioning' (ICDE 2023)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--preset",
        default="smoke",
        choices=sorted(PRESETS),
        help="experiment scale preset (default: smoke)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = PRESETS[args.preset]
    names = _ALL_ORDER if args.experiment == "all" else [args.experiment]
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        result = module.run(config)
        elapsed = time.perf_counter() - start
        print(f"\n== {result.experiment_id} ({elapsed:.1f}s) ==")
        print(result.rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
