"""SSGAN — semi-supervised GAN for time-series imputation [44].

A recurrent *generator* imputes the fingerprint sequence (same
complement-and-decay scheme as BRITS's forward pass); a per-step MLP
*discriminator* predicts, element-wise, which entries of the
complemented vector are genuine observations and which are generated.
The generator minimises reconstruction error plus an adversarial term
that pushes generated entries towards being indistinguishable from
observations; training alternates D and G steps.  The "semi-supervised"
component conditions the discriminator on the (normalised) RP label
when one is present, mirroring SSGAN's use of partial labels.

As with BRITS, RPs themselves are imputed with LI — GAN time-series
imputers have no label-sequence output.  The paper's Table VII notes
SSGAN is the slowest neural imputer because GAN training converges
slowly; the alternating updates reproduce that cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..bisim.features import (
    batch_chunks,
    build_feature_space,
    prepare_chunks,
    stack_batch,
    time_lag_vectors_batched,
)
from ..bisim.units import EncoderUnit
from ..constants import RSSI_MAX, RSSI_MIN
from ..neuro import MLP, Adam, Module, Tensor, concat, masked_mse
from ..radiomap import RadioMap, interpolate_rps_linear
from .base import ImputationResult, Imputer

_EPS = 1e-7


class _Generator(Module):
    def __init__(self, n_aps: int, hidden: int, rng: np.random.Generator):
        self.unit = EncoderUnit(n_aps, hidden, rng, use_time_lag=True)

    def run(self, fp, m, times):
        lag = time_lag_vectors_batched(times, m)
        state = self.unit.initial_state(fp.shape[0])
        primes, comps = [], []
        for i in range(fp.shape[1]):
            f_prime, fc, state = self.unit.step(
                Tensor(fp[:, i]), Tensor(m[:, i]), Tensor(lag[:, i]), state
            )
            primes.append(f_prime)
            comps.append(fc)
        return primes, comps


class _Discriminator(Module):
    """Element-wise real/imputed classifier, conditioned on the RP."""

    def __init__(self, n_aps: int, hidden: int, rng: np.random.Generator):
        self.mlp = MLP([n_aps + 2, hidden, n_aps], rng)

    def __call__(self, fc: Tensor, rp: Tensor) -> Tensor:
        return self.mlp(concat([fc, rp], axis=1)).sigmoid()


def _bce(p: Tensor, target: np.ndarray, weight: np.ndarray) -> Tensor:
    """Weighted binary cross entropy with clamping via +eps."""
    t = Tensor(target)
    w = Tensor(weight)
    pos = t * (p + _EPS).log()
    neg = (1.0 - t) * (1.0 - p + _EPS).log()
    return -((pos + neg) * w).mean()


@dataclass
class SSGANImputer(Imputer):
    """Adversarially-trained recurrent imputer for MAR RSSIs + LI RPs."""

    hidden_size: int = 64
    epochs: int = 100
    batch_size: int = 32
    learning_rate: float = 1e-3
    sequence_length: int = 5
    time_lag_scale: float = 10.0
    adversarial_weight: float = 0.1
    grad_clip: float = 5.0
    seed: int = 37
    name: str = field(default="SSGAN", init=False)

    last_g_losses_: Optional[List[float]] = field(
        default=None, init=False, repr=False
    )

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        space = build_feature_space(radio_map, self.time_lag_scale)
        chunks = prepare_chunks(
            radio_map, amended_mask, space, self.sequence_length
        )
        batches = batch_chunks(chunks, self.batch_size)
        rng_np = np.random.default_rng(self.seed)
        gen = _Generator(radio_map.n_aps, self.hidden_size, rng_np)
        disc = _Discriminator(radio_map.n_aps, self.hidden_size, rng_np)
        g_opt = Adam(gen.parameters(), lr=self.learning_rate)
        d_opt = Adam(disc.parameters(), lr=self.learning_rate)

        g_losses: List[float] = []
        for _ in range(self.epochs):
            epoch = []
            for b in rng_np.permutation(len(batches)):
                fp, m, rp, _k, times = stack_batch(batches[int(b)])
                t_len = fp.shape[1]

                # --- discriminator step (generator detached)
                d_opt.zero_grad()
                _, comps = gen.run(fp, m, times)
                d_loss = None
                for i in range(t_len):
                    p = disc(comps[i].detach(), Tensor(rp[:, i]))
                    term = _bce(p, m[:, i], np.ones_like(m[:, i]))
                    d_loss = term if d_loss is None else d_loss + term
                d_loss = d_loss * (1.0 / t_len)
                d_loss.backward()
                d_opt.clip_gradients(self.grad_clip)
                d_opt.step()

                # --- generator step
                g_opt.zero_grad()
                primes, comps = gen.run(fp, m, times)
                g_loss = None
                for i in range(t_len):
                    recon = masked_mse(
                        primes[i], Tensor(fp[:, i]), m[:, i]
                    )
                    p = disc(comps[i], Tensor(rp[:, i]))
                    # Fool D on the *imputed* entries only.
                    adv = _bce(
                        p, np.ones_like(m[:, i]), 1.0 - m[:, i]
                    )
                    term = recon + self.adversarial_weight * adv
                    g_loss = term if g_loss is None else g_loss + term
                g_loss = g_loss * (1.0 / t_len)
                g_loss.backward()
                g_opt.clip_gradients(self.grad_clip)
                g_opt.step()
                epoch.append(g_loss.item())
            g_losses.append(float(np.mean(epoch)))
        self.last_g_losses_ = g_losses

        # --- impute
        fingerprints = radio_map.fingerprints.copy()
        for batch in batch_chunks(chunks, self.batch_size):
            fp, m, _rp, _k, times = stack_batch(batch)
            _, comps = gen.run(fp, m, times)
            for b, chunk in enumerate(batch):
                for t, row in enumerate(chunk.rows):
                    imputed = space.denormalize_fp(comps[t].data[b])
                    mar = amended_mask[row] == 0
                    fingerprints[row, mar] = np.clip(
                        imputed[mar], RSSI_MIN, RSSI_MAX
                    )
        return ImputationResult(
            fingerprints=fingerprints,
            rps=interpolate_rps_linear(radio_map),
            kept_indices=np.arange(radio_map.n_records),
        )
