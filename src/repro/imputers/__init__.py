"""Data imputers: the common interface and every baseline of Section V-C.

BiSIM itself lives in :mod:`repro.bisim`; its :class:`BiSIMImputer`
conforms to the same :class:`Imputer` interface.
"""

from .base import ImputationResult, Imputer, fill_mnars, run_imputer
from .brits import BRITSImputer
from .matrix_factorization import MatrixFactorizationImputer
from .mice import MICEImputer
from .ssgan import SSGANImputer
from .traditional import (
    CaseDeletionImputer,
    LinearInterpolationImputer,
    SemiSupervisedImputer,
)

__all__ = [
    "BRITSImputer",
    "CaseDeletionImputer",
    "ImputationResult",
    "Imputer",
    "LinearInterpolationImputer",
    "MICEImputer",
    "MatrixFactorizationImputer",
    "SSGANImputer",
    "SemiSupervisedImputer",
    "fill_mnars",
    "run_imputer",
]
