"""Common imputer interface and the MNAR-fill pre-step.

The data-imputer stage of the framework (Section IV) first replaces all
identified MNARs with -100 dBm and amends the mask matrix so only MARs
remain 0; every concrete imputer then fills the remaining nulls —
MAR RSSIs and missing RPs — in its own way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..constants import MASK_MAR, MASK_MNAR, MASK_OBSERVED, MNAR_FILL
from ..exceptions import ImputationError
from ..radiomap import RadioMap


def fill_mnars(
    radio_map: RadioMap, mask: np.ndarray
) -> Tuple[RadioMap, np.ndarray]:
    """Fill MNAR entries with -100 dBm and amend the mask.

    Returns a copy of the radio map with MNAR nulls set to
    :data:`MNAR_FILL` and the amended mask ``M'`` where former MNARs are
    1 (treated as observed from here on) and only MARs remain 0.
    """
    if mask.shape != radio_map.fingerprints.shape:
        raise ImputationError("mask shape mismatch")
    out = radio_map.copy()
    mnar = mask == MASK_MNAR
    out.fingerprints[mnar] = MNAR_FILL
    amended = mask.copy()
    amended[mnar] = MASK_OBSERVED
    return out, amended


@dataclass
class ImputationResult:
    """A fully imputed radio map.

    Attributes
    ----------
    fingerprints:
        ``(N', D)`` complete fingerprints (no NaN).
    rps:
        ``(N', 2)`` complete RP labels (no NaN).
    kept_indices:
        Row indices of the input radio map that survive imputation —
        identity for all imputers except Case Deletion, which drops
        null-RP records.
    elapsed_seconds:
        Wall-clock imputation time, for the Table VII comparison.
    """

    fingerprints: np.ndarray
    rps: np.ndarray
    kept_indices: np.ndarray
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.fingerprints.shape[0] != self.rps.shape[0]:
            raise ImputationError("row count mismatch")
        if self.kept_indices.shape[0] != self.fingerprints.shape[0]:
            raise ImputationError("kept_indices mismatch")

    def validate_complete(self) -> None:
        if not np.isfinite(self.fingerprints).all():
            raise ImputationError("imputed fingerprints contain nulls")
        if not np.isfinite(self.rps).all():
            raise ImputationError("imputed RPs contain nulls")


@dataclass
class Imputer(ABC):
    """Fills MAR RSSIs and missing RPs of a MNAR-filled radio map."""

    name: str = field(default="imputer", init=False)

    @abstractmethod
    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        """Impute a radio map whose MNARs are already filled.

        Parameters
        ----------
        radio_map:
            Output of :func:`fill_mnars` — remaining fingerprint nulls
            are MARs, RP nulls are missing labels.
        amended_mask:
            ``M'`` with 1 for observed/MNAR-filled and 0 for MAR.
        """


def run_imputer(
    imputer: Imputer,
    radio_map: RadioMap,
    mask: np.ndarray,
) -> ImputationResult:
    """Full data-imputer stage: MNAR fill, then the concrete imputer.

    Timing covers the whole stage, matching Table VII's "total time
    cost to impute the radio map".
    """
    import time

    start = time.perf_counter()
    filled, amended = fill_mnars(radio_map, mask)
    result = imputer.impute(filled, amended)
    result.elapsed_seconds = time.perf_counter() - start
    result.validate_complete()
    return result
