"""MF — low-rank matrix-completion imputation [25].

Alternating least squares on the combined fingerprint+RP matrix: find
``U (N, r)`` and ``V (D+2, r)`` minimising the squared error on
observed cells plus an L2 penalty, then read the missing cells off
``U @ V.T``.  Columns are standardised first so RSSI (dBm) and RP
(metre) scales do not fight each other.

The paper's Table VII finds MF the slowest imputer — the radio map's
extreme sparsity makes ALS converge slowly — and Fig. 14/15 find its
accuracy collapsing as sparsity grows; both behaviours reproduce here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..radiomap import RadioMap
from .base import ImputationResult, Imputer


@dataclass
class MatrixFactorizationImputer(Imputer):
    """ALS matrix completion over fingerprints + RPs jointly."""

    rank: int = 8
    n_iterations: int = 40
    regularization: float = 0.5
    seed: int = 13
    name: str = field(default="MF", init=False)

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        matrix = np.concatenate(
            [radio_map.fingerprints, radio_map.rps], axis=1
        )
        observed = np.isfinite(matrix)

        # Standardise columns on observed entries.
        mean = np.zeros(matrix.shape[1])
        std = np.ones(matrix.shape[1])
        for j in range(matrix.shape[1]):
            obs = observed[:, j]
            if obs.any():
                mean[j] = matrix[obs, j].mean()
                s = matrix[obs, j].std()
                std[j] = s if s > 1e-9 else 1.0
        z = (matrix - mean) / std
        z[~observed] = 0.0

        n, m = z.shape
        r = min(self.rank, n, m)
        rng = np.random.default_rng(self.seed)
        u = rng.normal(scale=0.1, size=(n, r))
        v = rng.normal(scale=0.1, size=(m, r))
        eye = self.regularization * np.eye(r)

        for _ in range(self.n_iterations):
            for i in range(n):
                cols = observed[i]
                if not cols.any():
                    continue
                vv = v[cols]
                u[i] = np.linalg.solve(
                    vv.T @ vv + eye, vv.T @ z[i, cols]
                )
            for j in range(m):
                rows = observed[:, j]
                if not rows.any():
                    continue
                uu = u[rows]
                v[j] = np.linalg.solve(
                    uu.T @ uu + eye, uu.T @ z[rows, j]
                )

        completed = (u @ v.T) * std + mean
        completed[observed] = matrix[observed]
        d = radio_map.n_aps
        return ImputationResult(
            fingerprints=completed[:, :d],
            rps=completed[:, d:],
            kept_indices=np.arange(radio_map.n_records),
        )
