"""MICE — Multiple Imputation by Chained Equations [6].

Operates on the combined ``(N, D+2)`` matrix of fingerprints and RP
coordinates.  Every missing cell starts at its column mean; then, for a
number of rounds, each incomplete column is regressed (ridge
regression) on all other columns using its observed rows, and its
missing rows are replaced by the regression's predictions.  This is the
standard chained-equations loop; the ridge penalty keeps the
regressions sane in the paper's regime where columns outnumber rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..radiomap import RadioMap
from .base import ImputationResult, Imputer


@dataclass
class MICEImputer(Imputer):
    """Chained-equations imputation over fingerprints + RPs jointly."""

    n_rounds: int = 3
    ridge: float = 1.0
    name: str = field(default="MICE", init=False)

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        matrix = np.concatenate(
            [radio_map.fingerprints, radio_map.rps], axis=1
        )
        observed = np.isfinite(matrix)
        filled = _column_mean_fill(matrix, observed)

        incomplete_cols = np.where(~observed.all(axis=0))[0]
        for _ in range(self.n_rounds):
            for col in incomplete_cols:
                obs_rows = observed[:, col]
                if obs_rows.sum() < 2:
                    continue  # keep the mean fill
                others = np.delete(filled, col, axis=1)
                target = filled[obs_rows, col]
                beta, intercept = _ridge_fit(
                    others[obs_rows], target, self.ridge
                )
                pred = others[~obs_rows] @ beta + intercept
                filled[~obs_rows, col] = pred
        d = radio_map.n_aps
        return ImputationResult(
            fingerprints=filled[:, :d],
            rps=filled[:, d:],
            kept_indices=np.arange(radio_map.n_records),
        )


def _column_mean_fill(
    matrix: np.ndarray, observed: np.ndarray
) -> np.ndarray:
    filled = matrix.copy()
    col_means = np.zeros(matrix.shape[1])
    for j in range(matrix.shape[1]):
        obs = observed[:, j]
        col_means[j] = matrix[obs, j].mean() if obs.any() else 0.0
    rows, cols = np.where(~observed)
    filled[rows, cols] = col_means[cols]
    return filled


def _ridge_fit(x: np.ndarray, y: np.ndarray, lam: float):
    """Ridge regression with intercept; returns ``(beta, intercept)``."""
    x_mean = x.mean(axis=0)
    y_mean = y.mean()
    xc = x - x_mean
    yc = y - y_mean
    gram = xc.T @ xc + lam * np.eye(x.shape[1])
    beta = np.linalg.solve(gram, xc.T @ yc)
    return beta, y_mean - x_mean @ beta
