"""BRITS — Bidirectional Recurrent Imputation for Time Series [11].

BRITS imputes missing values in *feature* sequences only: a recurrent
cell walks the fingerprint sequence, regresses each step's vector from
the hidden state, complements missing entries, and applies a temporal
decay to the hidden state based on Eq.-1-style time lags.  Forward and
backward passes are trained jointly with a consistency loss.  Because
BRITS has no notion of a label sequence, missing RPs are filled with
the LI strategy afterwards, exactly as the paper's comparison sets it
up ("BRITS cannot impute RSSIs and RPs jointly").

Structurally this is BiSIM's encoder without the decoder — which is
precisely the point of the comparison: Table VI attributes *-BiSIM's
advantage to the encoder-decoder capturing fingerprint↔RP correlations
that BRITS cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..bisim.features import (
    FeatureSpace,
    batch_chunks,
    build_feature_space,
    prepare_chunks,
    stack_batch,
    time_lag_vectors_batched,
)
from ..bisim.units import EncoderUnit
from ..constants import RSSI_MAX, RSSI_MIN
from ..neuro import Adam, Module, Tensor, masked_mse
from ..radiomap import RadioMap, interpolate_rps_linear
from .base import ImputationResult, Imputer


class _BRITSModel(Module):
    """Two independent recurrent imputers (forward / backward)."""

    def __init__(self, n_aps: int, hidden: int, seed: int):
        rng = np.random.default_rng(seed)
        self.fwd = EncoderUnit(n_aps, hidden, rng, use_time_lag=True)
        self.bwd = EncoderUnit(n_aps, hidden, rng, use_time_lag=True)

    def run(
        self,
        unit: EncoderUnit,
        fp: np.ndarray,
        m: np.ndarray,
        times: np.ndarray,
        *,
        reverse: bool,
    ) -> Tuple[List[Tensor], List[Tensor]]:
        if reverse:
            fp = fp[:, ::-1]
            m = m[:, ::-1]
            times = -times[:, ::-1]
        lag = time_lag_vectors_batched(times, m)
        state = unit.initial_state(fp.shape[0])
        primes: List[Tensor] = []
        comps: List[Tensor] = []
        for i in range(fp.shape[1]):
            f_prime, fc, state = unit.step(
                Tensor(fp[:, i]), Tensor(m[:, i]), Tensor(lag[:, i]), state
            )
            primes.append(f_prime)
            comps.append(fc)
        if reverse:
            primes.reverse()
            comps.reverse()
        return primes, comps


@dataclass
class BRITSImputer(Imputer):
    """BRITS for MAR RSSIs + linear interpolation for RPs."""

    hidden_size: int = 64
    epochs: int = 100
    batch_size: int = 32
    learning_rate: float = 1e-3
    sequence_length: int = 5
    time_lag_scale: float = 10.0
    grad_clip: float = 5.0
    seed: int = 31
    name: str = field(default="BRITS", init=False)

    last_losses_: Optional[List[float]] = field(
        default=None, init=False, repr=False
    )

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        space = build_feature_space(radio_map, self.time_lag_scale)
        chunks = prepare_chunks(
            radio_map, amended_mask, space, self.sequence_length
        )
        batches = batch_chunks(chunks, self.batch_size)
        model = _BRITSModel(radio_map.n_aps, self.hidden_size, self.seed)
        optimizer = Adam(model.parameters(), lr=self.learning_rate)
        rng = np.random.default_rng(self.seed + 1)

        losses: List[float] = []
        for _ in range(self.epochs):
            epoch = []
            for b in rng.permutation(len(batches)):
                fp, m, _rp, _k, times = stack_batch(batches[int(b)])
                optimizer.zero_grad()
                fp_f, _ = model.run(model.fwd, fp, m, times, reverse=False)
                fp_b, _ = model.run(model.bwd, fp, m, times, reverse=True)
                loss = None
                t_len = fp.shape[1]
                for i in range(t_len):
                    term = (
                        masked_mse(fp_f[i], Tensor(fp[:, i]), m[:, i])
                        + masked_mse(fp_b[i], Tensor(fp[:, i]), m[:, i])
                        + masked_mse(fp_f[i], fp_b[i], m[:, i])
                    )
                    loss = term if loss is None else loss + term
                loss = loss * (1.0 / t_len)
                loss.backward()
                optimizer.clip_gradients(self.grad_clip)
                optimizer.step()
                epoch.append(loss.item())
            losses.append(float(np.mean(epoch)))
        self.last_losses_ = losses

        # --- impute
        fingerprints = radio_map.fingerprints.copy()
        for batch in batch_chunks(chunks, self.batch_size):
            fp, m, _rp, _k, times = stack_batch(batch)
            _, comp_f = model.run(model.fwd, fp, m, times, reverse=False)
            _, comp_b = model.run(model.bwd, fp, m, times, reverse=True)
            for b, chunk in enumerate(batch):
                for t, row in enumerate(chunk.rows):
                    avg = (comp_f[t].data[b] + comp_b[t].data[b]) / 2.0
                    imputed = space.denormalize_fp(avg)
                    mar = amended_mask[row] == 0
                    fingerprints[row, mar] = np.clip(
                        imputed[mar], RSSI_MIN, RSSI_MAX
                    )
        return ImputationResult(
            fingerprints=fingerprints,
            rps=interpolate_rps_linear(radio_map),
            kept_indices=np.arange(radio_map.n_records),
        )
