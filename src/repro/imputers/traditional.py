"""Traditional imputers from the indoor-positioning literature.

* **CD** (Case Deletion [32]) — drop records with null RPs; fill every
  remaining missing RSSI with -100 dBm.
* **LI** (Linear Interpolation [37]) — like CD for RSSIs, but keep all
  records and interpolate missing RPs linearly along each survey path.
* **SL** (Semi-supervised Learning [49]) — replace LI's interpolation
  with iterative label propagation: records with observed RPs seed the
  label set; unlabeled records repeatedly receive the
  fingerprint-similarity-weighted mean RP of labelled neighbours until
  convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import MNAR_FILL
from ..exceptions import ImputationError
from ..radiomap import RadioMap, interpolate_rps_linear
from .base import ImputationResult, Imputer


def _fill_remaining_rssis(fingerprints: np.ndarray) -> np.ndarray:
    """Traditional imputers treat leftover RSSI nulls as -100 dBm."""
    out = fingerprints.copy()
    out[~np.isfinite(out)] = MNAR_FILL
    return out


@dataclass
class CaseDeletionImputer(Imputer):
    """CD: delete null-RP records, -100-fill missing RSSIs."""

    name: str = field(default="CD", init=False)

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        kept = radio_map.observed_rp_indices()
        if kept.size == 0:
            raise ImputationError("CD removed every record (no observed RPs)")
        return ImputationResult(
            fingerprints=_fill_remaining_rssis(
                radio_map.fingerprints[kept]
            ),
            rps=radio_map.rps[kept].copy(),
            kept_indices=kept,
        )


@dataclass
class LinearInterpolationImputer(Imputer):
    """LI: keep all records, interpolate RPs linearly along paths."""

    name: str = field(default="LI", init=False)

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        return ImputationResult(
            fingerprints=_fill_remaining_rssis(radio_map.fingerprints),
            rps=interpolate_rps_linear(radio_map),
            kept_indices=np.arange(radio_map.n_records),
        )


@dataclass
class SemiSupervisedImputer(Imputer):
    """SL: iterative similarity-weighted RP label propagation.

    Fingerprint similarity is computed on -100-filled vectors with a
    Gaussian kernel; each iteration assigns every unlabeled record the
    weighted mean of its ``n_neighbors`` most similar *labelled*
    records, then adds it to the labelled pool for the next round.
    """

    n_neighbors: int = 5
    max_iterations: int = 10
    bandwidth: float = 10.0
    name: str = field(default="SL", init=False)

    def impute(
        self, radio_map: RadioMap, amended_mask: np.ndarray
    ) -> ImputationResult:
        fp = _fill_remaining_rssis(radio_map.fingerprints)
        rps = radio_map.rps.copy()
        labelled = radio_map.rp_observed_mask.copy()
        if not labelled.any():
            raise ImputationError("SL needs at least one observed RP")

        for _ in range(self.max_iterations):
            unlabelled = np.where(~labelled)[0]
            if unlabelled.size == 0:
                break
            lab_idx = np.where(labelled)[0]
            k = min(self.n_neighbors, lab_idx.size)
            newly = []
            for i in unlabelled:
                d = np.linalg.norm(fp[lab_idx] - fp[i], axis=1)
                nearest = np.argsort(d, kind="stable")[:k]
                w = np.exp(-d[nearest] / self.bandwidth)
                if w.sum() <= 0:
                    w = np.ones_like(w)
                rps[i] = (
                    w[:, None] * rps[lab_idx[nearest]]
                ).sum(axis=0) / w.sum()
                newly.append(i)
            labelled[newly] = True
        return ImputationResult(
            fingerprints=fp,
            rps=rps,
            kept_indices=np.arange(radio_map.n_records),
        )
