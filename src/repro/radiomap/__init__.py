"""Radio-map creation, containers, perturbations, I/O and statistics."""

from .builder import (
    CellStats,
    RadioMapBuilder,
    RadioMapDelta,
    apply_radio_map_delta,
)
from .creation import create_radio_map, create_radio_map_for_path
from .interpolation import interpolate_rps_linear
from .io import export_csv, load_radio_map, save_radio_map
from .multifloor import FloorRadioMaps, build_floor_radio_maps
from .perturb import (
    RemovedValues,
    remove_for_imputation_eval,
    remove_rssi_fraction,
    scale_rp_density,
)
from .radiomap import RadioMap, RadioMapTruth, concatenate_radio_maps
from .stats import RadioMapStats, compute_stats

__all__ = [
    "CellStats",
    "FloorRadioMaps",
    "RadioMap",
    "RadioMapBuilder",
    "RadioMapDelta",
    "RadioMapStats",
    "RadioMapTruth",
    "RemovedValues",
    "apply_radio_map_delta",
    "build_floor_radio_maps",
    "compute_stats",
    "concatenate_radio_maps",
    "create_radio_map",
    "create_radio_map_for_path",
    "export_csv",
    "interpolate_rps_linear",
    "load_radio_map",
    "remove_for_imputation_eval",
    "remove_rssi_fraction",
    "save_radio_map",
    "scale_rp_density",
]
