"""Radio-map statistics in the shape of the paper's Table V."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..venue import VenueSpec
from .radiomap import RadioMap


@dataclass(frozen=True)
class RadioMapStats:
    """One Table V row for a venue + created radio map."""

    venue: str
    floor_area_m2: float
    rp_density_per_100m2: float
    n_fingerprints: int
    n_rps: int
    n_aps: int
    missing_rssi_rate: float
    missing_rp_rate: float

    def as_row(self) -> str:
        return (
            f"{self.venue:<8} area={self.floor_area_m2:8.1f} m2  "
            f"RP density={self.rp_density_per_100m2:5.2f}/100m2  "
            f"#fingerprints={self.n_fingerprints:5d}  "
            f"#RPs={self.n_rps:4d}  #APs={self.n_aps:4d}  "
            f"missing RSSI={100 * self.missing_rssi_rate:5.1f}%  "
            f"missing RP={100 * self.missing_rp_rate:5.1f}%"
        )


def compute_stats(venue: VenueSpec, radio_map: RadioMap) -> RadioMapStats:
    """Compute Table V statistics for a venue's created radio map.

    ``n_fingerprints`` counts records with at least one observed RSSI
    (pure-RP rows do not carry a fingerprint); ``n_rps`` counts distinct
    observed RP coordinates, matching Table V's "# of RPs".
    """
    has_fp = radio_map.rssi_observed_mask.any(axis=1)
    observed_rps = radio_map.rps[radio_map.rp_observed_mask]
    n_unique_rps = (
        np.unique(observed_rps.round(6), axis=0).shape[0]
        if observed_rps.size
        else 0
    )
    return RadioMapStats(
        venue=venue.name,
        floor_area_m2=venue.plan.area,
        rp_density_per_100m2=100.0 * venue.n_rps / venue.plan.area,
        n_fingerprints=int(has_fp.sum()),
        n_rps=n_unique_rps,
        n_aps=radio_map.n_aps,
        missing_rssi_rate=radio_map.missing_rssi_rate,
        missing_rp_rate=radio_map.missing_rp_rate,
    )
