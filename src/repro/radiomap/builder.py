"""Streaming radio-map construction with mergeable running cell stats.

The Section II-B merge (see :mod:`repro.radiomap.creation` for the
paper's two-step description) is implemented here as an *incremental*
fold so radio maps can be grown from a live record stream instead of
rebuilt from scratch on every survey drop:

* every survey path accumulates **cells** — the output units of merge
  Step 1.  A cell carries running statistics (start time, merged RSSI
  vector under the paper's pairwise-average rule, records-merged
  count, ground-truth aggregates), so appending an in-order record is
  O(1): it either folds into the open tail cell or starts a new one;
* Step 2 (attaching RP records to adjacent RSSI cells) is a cheap
  linear pass that runs at materialisation time, per *dirty* path
  only — clean paths reuse their cached row arrays;
* out-of-order records (a late chunk from a crowdsourcing gateway)
  re-fold just the affected path, never the whole map.

The fold is exactly the batch merge: a :meth:`RadioMapBuilder.snapshot`
over any chunking/interleaving of a record stream is bit-identical to
:func:`~repro.radiomap.creation.create_radio_map` over the same
records (the property tests shuffle chunk order and assert equality),
and the batch functions are now thin wrappers over this builder.
Records with *tied* timestamps keep arrival order (the same stable
rule the batch sort uses), so within a path the guarantee holds for
in-order delivery or distinct timestamps; across paths any
interleaving goes.

Deltas
------
:meth:`RadioMapBuilder.drain_delta` returns a :class:`RadioMapDelta`
holding the refreshed rows of every path touched since the previous
drain.  Applying a delta to an older snapshot
(:func:`apply_radio_map_delta`) reproduces the current snapshot
bit-for-bit, which is what lets the serving layer ship small
versioned delta artifacts instead of whole radio maps.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..constants import DEFAULT_EPSILON
from ..exceptions import RadioMapError
from ..survey import RPRecord, RSSIRecord, WalkingSurveyRecordTable
from .radiomap import RadioMap, RadioMapTruth, concatenate_radio_maps


@dataclass
class CellStats:
    """Running statistics of one merge cell (or one raw record).

    A *cell* is what merge Step 1 produces: one or more RSSI records
    folded together, or a lone RP record.  ``rssi`` holds the running
    merged fingerprint under the paper's pairwise-average rule (each
    newcomer is averaged against the accumulated value where both are
    finite — for two records that is the plain mean), ``count`` the
    number of records folded in, and ``time`` the earliest merged
    record's timestamp, which is also the Step-1 merge anchor.
    """

    time: float
    rssi: Optional[np.ndarray]  # (D,) with NaN, or None for a pure RP
    rp: Optional[Tuple[float, float]]
    true_position: Optional[np.ndarray] = None
    missing_type: Optional[np.ndarray] = None
    count: int = 1

    def copy(self) -> "CellStats":
        return CellStats(
            time=self.time,
            rssi=None if self.rssi is None else self.rssi.copy(),
            rp=self.rp,
            true_position=(
                None
                if self.true_position is None
                else self.true_position.copy()
            ),
            missing_type=(
                None
                if self.missing_type is None
                else self.missing_type.copy()
            ),
            count=self.count,
        )


def record_to_cell(record, d: int) -> CellStats:
    """Convert one survey record into a single-record cell.

    Validates the record against the builder's AP dimensionality so a
    malformed stream fails with a typed :class:`RadioMapError` naming
    the problem, not a downstream numpy index/broadcast error.
    """
    if isinstance(record, RSSIRecord):
        rssi = np.full(d, np.nan)
        for ap, val in record.readings.items():
            if not 0 <= ap < d:
                raise RadioMapError(
                    f"RSSI record at t={record.time} reads AP {ap}, "
                    f"but the radio map has {d} APs"
                )
            if not np.isfinite(val):
                raise RadioMapError(
                    f"RSSI record at t={record.time} has a non-finite "
                    f"reading for AP {ap}"
                )
            rssi[ap] = val
        truth_pos = None
        missing_type = None
        if record.truth is not None:
            truth_pos = np.asarray(record.truth.position, dtype=float)
            if record.truth.missing_type is not None:
                missing_type = np.asarray(record.truth.missing_type)
                if missing_type.shape != (d,):
                    raise RadioMapError(
                        f"record truth missing_type must be ({d},), "
                        f"got {missing_type.shape}"
                    )
                missing_type = missing_type.copy()
        return CellStats(
            time=record.time,
            rssi=rssi,
            rp=None,
            true_position=truth_pos,
            missing_type=missing_type,
        )
    if isinstance(record, RPRecord):
        truth_pos = (
            np.asarray(record.truth.position, dtype=float)
            if record.truth is not None
            else None
        )
        return CellStats(
            time=record.time,
            rssi=None,
            rp=record.location,
            true_position=truth_pos,
        )
    raise RadioMapError(f"unknown record type {type(record).__name__}")


def merge_rssi_cells(a: CellStats, b: CellStats) -> CellStats:
    """Fold cell ``b`` into cell ``a`` (the paper's Step-1 rule).

    Overlapping APs take the pairwise average of the accumulated value
    and the newcomer, the rest are unioned; the earlier cell's time is
    kept.  Observed (1) dominates MAR (0) dominates MNAR (-1) in the
    ground-truth missing-type aggregate: a value present in either
    scan was observable there.
    """
    assert a.rssi is not None and b.rssi is not None
    rssi = np.where(
        np.isfinite(a.rssi) & np.isfinite(b.rssi),
        (a.rssi + b.rssi) / 2.0,
        np.where(np.isfinite(a.rssi), a.rssi, b.rssi),
    )
    missing_type = None
    if a.missing_type is not None and b.missing_type is not None:
        missing_type = np.maximum(a.missing_type, b.missing_type)
    true_position = None
    if a.true_position is not None and b.true_position is not None:
        true_position = (a.true_position + b.true_position) / 2.0
    elif a.true_position is not None:
        true_position = a.true_position
    return CellStats(
        time=a.time,  # keep the earlier time
        rssi=rssi,
        rp=None,
        true_position=true_position,
        missing_type=missing_type,
        count=a.count + b.count,
    )


def _attach_rps(
    cells: Sequence[CellStats], epsilon: float
) -> List[CellStats]:
    """Merge Step 2: attach RP cells to adjacent RSSI cells.

    A pure function over the cell list — it never mutates the running
    cells, so it can re-run on every materialisation of a dirty path.
    """
    out: List[CellStats] = []
    i = 0
    n = len(cells)
    while i < n:
        cur = cells[i]
        nxt = cells[i + 1] if i + 1 < n else None
        if (
            nxt is not None
            and abs(nxt.time - cur.time) <= epsilon
            and _is_rp_only(cur) != _is_rp_only(nxt)
            and (_is_rp_only(cur) or _is_rp_only(nxt))
        ):
            rssi_cell = nxt if _is_rp_only(cur) else cur
            rp_cell = cur if _is_rp_only(cur) else nxt
            out.append(
                CellStats(
                    time=rssi_cell.time,
                    rssi=rssi_cell.rssi,
                    rp=rp_cell.rp,
                    true_position=rssi_cell.true_position,
                    missing_type=rssi_cell.missing_type,
                    count=rssi_cell.count + rp_cell.count,
                )
            )
            i += 2
        else:
            out.append(cur)
            i += 1
    return out


def _is_rp_only(cell: CellStats) -> bool:
    return cell.rssi is None


def cells_to_radio_map(
    cells: Sequence[CellStats], d: int, path_id: int
) -> RadioMap:
    """Materialise finished cells into one path's radio-map rows."""
    n = len(cells)
    fingerprints = np.full((n, d), np.nan)
    rps = np.full((n, 2), np.nan)
    times = np.zeros(n)
    missing_type = np.full((n, d), -1, dtype=int)
    positions = np.full((n, 2), np.nan)
    have_truth = True
    for i, cell in enumerate(cells):
        times[i] = cell.time
        if cell.rssi is not None:
            fingerprints[i] = cell.rssi
        if cell.rp is not None:
            rps[i] = cell.rp
        if cell.missing_type is not None:
            missing_type[i] = cell.missing_type
        elif cell.rssi is not None:
            have_truth = False
        if cell.true_position is not None:
            positions[i] = cell.true_position
    truth = (
        RadioMapTruth(missing_type=missing_type, positions=positions)
        if have_truth and n > 0
        else None
    )
    return RadioMap(
        fingerprints=fingerprints,
        rps=rps,
        times=times,
        path_ids=np.full(n, path_id, dtype=int),
        truth=truth,
    )


def _empty_radio_map(d: int) -> RadioMap:
    return RadioMap(
        fingerprints=np.empty((0, d)),
        rps=np.empty((0, 2)),
        times=np.empty(0),
        path_ids=np.empty(0, dtype=int),
    )


# ----------------------------------------------------------------------
# Deltas
# ----------------------------------------------------------------------
@dataclass
class RadioMapDelta:
    """Refreshed rows for the paths touched since the last drain.

    ``records`` holds the *complete* current rows of every path in
    ``path_ids`` (a path's rows can change retroactively when a late
    record folds into an existing cell, so deltas replace whole paths
    rather than appending rows).  A path listed in ``path_ids`` with no
    rows in ``records`` has vanished and is dropped on apply.
    """

    path_ids: np.ndarray  # (P,) sorted dirty path ids
    records: RadioMap  # replacement rows, grouped by path

    def __post_init__(self) -> None:
        self.path_ids = np.asarray(self.path_ids, dtype=int)
        extra = set(np.unique(self.records.path_ids)) - set(
            self.path_ids
        )
        if extra:
            raise RadioMapError(
                f"delta rows reference undeclared paths {sorted(extra)}"
            )

    @property
    def n_rows(self) -> int:
        return self.records.n_records

    @property
    def n_paths(self) -> int:
        return int(self.path_ids.shape[0])

    def apply_to(self, base: RadioMap) -> RadioMap:
        return apply_radio_map_delta(base, self)

    def describe(self) -> str:
        return (
            f"RadioMapDelta(paths={self.n_paths}, rows={self.n_rows}, "
            f"D={self.records.n_aps})"
        )


def apply_radio_map_delta(
    base: RadioMap, delta: RadioMapDelta
) -> RadioMap:
    """Apply a delta to a snapshot: replace dirty paths, keep the rest.

    The result uses the builder's canonical order — paths ascending by
    id, rows within a path in cell (time) order — so applying the
    drained deltas to an old snapshot reproduces the current
    :meth:`RadioMapBuilder.snapshot` bit-for-bit.
    """
    if base.n_aps != delta.records.n_aps:
        raise RadioMapError(
            f"delta has {delta.records.n_aps} APs, base map has "
            f"{base.n_aps}"
        )
    dirty = set(int(p) for p in delta.path_ids)
    parts: List[RadioMap] = []
    base_paths = [int(p) for p in np.unique(base.path_ids)]
    for pid in sorted(set(base_paths) | dirty):
        source = delta.records if pid in dirty else base
        rows = np.where(source.path_ids == pid)[0]
        if rows.size:
            parts.append(source.subset(rows))
    if not parts:
        return _empty_radio_map(base.n_aps)
    return concatenate_radio_maps(parts)


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
class _PathState:
    """One survey path's stream state inside the builder."""

    __slots__ = (
        "path_id",
        "records",
        "times",
        "cells",
        "cache",
        "stale",
    )

    def __init__(self, path_id: int):
        self.path_id = path_id
        self.records: List[CellStats] = []  # raw, time-sorted
        self.times: List[float] = []  # parallel keys for bisect
        self.cells: List[CellStats] = []  # running Step-1 cells
        self.cache: Optional[RadioMap] = None  # materialised rows
        self.stale = False  # cells need a re-fold (late record seen)


class RadioMapBuilder:
    """Incrementally folds survey record streams into a radio map.

    Typical streaming use::

        builder = RadioMapBuilder(n_aps)
        builder.add_table(table)              # or add_records(pid, recs)
        delta = builder.drain_delta()         # rows touched since last
        snapshot = builder.snapshot()         # the full current map

    ``snapshot()`` is bit-identical to running the batch
    :func:`~repro.radiomap.creation.create_radio_map` over the same
    records (with paths ordered by id), regardless of how the stream
    was chunked or interleaved; two builders over disjoint slices of a
    stream can be combined with :meth:`merge` to the same effect.
    """

    def __init__(
        self, n_aps: int, *, epsilon: float = DEFAULT_EPSILON
    ):
        if n_aps < 0:
            raise RadioMapError("n_aps must be non-negative")
        if epsilon < 0:
            raise RadioMapError("epsilon must be non-negative")
        self.n_aps = int(n_aps)
        self.epsilon = float(epsilon)
        self._paths: Dict[int, _PathState] = {}
        self._dirty: set = set()
        self.records_ingested = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_record(self, path_id: int, record) -> None:
        """Fold one survey record into the map (O(1) when in order)."""
        cell = record_to_cell(record, self.n_aps)
        state = self._paths.get(path_id)
        if state is None:
            state = self._paths[path_id] = _PathState(int(path_id))
        self._insert(state, cell)
        state.cache = None
        self._dirty.add(int(path_id))
        self.records_ingested += 1

    def add_records(self, path_id: int, records: Iterable) -> None:
        """Fold a chunk of one path's records (any time order)."""
        for record in records:
            self.add_record(path_id, record)

    def add_table(self, table: WalkingSurveyRecordTable) -> None:
        """Fold a whole survey record table."""
        if table.n_aps != self.n_aps:
            raise RadioMapError(
                f"table for path {table.path_id} has {table.n_aps} "
                f"APs, builder expects {self.n_aps}"
            )
        self.add_records(table.path_id, table.records)

    def merge(self, other: "RadioMapBuilder") -> "RadioMapBuilder":
        """Fold another builder's stream into this one (returns self).

        Builders over disjoint chunks of a survey campaign (e.g. one
        per ingestion worker) merge into the same state as one builder
        that saw every record; overlapping paths re-fold from their
        combined record sets.
        """
        if other.n_aps != self.n_aps:
            raise RadioMapError(
                f"cannot merge builders over {other.n_aps} and "
                f"{self.n_aps} APs"
            )
        if other.epsilon != self.epsilon:
            raise RadioMapError(
                "cannot merge builders with different epsilons"
            )
        for pid, theirs in other._paths.items():
            state = self._paths.get(pid)
            if state is None:
                state = self._paths[pid] = _PathState(int(pid))
            for cell in theirs.records:
                self._insert(state, cell.copy())
            state.cache = None
            self._dirty.add(int(pid))
            self.records_ingested += len(theirs.records)
        return self

    def _insert(self, state: _PathState, cell: CellStats) -> None:
        """Place a single-record cell into the path's sorted stream.

        In-order records (the common streaming case) append and fold
        into the open tail cell; a late record inserts into the sorted
        stream and marks the path's cells *stale* — the re-fold is
        deferred to the next materialisation, so a whole late chunk
        costs one re-fold instead of one per record.  Ties keep
        arrival order, matching the batch merge over a stable-sorted
        table.
        """
        if not state.times or cell.time >= state.times[-1]:
            state.records.append(cell)
            state.times.append(cell.time)
            if not state.stale:
                self._fold(state.cells, cell)
            return
        i = bisect_right(state.times, cell.time)
        state.records.insert(i, cell)
        state.times.insert(i, cell.time)
        state.stale = True

    def _refold(self, state: _PathState) -> None:
        """Rebuild a stale path's Step-1 cells from its sorted records."""
        state.cells = []
        for rec in state.records:
            self._fold(state.cells, rec)
        state.stale = False

    def _fold(self, cells: List[CellStats], record: CellStats) -> None:
        """Step 1 as a fold: merge into the tail cell or open a new one."""
        prev = cells[-1] if cells else None
        if (
            prev is not None
            and prev.rssi is not None
            and prev.rp is None
            and record.rssi is not None
            and record.rp is None
            and record.time - prev.time <= self.epsilon
        ):
            cells[-1] = merge_rssi_cells(prev, record.copy())
        else:
            cells.append(record.copy())

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    @property
    def path_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._paths))

    @property
    def n_cells(self) -> int:
        total = 0
        for state in self._paths.values():
            if state.stale:
                self._refold(state)
            total += len(state.cells)
        return total

    def dirty_paths(self) -> Tuple[int, ...]:
        """Paths touched since the last :meth:`drain_delta`."""
        return tuple(sorted(self._dirty))

    def mark_dirty(self, path_ids) -> None:
        """Re-flag paths as changed since the last drain.

        The undo hook for a failed downstream hand-off: a publisher
        that drained a delta but could not ship it re-marks the
        delta's paths so the rows ride along with the next drain
        instead of being lost.
        """
        for pid in np.asarray(path_ids, dtype=int).ravel():
            if int(pid) in self._paths:
                self._dirty.add(int(pid))

    def path_map(self, path_id: int) -> RadioMap:
        """The materialised rows of one path (empty map if unknown)."""
        state = self._paths.get(int(path_id))
        if state is None:
            return _empty_radio_map(self.n_aps)
        if state.cache is None:
            if state.stale:
                self._refold(state)
            state.cache = cells_to_radio_map(
                _attach_rps(state.cells, self.epsilon),
                self.n_aps,
                state.path_id,
            )
        return state.cache

    def snapshot(self) -> RadioMap:
        """The full current radio map (paths ordered by id).

        Clean paths reuse their cached rows; only paths touched since
        their last materialisation pay the Step-2 + array-building
        cost.
        """
        if not self._paths:
            raise RadioMapError("no records ingested")
        maps = [self.path_map(pid) for pid in self.path_ids]
        maps = [m for m in maps if m.n_records > 0]
        if not maps:
            raise RadioMapError("all paths produced empty radio maps")
        return concatenate_radio_maps(maps)

    def drain_delta(self) -> Optional[RadioMapDelta]:
        """Refreshed rows of every path touched since the last drain.

        Returns ``None`` when nothing changed.  Applying the returned
        delta to the snapshot taken at the previous drain reproduces
        the current snapshot bit-for-bit.
        """
        if not self._dirty:
            return None
        pids = sorted(self._dirty)
        maps = [self.path_map(pid) for pid in pids]
        maps = [m for m in maps if m.n_records > 0]
        records = (
            concatenate_radio_maps(maps)
            if maps
            else _empty_radio_map(self.n_aps)
        )
        self._dirty.clear()
        return RadioMapDelta(
            path_ids=np.asarray(pids, dtype=int), records=records
        )

    def describe(self) -> str:
        return (
            f"RadioMapBuilder(paths={len(self._paths)}, "
            f"cells={self.n_cells}, "
            f"records_ingested={self.records_ingested}, "
            f"dirty={len(self._dirty)})"
        )
