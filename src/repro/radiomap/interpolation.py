"""Linear interpolation of missing RPs along survey paths.

Used in two places in the paper: Algorithm 2 interpolates null RPs to
build clustering samples ("Although imprecise, these interpolated RP
positions capture spatial proximity"), and the LI baseline imputer uses
the same rule as its whole RP-imputation strategy.

Interpolation is performed per path in time order; records before the
first (after the last) observed RP are clamped to it.  Paths with no
observed RP at all fall back to the global mean of observed RPs.
"""

from __future__ import annotations

import numpy as np

from .radiomap import RadioMap


def interpolate_rps_linear(radio_map: RadioMap) -> np.ndarray:
    """Return an ``(N, 2)`` array of RPs with all nulls interpolated."""
    out = radio_map.rps.copy()
    observed = radio_map.rp_observed_mask
    if observed.any():
        global_mean = radio_map.rps[observed].mean(axis=0)
    else:
        global_mean = np.zeros(2)

    for _, rows in radio_map.path_sequences():
        times = radio_map.times[rows]
        obs_local = observed[rows]
        if not obs_local.any():
            out[rows] = global_mean
            continue
        obs_pos = np.where(obs_local)[0]
        obs_times = times[obs_pos]
        for dim in range(2):
            vals = radio_map.rps[rows[obs_pos], dim]
            # np.interp clamps outside the observed time range, giving
            # the first/last-RP behaviour we want.
            out[rows, dim] = np.interp(times, obs_times, vals)
        # Restore exact observed values (interp is exact there anyway,
        # but guard against duplicate timestamps).
        out[rows[obs_pos]] = radio_map.rps[rows[obs_pos]]
    return out
