"""Radio-map creation from walking-survey record tables (Section II-B).

The paper's two merge steps:

* **Step 1** merges consecutive RSSI records whose time difference is
  within a threshold ``epsilon`` (inclusive — the paper's worked
  example merges records exactly ``epsilon`` apart).  The merged record keeps the earlier
  time; an AP present in one record contributes its value, an AP present
  in both contributes the average, otherwise null.
* **Step 2** merges a remaining RSSI record with an adjacent RP record
  when their times differ by less than ``epsilon``; the RP coordinates
  are copied onto the (possibly merged) RSSI record.

Every leftover record becomes a radio-map row with nulls filled in —
an unmerged RP record yields an all-null fingerprint with an RP label
(row 5 of the paper's Table III).

Both functions are thin wrappers over the streaming
:class:`~repro.radiomap.builder.RadioMapBuilder`, which implements the
merge as an incremental fold; batch creation is the special case of
ingesting each table in one chunk.  Malformed input — no tables,
tables whose AP counts disagree, records reading out-of-range APs —
fails with a typed :class:`~repro.exceptions.RadioMapError` before any
array work starts.
"""

from __future__ import annotations

from typing import List

from ..constants import DEFAULT_EPSILON
from ..exceptions import RadioMapError
from ..survey import WalkingSurveyRecordTable
from .builder import RadioMapBuilder, concatenate_radio_maps
from .radiomap import RadioMap


def create_radio_map(
    tables: List[WalkingSurveyRecordTable],
    epsilon: float = DEFAULT_EPSILON,
) -> RadioMap:
    """Create one radio map from all survey record tables."""
    if not tables:
        raise RadioMapError("no survey tables given")
    d = tables[0].n_aps
    for table in tables:
        if table.n_aps != d:
            raise RadioMapError(
                f"survey tables disagree on AP count: path "
                f"{table.path_id} has {table.n_aps} APs, path "
                f"{tables[0].path_id} has {d}"
            )
    maps = [create_radio_map_for_path(t, epsilon) for t in tables]
    maps = [m for m in maps if m.n_records > 0]
    if not maps:
        raise RadioMapError("all paths produced empty radio maps")
    return concatenate_radio_maps(maps)


def create_radio_map_for_path(
    table: WalkingSurveyRecordTable,
    epsilon: float = DEFAULT_EPSILON,
) -> RadioMap:
    """Apply merge Steps 1-2 to one path's record table."""
    builder = RadioMapBuilder(table.n_aps, epsilon=epsilon)
    builder.add_table(table)
    return builder.path_map(table.path_id)
