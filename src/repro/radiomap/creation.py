"""Radio-map creation from walking-survey record tables (Section II-B).

Implements the two merge steps verbatim:

* **Step 1** merges consecutive RSSI records whose time difference is
  within a threshold ``epsilon`` (inclusive — the paper's worked
  example merges records exactly ``epsilon`` apart).  The merged record keeps the earlier
  time; an AP present in one record contributes its value, an AP present
  in both contributes the average, otherwise null.
* **Step 2** merges a remaining RSSI record with an adjacent RP record
  when their times differ by less than ``epsilon``; the RP coordinates
  are copied onto the (possibly merged) RSSI record.

Every leftover record becomes a radio-map row with nulls filled in —
an unmerged RP record yields an all-null fingerprint with an RP label
(row 5 of the paper's Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..constants import DEFAULT_EPSILON
from ..exceptions import RadioMapError
from ..survey import RPRecord, RSSIRecord, WalkingSurveyRecordTable
from .radiomap import RadioMap, RadioMapTruth, concatenate_radio_maps


@dataclass
class _PendingRecord:
    """Intermediate record during merging."""

    time: float
    rssi: Optional[np.ndarray]  # (D,) with NaN, or None for a pure RP record
    rp: Optional[Tuple[float, float]]
    true_position: Optional[np.ndarray] = None
    missing_type: Optional[np.ndarray] = None


def create_radio_map(
    tables: List[WalkingSurveyRecordTable],
    epsilon: float = DEFAULT_EPSILON,
) -> RadioMap:
    """Create one radio map from all survey record tables."""
    if not tables:
        raise RadioMapError("no survey tables given")
    maps = [create_radio_map_for_path(t, epsilon) for t in tables]
    maps = [m for m in maps if m.n_records > 0]
    if not maps:
        raise RadioMapError("all paths produced empty radio maps")
    return concatenate_radio_maps(maps)


def create_radio_map_for_path(
    table: WalkingSurveyRecordTable,
    epsilon: float = DEFAULT_EPSILON,
) -> RadioMap:
    """Apply merge Steps 1-2 to one path's record table."""
    if epsilon < 0:
        raise RadioMapError("epsilon must be non-negative")
    d = table.n_aps
    pending = [_to_pending(r, d) for r in table.records]
    pending = _merge_step1(pending, epsilon)
    pending = _merge_step2(pending, epsilon)
    return _pending_to_radio_map(pending, d, table.path_id)


# ----------------------------------------------------------------------
# Conversion & merging
# ----------------------------------------------------------------------
def _to_pending(record, d: int) -> _PendingRecord:
    if isinstance(record, RSSIRecord):
        rssi = np.full(d, np.nan)
        for ap, val in record.readings.items():
            rssi[ap] = val
        truth_pos = None
        missing_type = None
        if record.truth is not None:
            truth_pos = np.asarray(record.truth.position, dtype=float)
            if record.truth.missing_type is not None:
                missing_type = record.truth.missing_type.copy()
        return _PendingRecord(
            time=record.time,
            rssi=rssi,
            rp=None,
            true_position=truth_pos,
            missing_type=missing_type,
        )
    if isinstance(record, RPRecord):
        truth_pos = (
            np.asarray(record.truth.position, dtype=float)
            if record.truth is not None
            else None
        )
        return _PendingRecord(
            time=record.time,
            rssi=None,
            rp=record.location,
            true_position=truth_pos,
        )
    raise RadioMapError(f"unknown record type {type(record).__name__}")


def _merge_step1(
    pending: List[_PendingRecord], epsilon: float
) -> List[_PendingRecord]:
    """Merge runs of consecutive RSSI records closer than epsilon."""
    out: List[_PendingRecord] = []
    for rec in pending:
        prev = out[-1] if out else None
        if (
            prev is not None
            and prev.rssi is not None
            and prev.rp is None
            and rec.rssi is not None
            and rec.rp is None
            and rec.time - prev.time <= epsilon
        ):
            out[-1] = _merge_rssi_pair(prev, rec)
        else:
            out.append(rec)
    return out


def _merge_rssi_pair(a: _PendingRecord, b: _PendingRecord) -> _PendingRecord:
    """Combine two RSSI records: average overlaps, union the rest."""
    assert a.rssi is not None and b.rssi is not None
    rssi = np.where(
        np.isfinite(a.rssi) & np.isfinite(b.rssi),
        (a.rssi + b.rssi) / 2.0,
        np.where(np.isfinite(a.rssi), a.rssi, b.rssi),
    )
    missing_type = None
    if a.missing_type is not None and b.missing_type is not None:
        # Observed (1) dominates MAR (0) dominates MNAR (-1): a value
        # present in either scan was observable there.
        missing_type = np.maximum(a.missing_type, b.missing_type)
    true_position = None
    if a.true_position is not None and b.true_position is not None:
        true_position = (a.true_position + b.true_position) / 2.0
    elif a.true_position is not None:
        true_position = a.true_position
    return _PendingRecord(
        time=a.time,  # keep the earlier time
        rssi=rssi,
        rp=None,
        true_position=true_position,
        missing_type=missing_type,
    )


def _merge_step2(
    pending: List[_PendingRecord], epsilon: float
) -> List[_PendingRecord]:
    """Attach RP records to adjacent RSSI records closer than epsilon."""
    out: List[_PendingRecord] = []
    i = 0
    n = len(pending)
    while i < n:
        cur = pending[i]
        nxt = pending[i + 1] if i + 1 < n else None
        if (
            nxt is not None
            and abs(nxt.time - cur.time) <= epsilon
            and _is_rp_only(cur) != _is_rp_only(nxt)
            and (_is_rp_only(cur) or _is_rp_only(nxt))
        ):
            rssi_rec = nxt if _is_rp_only(cur) else cur
            rp_rec = cur if _is_rp_only(cur) else nxt
            out.append(
                _PendingRecord(
                    time=rssi_rec.time,
                    rssi=rssi_rec.rssi,
                    rp=rp_rec.rp,
                    true_position=rssi_rec.true_position,
                    missing_type=rssi_rec.missing_type,
                )
            )
            i += 2
        else:
            out.append(cur)
            i += 1
    return out


def _is_rp_only(rec: _PendingRecord) -> bool:
    return rec.rssi is None


def _pending_to_radio_map(
    pending: List[_PendingRecord], d: int, path_id: int
) -> RadioMap:
    n = len(pending)
    fingerprints = np.full((n, d), np.nan)
    rps = np.full((n, 2), np.nan)
    times = np.zeros(n)
    missing_type = np.full((n, d), -1, dtype=int)
    positions = np.full((n, 2), np.nan)
    have_truth = True
    for i, rec in enumerate(pending):
        times[i] = rec.time
        if rec.rssi is not None:
            fingerprints[i] = rec.rssi
        if rec.rp is not None:
            rps[i] = rec.rp
        if rec.missing_type is not None:
            missing_type[i] = rec.missing_type
        elif rec.rssi is not None:
            have_truth = False
        if rec.true_position is not None:
            positions[i] = rec.true_position
    truth = (
        RadioMapTruth(missing_type=missing_type, positions=positions)
        if have_truth and n > 0
        else None
    )
    return RadioMap(
        fingerprints=fingerprints,
        rps=rps,
        times=times,
        path_ids=np.full(n, path_id, dtype=int),
        truth=truth,
    )
