"""Radio-map persistence (npz matrices + JSON metadata) and CSV export."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import RadioMapError
from .radiomap import RadioMap, RadioMapTruth

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_radio_map(radio_map: RadioMap, path: PathLike) -> None:
    """Save a radio map (and any truth arrays) to an ``.npz`` file."""
    path = Path(path)
    arrays = {
        "fingerprints": radio_map.fingerprints,
        "rps": radio_map.rps,
        "times": radio_map.times,
        "path_ids": radio_map.path_ids,
        "meta": np.array(
            [json.dumps({"version": _FORMAT_VERSION})], dtype=object
        ),
    }
    if radio_map.truth is not None:
        t = radio_map.truth
        if t.missing_type is not None:
            arrays["truth_missing_type"] = t.missing_type
        if t.positions is not None:
            arrays["truth_positions"] = t.positions
        if t.clean_fingerprints is not None:
            arrays["truth_clean_fingerprints"] = t.clean_fingerprints
    np.savez_compressed(path, **arrays)


def load_radio_map(path: PathLike) -> RadioMap:
    """Load a radio map previously written by :func:`save_radio_map`."""
    path = Path(path)
    if not path.exists():
        raise RadioMapError(f"no such file: {path}")
    with np.load(path, allow_pickle=True) as data:
        meta = json.loads(str(data["meta"][0]))
        if meta.get("version") != _FORMAT_VERSION:
            raise RadioMapError(
                f"unsupported radio-map format version {meta.get('version')!r}"
            )
        truth = None
        if any(k.startswith("truth_") for k in data.files):
            truth = RadioMapTruth(
                missing_type=(
                    data["truth_missing_type"]
                    if "truth_missing_type" in data.files
                    else None
                ),
                positions=(
                    data["truth_positions"]
                    if "truth_positions" in data.files
                    else None
                ),
                clean_fingerprints=(
                    data["truth_clean_fingerprints"]
                    if "truth_clean_fingerprints" in data.files
                    else None
                ),
            )
        return RadioMap(
            fingerprints=data["fingerprints"],
            rps=data["rps"],
            times=data["times"],
            path_ids=data["path_ids"],
            truth=truth,
        )


def export_csv(radio_map: RadioMap, path: PathLike) -> None:
    """Export records to CSV in the paper's Table III shape.

    Nulls are written as empty cells; columns are ``time, path_id, x, y,
    r0..r{D-1}``.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        header = ["time", "path_id", "x", "y"] + [
            f"r{d}" for d in range(radio_map.n_aps)
        ]
        writer.writerow(header)
        for i in range(radio_map.n_records):
            row = [
                f"{radio_map.times[i]:.3f}",
                int(radio_map.path_ids[i]),
            ]
            for v in radio_map.rps[i]:
                row.append("" if not np.isfinite(v) else f"{v:.3f}")
            for v in radio_map.fingerprints[i]:
                row.append("" if not np.isfinite(v) else f"{v:.1f}")
            writer.writerow(row)
