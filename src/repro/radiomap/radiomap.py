"""The central :class:`RadioMap` container.

A radio map is ``N`` records of (fingerprint, RP) pairs; both sides may
contain nulls (represented as NaN).  Unlike the paper's Table III we
also keep the per-record timestamp and survey-path id — the paper keeps
them too ("we use them for imputation later on") since BiSIM's time-lag
mechanism needs inter-record time differences and sequences must not
cross path boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import RadioMapError


@dataclass
class RadioMapTruth:
    """Simulation-only ground truth carried next to a radio map.

    Attributes
    ----------
    missing_type:
        ``(N, D)`` int array; ``1`` observed / ``0`` MAR / ``-1`` MNAR.
    positions:
        ``(N, 2)`` true surveyor positions for every record.
    clean_fingerprints:
        ``(N, D)`` noise-free fingerprints (NaN where truly
        unobservable) — the target MAR imputations should approach.
    """

    missing_type: Optional[np.ndarray] = None
    positions: Optional[np.ndarray] = None
    clean_fingerprints: Optional[np.ndarray] = None

    def subset(self, idx: np.ndarray) -> "RadioMapTruth":
        def take(a: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if a is None else a[idx]

        return RadioMapTruth(
            missing_type=take(self.missing_type),
            positions=take(self.positions),
            clean_fingerprints=take(self.clean_fingerprints),
        )


@dataclass
class RadioMap:
    """N radio-map records over D access points.

    Attributes
    ----------
    fingerprints:
        ``(N, D)`` float array; NaN encodes a missing RSSI.
    rps:
        ``(N, 2)`` float array; an all-NaN row encodes a missing RP.
    times:
        ``(N,)`` record timestamps (seconds, per-path clock).
    path_ids:
        ``(N,)`` survey-path id of each record.
    truth:
        Optional simulation ground truth (never consumed by algorithms,
        only by evaluation code).
    """

    fingerprints: np.ndarray
    rps: np.ndarray
    times: np.ndarray
    path_ids: np.ndarray
    truth: Optional[RadioMapTruth] = None

    def __post_init__(self) -> None:
        self.fingerprints = np.asarray(self.fingerprints, dtype=float)
        self.rps = np.asarray(self.rps, dtype=float)
        self.times = np.asarray(self.times, dtype=float)
        self.path_ids = np.asarray(self.path_ids, dtype=int)
        n = self.fingerprints.shape[0]
        if self.fingerprints.ndim != 2:
            raise RadioMapError("fingerprints must be (N, D)")
        if self.rps.shape != (n, 2):
            raise RadioMapError("rps must be (N, 2)")
        if self.times.shape != (n,) or self.path_ids.shape != (n,):
            raise RadioMapError("times/path_ids must be (N,)")

    # ------------------------------------------------------------------
    # Shape / rates
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.fingerprints.shape[0])

    @property
    def n_aps(self) -> int:
        return int(self.fingerprints.shape[1])

    def __len__(self) -> int:
        return self.n_records

    @property
    def rssi_observed_mask(self) -> np.ndarray:
        """Boolean ``(N, D)``: True where an RSSI value is present."""
        return np.isfinite(self.fingerprints)

    @property
    def rp_observed_mask(self) -> np.ndarray:
        """Boolean ``(N,)``: True where the RP label is present."""
        return np.isfinite(self.rps).all(axis=1)

    @property
    def missing_rssi_rate(self) -> float:
        """Fraction of null RSSI entries (the paper's 85-94 %)."""
        return float(1.0 - self.rssi_observed_mask.mean())

    @property
    def missing_rp_rate(self) -> float:
        """Fraction of records with a null RP."""
        return float(1.0 - self.rp_observed_mask.mean())

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def observed_rp_indices(self) -> np.ndarray:
        return np.where(self.rp_observed_mask)[0]

    def subset(self, idx: np.ndarray) -> "RadioMap":
        """New radio map containing only rows ``idx`` (copies)."""
        idx = np.asarray(idx)
        return RadioMap(
            fingerprints=self.fingerprints[idx].copy(),
            rps=self.rps[idx].copy(),
            times=self.times[idx].copy(),
            path_ids=self.path_ids[idx].copy(),
            truth=None if self.truth is None else self.truth.subset(idx),
        )

    def copy(self) -> "RadioMap":
        return self.subset(np.arange(self.n_records))

    def path_sequences(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(path_id, row_indices)`` per path, time-ordered.

        BiSIM and the time-series baselines consume records path by
        path; rows within a path are sorted by timestamp.
        """
        for pid in np.unique(self.path_ids):
            rows = np.where(self.path_ids == pid)[0]
            order = np.argsort(self.times[rows], kind="stable")
            yield int(pid), rows[order]

    def describe(self) -> str:
        return (
            f"RadioMap(N={self.n_records}, D={self.n_aps}, "
            f"missing RSSI={100 * self.missing_rssi_rate:.1f}%, "
            f"missing RP={100 * self.missing_rp_rate:.1f}%)"
        )


def concatenate_radio_maps(maps: List[RadioMap]) -> RadioMap:
    """Stack several radio maps (e.g. one per survey path) into one."""
    if not maps:
        raise RadioMapError("nothing to concatenate")
    d = maps[0].n_aps
    for m in maps:
        if m.n_aps != d:
            raise RadioMapError("AP dimensionality mismatch")
    truth = None
    if all(m.truth is not None for m in maps):
        def cat(attr: str) -> Optional[np.ndarray]:
            parts = [getattr(m.truth, attr) for m in maps]
            if any(p is None for p in parts):
                return None
            return np.concatenate(parts, axis=0)

        truth = RadioMapTruth(
            missing_type=cat("missing_type"),
            positions=cat("positions"),
            clean_fingerprints=cat("clean_fingerprints"),
        )
    return RadioMap(
        fingerprints=np.concatenate([m.fingerprints for m in maps]),
        rps=np.concatenate([m.rps for m in maps]),
        times=np.concatenate([m.times for m in maps]),
        path_ids=np.concatenate([m.path_ids for m in maps]),
        truth=truth,
    )
