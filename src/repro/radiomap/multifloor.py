"""Floor-partitioned radio maps: one map per floor, one AP axis.

A stacked venue's radio data is *partitioned by floor* — every
fingerprint is surveyed on exactly one slab — but all floors share the
venue's global AP id space, so the per-floor maps are slices of one
tensor family: same ``D``, disjoint record sets.  Keeping them as
separate :class:`~repro.radiomap.RadioMap` objects (rather than one
concatenated map with a floor column) means the whole existing
machinery — builders, deltas, lineage, shard build/save/reload —
applies per floor unchanged; the only new object is this thin ordered
container plus :func:`build_floor_radio_maps`, which runs the paper's
Section II-B creation per floor.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..constants import DEFAULT_EPSILON
from ..exceptions import RadioMapError
from ..survey import WalkingSurveyRecordTable
from .creation import create_radio_map
from .radiomap import RadioMap


class FloorRadioMaps:
    """Ordered ``floor_id -> RadioMap`` partition of one venue.

    All floors must share the fingerprint dimension ``D`` (the global
    AP axis); iteration order is the floor stacking order.
    """

    def __init__(
        self, venue: str, floors: Sequence[Tuple[str, RadioMap]]
    ):
        if not floors:
            raise RadioMapError(f"venue {venue!r}: no floor maps")
        ids = [fid for fid, _ in floors]
        if len(set(ids)) != len(ids):
            raise RadioMapError(
                f"venue {venue!r}: duplicate floor ids in {ids}"
            )
        d = floors[0][1].n_aps
        for fid, rmap in floors:
            if rmap.n_aps != d:
                raise RadioMapError(
                    f"venue {venue!r}: floor {fid!r} has {rmap.n_aps} "
                    f"APs, expected the shared axis {d}"
                )
        self.venue = venue
        self._maps: Dict[str, RadioMap] = dict(floors)
        self._order: Tuple[str, ...] = tuple(ids)

    @property
    def n_aps(self) -> int:
        return self._maps[self._order[0]].n_aps

    @property
    def floor_ids(self) -> Tuple[str, ...]:
        return self._order

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __getitem__(self, floor_id: str) -> RadioMap:
        try:
            return self._maps[floor_id]
        except KeyError:
            raise RadioMapError(
                f"venue {self.venue!r} has no floor {floor_id!r}; "
                f"floors: {list(self._order)}"
            ) from None

    def items(self) -> List[Tuple[str, RadioMap]]:
        return [(fid, self._maps[fid]) for fid in self._order]

    def describe(self) -> str:
        lines = [
            f"{self.venue}: {len(self)} floor radio maps, "
            f"D={self.n_aps}"
        ]
        lines += [
            f"  {fid}: {self._maps[fid].describe()}"
            for fid in self._order
        ]
        return "\n".join(lines)


def build_floor_radio_maps(
    venue: str,
    tables_by_floor: Mapping[
        str, Sequence[WalkingSurveyRecordTable]
    ],
    *,
    epsilon: float = DEFAULT_EPSILON,
) -> FloorRadioMaps:
    """Run radio-map creation per floor over partitioned survey tables.

    ``tables_by_floor`` preserves its insertion order as the floor
    stacking order.  Each floor goes through the same Steps 1-2 merge
    as a single-floor venue — the delta/lineage machinery downstream
    sees ordinary per-floor maps.
    """
    floors = [
        (fid, create_radio_map(list(tables), epsilon=epsilon))
        for fid, tables in tables_by_floor.items()
    ]
    return FloorRadioMaps(venue, floors)
