"""Radio-map perturbations used by the paper's parameter sweeps.

Three controlled degradations:

* **alpha removal** (Section V-B, Fig. 12/13): nullify a fraction
  ``alpha`` of the *observed RSSIs* of a raw radio map before
  differentiation — stresses the differentiators.
* **beta removal** (Section V-C, Fig. 14/15): *after* MNARs are filled
  with -100 dBm, remove a fraction ``beta`` of RSSIs (or RPs) and keep
  the removed values as imputation ground truth.
* **RP-density scaling** (Fig. 16): drop RP records from the *raw
  survey tables* so only ``density`` of RPs remain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import RadioMapError
from ..survey import RPRecord, WalkingSurveyRecordTable
from .radiomap import RadioMap


@dataclass
class RemovedValues:
    """Ground truth held back by a beta-removal perturbation.

    Attributes
    ----------
    rssi_indices:
        ``(k, 2)`` array of (row, ap) indices whose RSSIs were removed.
    rssi_values:
        ``(k,)`` removed RSSI values.
    rp_indices:
        ``(m,)`` rows whose RPs were removed.
    rp_values:
        ``(m, 2)`` removed RP coordinates.
    """

    rssi_indices: np.ndarray
    rssi_values: np.ndarray
    rp_indices: np.ndarray
    rp_values: np.ndarray


def remove_rssi_fraction(
    radio_map: RadioMap, alpha: float, rng: np.random.Generator
) -> RadioMap:
    """Alpha removal: randomly nullify a fraction of observed RSSIs."""
    if not 0.0 <= alpha < 1.0:
        raise RadioMapError("alpha must be in [0, 1)")
    out = radio_map.copy()
    if alpha == 0.0:
        return out
    rows, cols = np.where(out.rssi_observed_mask)
    k = int(round(alpha * rows.size))
    if k == 0:
        return out
    pick = rng.choice(rows.size, size=k, replace=False)
    out.fingerprints[rows[pick], cols[pick]] = np.nan
    if out.truth is not None and out.truth.missing_type is not None:
        # Removed observations are, by construction, random removals.
        out.truth.missing_type[rows[pick], cols[pick]] = 0
    return out


def remove_for_imputation_eval(
    radio_map: RadioMap,
    beta: float,
    rng: np.random.Generator,
    *,
    remove_rssis: bool = True,
    remove_rps: bool = True,
) -> Tuple[RadioMap, RemovedValues]:
    """Beta removal: hold back observed values as imputation ground truth.

    Applied to a radio map whose MNARs are already filled (-100 dBm), as
    Section V-C specifies — the sampled positions therefore include both
    genuinely observed RSSIs and MNAR fills, matching the paper's
    protocol of removing "RSSIs" from the filled map.
    """
    if not 0.0 <= beta < 1.0:
        raise RadioMapError("beta must be in [0, 1)")
    out = radio_map.copy()

    rssi_idx = np.empty((0, 2), dtype=int)
    rssi_val = np.empty(0)
    if remove_rssis and beta > 0:
        rows, cols = np.where(np.isfinite(out.fingerprints))
        k = int(round(beta * rows.size))
        if k > 0:
            pick = rng.choice(rows.size, size=k, replace=False)
            rssi_idx = np.stack([rows[pick], cols[pick]], axis=1)
            rssi_val = out.fingerprints[rows[pick], cols[pick]].copy()
            out.fingerprints[rows[pick], cols[pick]] = np.nan

    rp_idx = np.empty(0, dtype=int)
    rp_val = np.empty((0, 2))
    if remove_rps and beta > 0:
        observed = out.observed_rp_indices()
        k = int(round(beta * observed.size))
        if k > 0:
            pick = rng.choice(observed.size, size=k, replace=False)
            rp_idx = observed[pick]
            rp_val = out.rps[rp_idx].copy()
            out.rps[rp_idx] = np.nan

    return out, RemovedValues(
        rssi_indices=rssi_idx,
        rssi_values=rssi_val,
        rp_indices=rp_idx,
        rp_values=rp_val,
    )


def scale_rp_density(
    tables: List[WalkingSurveyRecordTable],
    density: float,
    rng: np.random.Generator,
) -> List[WalkingSurveyRecordTable]:
    """Keep only ``density`` of RP records in raw survey tables (Fig. 16)."""
    if not 0.0 < density <= 1.0:
        raise RadioMapError("density must be in (0, 1]")
    if density == 1.0:
        return tables
    out: List[WalkingSurveyRecordTable] = []
    for table in tables:
        kept = WalkingSurveyRecordTable(
            path_id=table.path_id, n_aps=table.n_aps
        )
        for rec in table.records:
            if isinstance(rec, RPRecord) and rng.random() > density:
                continue
            kept.add(rec)
        kept.sort()
        out.append(kept)
    return out
