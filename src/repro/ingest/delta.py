"""Radio-map delta artifacts with manifest lineage.

A delta artifact (kind ``"radiomap.delta"``) ships the refreshed rows
of the survey paths touched by one ingestion window — typically a few
kilobytes against a full radio map or shard bundle.  Its manifest
config records *lineage*:

* ``parent_hash`` — the content hash of the artifact this delta
  applies on top of: the base radio map / shard bundle for the first
  delta, the previous delta for every later one.  Content hashes are
  the same SHA-256 digests :func:`repro.artifacts.load_artifact`
  verifies, so a chain is tamper-evident end to end;
* ``sequence`` — the delta's position in the chain, starting at 0.

:func:`verify_chain` walks ``base → delta_0 → delta_1 → …`` and fails
with a typed :class:`~repro.exceptions.ArtifactError` on any break —
a missing link, a reordered file, or a delta grafted onto the wrong
base.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..artifacts import (
    Artifact,
    load_artifact,
    read_manifest,
    save_artifact,
)
from ..artifacts.io import PathLike
from ..exceptions import ArtifactError
from ..radiomap import RadioMap, RadioMapDelta, RadioMapTruth

#: Artifact kind of a radio-map delta.
DELTA_KIND = "radiomap.delta"

_TRUTH_ARRAYS = ("missing_type", "positions", "clean_fingerprints")


def delta_to_artifact(
    delta: RadioMapDelta,
    *,
    parent_hash: Optional[str] = None,
    sequence: int = 0,
) -> Artifact:
    """Pack a delta (rows + dirty-path set + lineage) as an artifact."""
    records = delta.records
    arrays: Dict[str, np.ndarray] = {
        "dirty_paths": np.asarray(delta.path_ids, dtype=np.int64),
        "fingerprints": records.fingerprints,
        "rps": records.rps,
        "times": records.times,
        "path_ids": records.path_ids.astype(np.int64),
    }
    if records.truth is not None:
        for name in _TRUTH_ARRAYS:
            value = getattr(records.truth, name)
            if value is not None:
                arrays[f"truth.{name}"] = value
    config: Dict[str, Any] = {
        "n_aps": int(records.n_aps),
        "parent_hash": parent_hash,
        "sequence": int(sequence),
    }
    metrics = {
        "rows": int(delta.n_rows),
        "paths": int(delta.n_paths),
    }
    return Artifact(
        kind=DELTA_KIND, arrays=arrays, config=config, metrics=metrics
    )


def save_delta(
    delta: RadioMapDelta,
    path: PathLike,
    *,
    parent_hash: Optional[str] = None,
    sequence: int = 0,
) -> str:
    """Write a delta artifact; returns its content hash (the next
    link's ``parent_hash``)."""
    save_artifact(
        delta_to_artifact(
            delta, parent_hash=parent_hash, sequence=sequence
        ),
        path,
    )
    return str(read_manifest(path)["content_hash"])


def load_delta(
    path: PathLike, *, parent_hash: Optional[str] = None
) -> Tuple[RadioMapDelta, Dict[str, Any]]:
    """Load and validate a delta artifact → ``(delta, config)``.

    ``parent_hash`` pins the expected lineage: a delta whose recorded
    parent differs fails with an :class:`ArtifactError` instead of
    silently applying on the wrong base.
    """
    artifact = load_artifact(path, expected_kind=DELTA_KIND)
    config = artifact.config
    if parent_hash is not None and config.get("parent_hash") != parent_hash:
        raise ArtifactError(
            f"delta {path} breaks lineage: expected parent "
            f"{parent_hash[:12]}…, found "
            f"{str(config.get('parent_hash'))[:12]}…"
        )
    truth = None
    truth_values = {
        name: artifact.arrays.get(f"truth.{name}")
        for name in _TRUTH_ARRAYS
    }
    if any(v is not None for v in truth_values.values()):
        truth = RadioMapTruth(**truth_values)
    records = RadioMap(
        fingerprints=artifact.arrays["fingerprints"],
        rps=artifact.arrays["rps"],
        times=artifact.arrays["times"],
        path_ids=artifact.arrays["path_ids"],
        truth=truth,
    )
    delta = RadioMapDelta(
        path_ids=artifact.arrays["dirty_paths"], records=records
    )
    return delta, config


def verify_chain(
    base_path: PathLike, delta_paths: Sequence[PathLike]
) -> List[Dict[str, Any]]:
    """Verify a ``base → delta_0 → delta_1 → …`` lineage chain.

    Walks the manifests only (no tensor loads) and returns each
    delta's config, in order.  Raises :class:`ArtifactError` on a
    kind mismatch, a parent-hash break, or out-of-order sequence
    numbers.
    """
    parent = str(read_manifest(base_path)["content_hash"])
    configs: List[Dict[str, Any]] = []
    last_sequence = -1
    for path in delta_paths:
        manifest = read_manifest(path)
        if manifest.get("kind") != DELTA_KIND:
            raise ArtifactError(
                f"{path} is not a radio-map delta "
                f"(kind {manifest.get('kind')!r})"
            )
        config = manifest.get("config", {})
        if config.get("parent_hash") != parent:
            raise ArtifactError(
                f"delta chain breaks at {path}: expected parent "
                f"{parent[:12]}…, found "
                f"{str(config.get('parent_hash'))[:12]}…"
            )
        sequence = int(config.get("sequence", -1))
        if sequence <= last_sequence:
            raise ArtifactError(
                f"delta chain out of order at {path}: sequence "
                f"{sequence} after {last_sequence}"
            )
        last_sequence = sequence
        parent = str(manifest["content_hash"])
        configs.append(config)
    return configs
