"""Streaming ingestion & incremental radio-map maintenance.

The live-update data plane next to the batch pipeline:

* :class:`~repro.radiomap.RadioMapBuilder` (in :mod:`repro.radiomap`)
  folds survey record streams into mergeable per-cell running
  statistics — batch creation is the one-chunk special case;
* :class:`StreamIngestor` wraps a builder into an ingestion session
  that publishes the accumulated changes as **delta artifacts**
  (kind ``"radiomap.delta"``), each chained on its parent's content
  hash so the full update history verifies against the base bundle;
* the serving layer consumes deltas in place:
  :meth:`~repro.serving.PositioningService.apply_delta` hot-updates a
  live :class:`~repro.serving.VenueShard` under the epoch/atomic-swap
  machinery with targeted cache invalidation.

``python -m repro ingest`` runs the whole write path from the CLI:
records in → delta artifact out → optional live apply.
"""

from .delta import (
    DELTA_KIND,
    delta_to_artifact,
    load_delta,
    save_delta,
    verify_chain,
)
from .stream import (
    IngestStats,
    PublishedDelta,
    StreamIngestor,
    simulate_new_survey,
)

__all__ = [
    "DELTA_KIND",
    "IngestStats",
    "PublishedDelta",
    "StreamIngestor",
    "delta_to_artifact",
    "load_delta",
    "save_delta",
    "simulate_new_survey",
    "verify_chain",
]
