"""Streaming ingestion sessions: records in → chained delta artifacts.

:class:`StreamIngestor` is the write-side counterpart of the serving
layer: it folds crowdsourced survey records into a
:class:`~repro.radiomap.RadioMapBuilder` and periodically *publishes*
the accumulated changes as a lineage-chained delta artifact
(:mod:`repro.ingest.delta`).  The read side applies those deltas to a
live deployment with
:meth:`~repro.serving.PositioningService.apply_delta` — no full
radio-map rebuild, no artifact reload::

    ingestor = StreamIngestor(n_aps, parent_hash=base_hash)
    ingestor.ingest_table(new_survey_table)
    published = ingestor.publish("delta-000.npz")
    service.apply_delta("kaide", published.delta)

Each publish chains on the previous one (``sequence`` increments, the
new artifact's content hash becomes the next ``parent_hash``), so a
consumer can verify the whole update history against the base bundle
with :func:`~repro.ingest.delta.verify_chain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Set

import numpy as np

from ..constants import DEFAULT_EPSILON
from ..exceptions import IngestError
from ..radiomap import RadioMapBuilder, RadioMapDelta
from ..survey import (
    SurveyConfig,
    WalkingSurveyRecordTable,
    simulate_survey,
)
from .delta import save_delta


@dataclass
class IngestStats:
    """Counters of one ingestion session."""

    records_in: int = 0
    paths_touched: int = 0
    deltas_published: int = 0
    rows_shipped: int = 0
    _seen_paths: Set[int] = field(default_factory=set, repr=False)

    def note_records(self, path_id: int, n: int) -> None:
        self.records_in += n
        self._seen_paths.add(int(path_id))
        self.paths_touched = len(self._seen_paths)

    def render(self) -> str:
        return (
            f"ingested={self.records_in} records over "
            f"{self.paths_touched} paths; "
            f"published={self.deltas_published} deltas "
            f"({self.rows_shipped} rows)"
        )


@dataclass(frozen=True)
class PublishedDelta:
    """One published link of a delta chain."""

    path: Path
    delta: RadioMapDelta
    content_hash: str
    parent_hash: Optional[str]
    sequence: int


class StreamIngestor:
    """Folds survey record streams and publishes chained deltas.

    Parameters
    ----------
    n_aps:
        AP dimensionality of the venue's radio map.
    epsilon:
        Section II-B merge threshold (must match the base map's).
    parent_hash:
        Content hash of the artifact the *first* publish applies on
        top of (base radio map or shard bundle); ``None`` starts an
        unanchored chain.
    sequence:
        Sequence number of the first publish.  A fresh chain starts
        at 0; a session *resuming* an existing chain (``parent_hash``
        pointing at a previous delta) passes that delta's sequence
        + 1 so :func:`~repro.ingest.delta.verify_chain`'s
        monotonicity check keeps holding across sessions.
    """

    def __init__(
        self,
        n_aps: int,
        *,
        epsilon: float = DEFAULT_EPSILON,
        parent_hash: Optional[str] = None,
        sequence: int = 0,
    ):
        if sequence < 0:
            raise IngestError("sequence must be non-negative")
        self.builder = RadioMapBuilder(n_aps, epsilon=epsilon)
        self.stats = IngestStats()
        self._parent_hash = parent_hash
        self._sequence = int(sequence)

    @property
    def parent_hash(self) -> Optional[str]:
        """The hash the *next* publish will chain on."""
        return self._parent_hash

    @property
    def sequence(self) -> int:
        return self._sequence

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, path_id: int, records: Iterable) -> None:
        """Fold a chunk of one path's survey records."""
        count = 0
        for record in records:
            self.builder.add_record(path_id, record)
            count += 1
        self.stats.note_records(path_id, count)

    def ingest_table(self, table: WalkingSurveyRecordTable) -> None:
        self.builder.add_table(table)
        self.stats.note_records(table.path_id, len(table))

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def drain(self) -> Optional[RadioMapDelta]:
        """The pending delta without publishing it (``None`` if clean)."""
        return self.builder.drain_delta()

    def publish(self, path) -> PublishedDelta:
        """Write the pending changes as the next delta artifact.

        Raises :class:`IngestError` when nothing was ingested since the
        last publish — an empty delta would be a pointless (and
        lineage-consuming) link.
        """
        delta = self.builder.drain_delta()
        if delta is None:
            raise IngestError(
                "nothing to publish: no records ingested since the "
                "last publish"
            )
        parent = self._parent_hash
        try:
            digest = save_delta(
                delta, path, parent_hash=parent, sequence=self._sequence
            )
        except Exception:
            # The drain already cleared the dirty set; a failed write
            # must not lose those rows from the chain — re-mark them
            # so the next publish ships them.
            self.builder.mark_dirty(delta.path_ids)
            raise
        published = PublishedDelta(
            path=Path(path),
            delta=delta,
            content_hash=digest,
            parent_hash=parent,
            sequence=self._sequence,
        )
        self._parent_hash = digest
        self._sequence += 1
        self.stats.deltas_published += 1
        self.stats.rows_shipped += delta.n_rows
        return published


def simulate_new_survey(
    dataset,
    *,
    n_passes: int = 1,
    seed: int = 0,
    start_path_id: Optional[int] = None,
) -> List[WalkingSurveyRecordTable]:
    """Simulate a fresh crowdsourced survey drop for a dataset's venue.

    Walks the venue's corridor network again (``n_passes`` coverage
    repetitions) under the same survey regime the dataset was built
    with, and renumbers the resulting paths *after* the dataset's
    existing ones so ingesting them extends the radio map instead of
    colliding with surveyed paths.

    ``start_path_id`` overrides where the renumbering starts.  It
    defaults to just past the *dataset's* paths, so a caller
    producing several drops (chained deltas, drift rounds) must pass
    the next free id each round — two drops sharing ids would fold
    into the same paths and replace each other on apply.
    """
    rng = np.random.default_rng(seed)
    # Same knobs as repro.datasets.make_dataset: scan clock just above
    # epsilon, jittered RP passings, heavy pauses — so the new drop
    # lands in the same sparsity regime as the base map.
    config = SurveyConfig(
        n_passes=n_passes,
        scan_interval=1.5,
        scan_jitter=0.3,
        rp_time_jitter=1.2,
        speed_jitter=0.35,
        pause_probability=0.45,
        pause_duration=5.0,
    )
    tables = simulate_survey(dataset.venue, dataset.channel, config, rng)
    next_id = (
        int(dataset.radio_map.path_ids.max()) + 1
        if start_path_id is None
        else int(start_path_id)
    )
    for offset, table in enumerate(tables):
        table.path_id = next_id + offset
    return tables
