"""Differentiation accuracy (DA): balanced accuracy over MAR/MNAR labels.

The paper designs DA as the arithmetic mean of the MAR true-positive
rate and the MNAR true-negative rate, so the metric is agnostic to the
(unknown, imbalanced) proportion of the two classes — unlike an
F-score, which only measures the positive class.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DifferentiationError


def differentiation_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray
) -> float:
    """Balanced accuracy with MAR (0) positive and MNAR (-1) negative.

    Classes absent from ``y_true`` contribute a neutral rate of 0 — a
    degenerate ground-truth set cannot score a perfect DA by omission.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise DifferentiationError("label shape mismatch")
    if y_true.size == 0:
        raise DifferentiationError("empty label arrays")
    valid = np.isin(y_true, (0, -1)) & np.isin(y_pred, (0, -1))
    if not valid.all():
        raise DifferentiationError("labels must be 0 (MAR) or -1 (MNAR)")

    pos = y_true == 0
    neg = y_true == -1
    tpr = float((y_pred[pos] == 0).mean()) if pos.any() else 0.0
    tnr = float((y_pred[neg] == -1).mean()) if neg.any() else 0.0
    return (tpr + tnr) / 2.0


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray) -> dict:
    """MAR/MNAR confusion counts keyed ``tp``/``fn``/``tn``/``fp``.

    MAR is the positive class (as in the DA definition).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return {
        "tp": int(((y_true == 0) & (y_pred == 0)).sum()),
        "fn": int(((y_true == 0) & (y_pred == -1)).sum()),
        "tn": int(((y_true == -1) & (y_pred == -1)).sum()),
        "fp": int(((y_true == -1) & (y_pred == 0)).sum()),
    }
