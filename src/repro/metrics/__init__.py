"""Evaluation metrics: positioning, imputation, differentiation,
trajectory tracking."""

from .differentiation import confusion_counts, differentiation_accuracy
from .imputation import fingerprint_mae, rp_euclidean_error
from .positioning import (
    average_positioning_error,
    error_cdf,
    error_percentile,
    positioning_errors,
)
from .tracking import tracking_improvement, trajectory_rmse

__all__ = [
    "average_positioning_error",
    "confusion_counts",
    "differentiation_accuracy",
    "error_cdf",
    "error_percentile",
    "fingerprint_mae",
    "positioning_errors",
    "rp_euclidean_error",
    "tracking_improvement",
    "trajectory_rmse",
]
