"""Positioning metrics: average positioning error and error CDFs."""

from __future__ import annotations

import numpy as np

from ..exceptions import PositioningError


def positioning_errors(
    estimated: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Per-query Euclidean positioning errors in metres."""
    est = np.asarray(estimated, dtype=float)
    tru = np.asarray(truth, dtype=float)
    if est.shape != tru.shape or est.ndim != 2 or est.shape[1] != 2:
        raise PositioningError("estimates/truth must both be (n, 2)")
    if not np.isfinite(est).all():
        raise PositioningError("estimates contain non-finite values")
    return np.linalg.norm(est - tru, axis=1)


def average_positioning_error(
    estimated: np.ndarray, truth: np.ndarray
) -> float:
    """APE — the paper's headline positioning metric (metres)."""
    errors = positioning_errors(estimated, truth)
    if errors.size == 0:
        raise PositioningError("no queries to score")
    return float(errors.mean())


def error_percentile(
    estimated: np.ndarray, truth: np.ndarray, q: float
) -> float:
    """The ``q``-th percentile positioning error (e.g. q=50 median)."""
    errors = positioning_errors(estimated, truth)
    return float(np.percentile(errors, q))


def error_cdf(
    estimated: np.ndarray, truth: np.ndarray, grid: np.ndarray
) -> np.ndarray:
    """Empirical CDF of positioning errors evaluated on ``grid``."""
    errors = positioning_errors(estimated, truth)
    grid = np.asarray(grid, dtype=float)
    return (errors[None, :] <= grid[:, None]).mean(axis=1)
