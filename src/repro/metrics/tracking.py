"""Trajectory-tracking metrics: RMSE along a track and tracking gain."""

from __future__ import annotations

import numpy as np

from ..exceptions import PositioningError
from .positioning import positioning_errors


def trajectory_rmse(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Root-mean-square positioning error along a trajectory (metres).

    RMSE (not the paper's APE mean) is the tracking headline because
    it punishes the large per-scan outliers a motion model exists to
    suppress.
    """
    errors = positioning_errors(estimated, truth)
    if errors.size == 0:
        raise PositioningError("no trajectory points to score")
    return float(np.sqrt(np.mean(errors**2)))


def tracking_improvement(
    raw: np.ndarray, tracked: np.ndarray, truth: np.ndarray
) -> float:
    """Fractional RMSE reduction of tracked over per-scan positions.

    ``0.25`` means the fused trajectory is 25 % more accurate than
    answering every scan independently; negative values mean the
    motion model hurt.
    """
    raw_rmse = trajectory_rmse(raw, truth)
    tracked_rmse = trajectory_rmse(tracked, truth)
    if raw_rmse == 0.0:
        return 0.0
    return (raw_rmse - tracked_rmse) / raw_rmse
