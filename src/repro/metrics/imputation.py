"""Imputation-quality metrics (Section V-C).

* fingerprint MAE — mean absolute error in dBm over the held-back
  RSSI entries (Fig. 14);
* RP Euclidean distance — mean distance in metres between imputed and
  held-back RP coordinates (Fig. 15).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ImputationError
from ..radiomap import RemovedValues


def fingerprint_mae(
    imputed_fingerprints: np.ndarray, removed: RemovedValues
) -> float:
    """MAE (dBm) on the RSSI entries a beta-removal held back."""
    idx = removed.rssi_indices
    if idx.shape[0] == 0:
        raise ImputationError("no removed RSSI entries to score")
    pred = imputed_fingerprints[idx[:, 0], idx[:, 1]]
    if not np.isfinite(pred).all():
        raise ImputationError("imputed fingerprints contain nulls at scored entries")
    return float(np.abs(pred - removed.rssi_values).mean())


def rp_euclidean_error(
    imputed_rps: np.ndarray, removed: RemovedValues
) -> float:
    """Mean Euclidean distance (m) on the RP labels held back."""
    idx = removed.rp_indices
    if idx.shape[0] == 0:
        raise ImputationError("no removed RPs to score")
    pred = imputed_rps[idx]
    if not np.isfinite(pred).all():
        raise ImputationError("imputed RPs contain nulls at scored entries")
    return float(np.linalg.norm(pred - removed.rp_values, axis=1).mean())
