"""repro — reproduction of "Data Imputation for Sparse Radio Maps in
Indoor Positioning" (ICDE 2023).

The package implements the paper's full pipeline plus every substrate
it depends on:

* :mod:`repro.core` — the missing-RSSI differentiator (DasaKM, TopoAC
  and baselines);
* :mod:`repro.bisim` — the BiSIM encoder-decoder data imputer;
* :mod:`repro.imputers` — every baseline imputer of Section V-C;
* :mod:`repro.positioning` — KNN/WKNN/random-forest location
  estimation and the evaluation-control protocol;
* :mod:`repro.venue` / :mod:`repro.radio` / :mod:`repro.survey` /
  :mod:`repro.radiomap` / :mod:`repro.datasets` — the synthetic data
  substrate standing in for the paper's proprietary mall datasets;
* :mod:`repro.neuro` — a from-scratch autodiff/NN substrate standing
  in for PyTorch;
* :mod:`repro.experiments` — one module per table/figure;
* :mod:`repro.serving` — the serving subsystem: per-venue shards,
  batched mixed-venue query routing, LRU caching and
  latency/throughput stats (see its "Serving API" docstring);
* :mod:`repro.artifacts` — the versioned on-disk artifact store the
  pipeline stages communicate through (train once, serve many);
* :mod:`repro.tracking` — trajectory tracking: per-device sessions
  fusing per-scan fixes with a constant-velocity Kalman filter,
  vectorized across thousands of live sessions.

Quickstart::

    from repro.datasets import make_dataset
    from repro.core import TopoACDifferentiator
    from repro.bisim import BiSIMImputer
    from repro.imputers import run_imputer

    ds = make_dataset("kaide", scale=0.4)
    mask = TopoACDifferentiator(
        entities=ds.venue.plan.entities
    ).differentiate(ds.radio_map)
    result = run_imputer(BiSIMImputer(), ds.radio_map, mask)
"""

__version__ = "1.0.0"

from . import (
    artifacts,
    bisim,
    cluster,
    core,
    datasets,
    experiments,
    geometry,
    imputers,
    metrics,
    neuro,
    positioning,
    radio,
    radiomap,
    serving,
    survey,
    tracking,
    venue,
    viz,
)
from .exceptions import ReproError

__all__ = [
    "ReproError",
    "__version__",
    "artifacts",
    "bisim",
    "cluster",
    "core",
    "datasets",
    "experiments",
    "geometry",
    "imputers",
    "metrics",
    "neuro",
    "positioning",
    "radio",
    "radiomap",
    "serving",
    "survey",
    "tracking",
    "venue",
    "viz",
]
