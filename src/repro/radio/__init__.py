"""Radio channel simulation: propagation, detection floor, random loss."""

from .channel import (
    ChannelModel,
    Measurement,
    calibrate_detection_floor,
    make_channel,
)
from .propagation import (
    BLUETOOTH_PROPAGATION,
    WIFI_PROPAGATION,
    PropagationModel,
)

__all__ = [
    "BLUETOOTH_PROPAGATION",
    "WIFI_PROPAGATION",
    "ChannelModel",
    "calibrate_detection_floor",
    "Measurement",
    "PropagationModel",
    "make_channel",
]
