"""Radio channel simulation: propagation, detection floor, random loss."""

from .channel import (
    ChannelModel,
    Measurement,
    calibrate_detection_floor,
    make_channel,
)
from .multifloor import (
    DEFAULT_FLOOR_LOSS_DB,
    floor_attenuated_aps,
    make_floor_channels,
)
from .propagation import (
    BLUETOOTH_PROPAGATION,
    WIFI_PROPAGATION,
    PropagationModel,
)

__all__ = [
    "BLUETOOTH_PROPAGATION",
    "DEFAULT_FLOOR_LOSS_DB",
    "WIFI_PROPAGATION",
    "ChannelModel",
    "calibrate_detection_floor",
    "floor_attenuated_aps",
    "Measurement",
    "PropagationModel",
    "make_channel",
    "make_floor_channels",
]
