"""End-to-end channel: propagation + detection floor + random losses.

Separates the two missing-data mechanisms the paper differentiates:

* **MNAR** — the mean received power is below the device's detection
  floor, so the AP is *unobservable* at that location.  Deterministic
  given geometry (up to shadowing).
* **MAR** — the AP is observable, but a random event (a passing person,
  a momentary scan miss) drops the reading.  Bernoulli per measurement.

:meth:`ChannelModel.measure` returns both the observed fingerprint (with
NaN for missing entries) and the ground-truth missing-type labels, which
real datasets cannot provide and which lets us score differentiators
directly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..constants import RSSI_MAX, RSSI_MIN
from ..exceptions import VenueError
from ..venue import AccessPoint, FloorPlan, ap_positions, ap_powers
from .propagation import (
    BLUETOOTH_PROPAGATION,
    WIFI_PROPAGATION,
    PropagationModel,
)


@dataclass
class Measurement:
    """One fingerprint measurement with ground-truth missing labels.

    Attributes
    ----------
    rssi:
        ``(D,)`` float array; NaN where the reading is missing.
    missing_type:
        ``(D,)`` int array: ``1`` observed, ``0`` MAR, ``-1`` MNAR.
    """

    rssi: np.ndarray
    missing_type: np.ndarray


@dataclass
class ChannelModel:
    """Synthesises fingerprints for a venue.

    Parameters
    ----------
    plan:
        Floor plan providing wall segments.
    access_points:
        Deployed APs.
    propagation:
        Path-loss law.
    detection_floor_dbm:
        Readings whose *mean* power is below this are unobservable
        (MNAR mechanism).
    mar_rate:
        Per-(measurement, AP) probability that an observable reading is
        randomly lost (MAR mechanism).
    """

    plan: FloorPlan
    access_points: List[AccessPoint]
    propagation: PropagationModel = field(default_factory=lambda: WIFI_PROPAGATION)
    detection_floor_dbm: float = -95.0
    mar_rate: float = 0.30

    def __post_init__(self) -> None:
        if not self.access_points:
            raise VenueError("channel needs at least one AP")
        if not 0.0 <= self.mar_rate < 1.0:
            raise VenueError("mar_rate must be in [0, 1)")
        self._ap_pos = ap_positions(self.access_points)
        self._ap_pow = ap_powers(self.access_points)
        self._wall_starts, self._wall_ends = self.plan.wall_segments()
        self._mean_cache: dict = {}

    @property
    def n_aps(self) -> int:
        return len(self.access_points)

    # ------------------------------------------------------------------
    def mean_rssi_matrix(self, points: np.ndarray) -> np.ndarray:
        """Mean RSSI of every AP at every point: ``(n_points, D)``."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        out = np.empty((pts.shape[0], self.n_aps))
        for d in range(self.n_aps):
            out[:, d] = self.propagation.mean_rssi(
                self._ap_pos[d],
                self._ap_pow[d],
                pts,
                self._wall_starts,
                self._wall_ends,
            )
        return out

    def observable_mask(self, points: np.ndarray) -> np.ndarray:
        """Boolean ``(n_points, D)``: mean power above the detection floor."""
        return self.mean_rssi_matrix(points) >= self.detection_floor_dbm

    def measure(
        self, point: np.ndarray, rng: np.random.Generator
    ) -> Measurement:
        """Take one fingerprint measurement at ``point``.

        Applies shadowing, the detection floor (→ MNAR), random losses
        (→ MAR) and integer quantisation into ``[-99, 0]`` dBm.
        """
        pt = np.asarray(point, dtype=float)[None, :]
        mean = self.mean_rssi_matrix(pt)[0]
        noisy = mean + rng.normal(
            0.0, self.propagation.shadowing_sigma_db, size=mean.shape
        )
        rssi = np.clip(np.rint(noisy), RSSI_MIN, RSSI_MAX).astype(float)

        observable = mean >= self.detection_floor_dbm
        mar_loss = observable & (rng.random(self.n_aps) < self.mar_rate)

        missing_type = np.ones(self.n_aps, dtype=int)
        missing_type[~observable] = -1
        missing_type[mar_loss] = 0
        rssi[missing_type != 1] = np.nan
        return Measurement(rssi=rssi, missing_type=missing_type)

    def ground_truth_fingerprint(self, point: np.ndarray) -> np.ndarray:
        """Noise-free quantised fingerprint with MNARs as NaN.

        This is the imputation target: the values a MAR *would* have had,
        and NaN where the AP is genuinely unobservable.
        """
        pt = np.asarray(point, dtype=float)[None, :]
        mean = self.mean_rssi_matrix(pt)[0]
        rssi = np.clip(np.rint(mean), RSSI_MIN, RSSI_MAX).astype(float)
        rssi[mean < self.detection_floor_dbm] = np.nan
        return rssi


def calibrate_detection_floor(
    channel: ChannelModel,
    sample_points: np.ndarray,
    target_observable_fraction: float,
) -> ChannelModel:
    """Return a copy of ``channel`` whose detection floor is tuned.

    Real venues are large relative to AP range, so only ~6-15 % of
    (location, AP) pairs are observable — that is what makes the paper's
    radio maps 85-94 % sparse (Table V).  When simulating a *scaled*
    venue the geometry shrinks but device sensitivity does not, so we
    instead pick the detection floor as the RSSI quantile that leaves
    ``target_observable_fraction`` of (sample point, AP) pairs
    observable.  This preserves both the sparsity level and the spatial
    locality of observability that the differentiator relies on.
    """
    if not 0.0 < target_observable_fraction < 1.0:
        raise VenueError("target fraction must be in (0, 1)")
    mean = channel.mean_rssi_matrix(sample_points)
    floor = float(np.quantile(mean, 1.0 - target_observable_fraction))
    return ChannelModel(
        plan=channel.plan,
        access_points=channel.access_points,
        propagation=channel.propagation,
        detection_floor_dbm=floor,
        mar_rate=channel.mar_rate,
    )


def make_channel(
    plan: FloorPlan,
    access_points: List[AccessPoint],
    kind: str = "wifi",
    **overrides,
) -> ChannelModel:
    """Channel factory with per-technology presets."""
    if kind == "wifi":
        params = dict(propagation=WIFI_PROPAGATION, detection_floor_dbm=-95.0, mar_rate=0.30)
    elif kind == "bluetooth":
        params = dict(propagation=BLUETOOTH_PROPAGATION, detection_floor_dbm=-92.0, mar_rate=0.35)
    else:
        raise VenueError(f"unknown channel kind {kind!r}")
    params.update(overrides)
    return ChannelModel(plan=plan, access_points=access_points, **params)
