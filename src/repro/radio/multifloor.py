"""Per-floor channels over a stacked venue's global AP space.

Every floor gets its own :class:`~repro.radio.ChannelModel` whose AP
list is the *whole venue's* (global ap ids, shared fingerprint
dimension ``D``), with cross-floor APs attenuated by a per-slab
penetration loss: an AP two slabs away transmits through two concrete
floors, so its effective power drops by ``2 * floor_loss_db``.  Walls
are the measuring floor's own — in-slab propagation dominates, and the
slab loss subsumes the geometry of other floors.

That single knob produces the physics a floor classifier feeds on:
same-floor APs dominate every scan, while enough cross-floor leakage
survives the detection floor to make classification a real (not
trivially separable) problem.
"""

from __future__ import annotations

from typing import Dict, List

from ..exceptions import VenueError
from ..venue import AccessPoint
from ..venue.multifloor import Floor, Venue
from .channel import ChannelModel, calibrate_detection_floor, make_channel

#: Concrete-slab penetration loss (dB per floor crossed) — mid-range
#: of the 10-25 dB the indoor propagation literature reports.
DEFAULT_FLOOR_LOSS_DB = 18.0


def floor_attenuated_aps(
    venue: Venue, floor: Floor, floor_loss_db: float
) -> List[AccessPoint]:
    """The venue's global AP list as heard *on* ``floor``.

    Same xy (aligned tower), transmit power reduced by
    ``floor_loss_db`` per slab between the AP's home floor and the
    measuring floor.
    """
    if floor_loss_db < 0:
        raise VenueError("floor_loss_db must be >= 0")
    aps: List[AccessPoint] = []
    for home, home_floor in enumerate(venue.floors):
        loss = floor_loss_db * abs(home_floor.level - floor.level)
        for ap in home_floor.access_points:
            aps.append(
                AccessPoint(
                    ap_id=ap.ap_id,
                    position=ap.position,
                    tx_power_dbm=ap.tx_power_dbm - loss,
                )
            )
    return aps


def make_floor_channels(
    venue: Venue,
    *,
    floor_loss_db: float = DEFAULT_FLOOR_LOSS_DB,
    observable_fraction: float = 0.12,
    **overrides,
) -> Dict[str, ChannelModel]:
    """One calibrated channel per floor, ``floor_id`` → channel.

    Each channel spans the global AP axis; its detection floor is
    calibrated on the floor's own reference points so the *per-floor*
    observable (point, AP)-pair fraction lands at
    ``observable_fraction`` — the paper's sparsity regime, held
    per slab regardless of how many floors stack above it.
    """
    channels: Dict[str, ChannelModel] = {}
    for floor in venue.floors:
        aps = floor_attenuated_aps(venue, floor, floor_loss_db)
        channel = make_channel(
            floor.plan, aps, venue.channel_kind, **overrides
        )
        channels[floor.floor_id] = calibrate_detection_floor(
            channel, floor.reference_points, observable_fraction
        )
    return channels
