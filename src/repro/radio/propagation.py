"""Radio propagation: log-distance path loss with wall attenuation.

The received power at distance ``d`` from an AP follows the standard
indoor log-distance model

    RSSI(d) = P_tx - 10 * n * log10(max(d, d0) / d0) - W * L_wall + X_sigma

where ``n`` is the path-loss exponent, ``W`` the number of walls crossed
by the straight transmitter-receiver path, ``L_wall`` the per-wall
attenuation, and ``X_sigma`` zero-mean log-normal shadowing.  This is
the textbook model (Rappaport) and produces exactly the phenomenon the
paper's differentiator exploits: observability of an AP is a *local*
property of space (Fig. 3/5), because distance and intervening walls
determine whether the signal falls below the receiver's detection floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import VenueError
from ..geometry import count_crossings_vectorized


@dataclass(frozen=True)
class PropagationModel:
    """Deterministic + stochastic parameters of the path-loss law.

    Attributes
    ----------
    path_loss_exponent:
        ``n`` in the log-distance law; ~2 free space, 2.5-4 indoors.
    wall_loss_db:
        Attenuation per crossed wall segment (dB).
    shadowing_sigma_db:
        Std-dev of log-normal shadowing (dB).
    reference_distance_m:
        ``d0``; distances below it are clamped.
    """

    path_loss_exponent: float = 3.0
    wall_loss_db: float = 6.0
    shadowing_sigma_db: float = 3.0
    reference_distance_m: float = 1.0

    def __post_init__(self) -> None:
        if self.path_loss_exponent <= 0:
            raise VenueError("path-loss exponent must be positive")
        if self.reference_distance_m <= 0:
            raise VenueError("reference distance must be positive")
        if self.shadowing_sigma_db < 0 or self.wall_loss_db < 0:
            raise VenueError("losses must be non-negative")

    # ------------------------------------------------------------------
    def mean_rssi(
        self,
        ap_position: np.ndarray,
        ap_power_dbm: float,
        points: np.ndarray,
        wall_starts: np.ndarray,
        wall_ends: np.ndarray,
    ) -> np.ndarray:
        """Mean (shadowing-free) RSSI of one AP at many points.

        Parameters
        ----------
        ap_position:
            ``(2,)`` transmitter location.
        points:
            ``(n, 2)`` receiver locations.
        wall_starts, wall_ends:
            ``(m, 2)`` wall-segment endpoints.

        Returns
        -------
        ``(n,)`` float array of mean RSSI in dBm (unbounded below).
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        d = np.linalg.norm(pts - np.asarray(ap_position, dtype=float), axis=1)
        d = np.maximum(d, self.reference_distance_m)
        loss = 10.0 * self.path_loss_exponent * np.log10(
            d / self.reference_distance_m
        )
        walls = count_crossings_vectorized(
            np.asarray(ap_position, dtype=float), pts, wall_starts, wall_ends
        )
        return ap_power_dbm - loss - self.wall_loss_db * walls

    def sample_rssi(
        self,
        ap_position: np.ndarray,
        ap_power_dbm: float,
        points: np.ndarray,
        wall_starts: np.ndarray,
        wall_ends: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mean RSSI plus i.i.d. log-normal shadowing noise."""
        mean = self.mean_rssi(
            ap_position, ap_power_dbm, points, wall_starts, wall_ends
        )
        if self.shadowing_sigma_db == 0:
            return mean
        return mean + rng.normal(0.0, self.shadowing_sigma_db, size=mean.shape)


#: Wi-Fi-like propagation (longer range, moderate wall loss).
WIFI_PROPAGATION = PropagationModel(
    path_loss_exponent=3.0,
    wall_loss_db=6.0,
    shadowing_sigma_db=3.0,
)

#: Bluetooth-low-energy-like propagation (shorter range, noisier).
BLUETOOTH_PROPAGATION = PropagationModel(
    path_loss_exponent=3.6,
    wall_loss_db=8.0,
    shadowing_sigma_db=5.0,
)
