"""Evaluation splits per the paper's control protocol (Section V-A).

"Given an original radio map, we select 10% of the records with
observed RPs as testing data and use the RPs as ground-truth locations
for evaluation."  The test records keep their fingerprints (imputation
is applied to them too) but their RP labels are hidden from the
pipeline; the remaining records form the radio map used for location
estimation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ExperimentError
from ..radiomap import RadioMap


@dataclass
class EvaluationSplit:
    """Hidden-RP evaluation split.

    Attributes
    ----------
    radio_map:
        Copy of the input map with test-record RPs nulled out.
    test_indices:
        Rows whose RPs were hidden.
    test_locations:
        The hidden ground-truth RP coordinates, aligned with
        ``test_indices``.
    """

    radio_map: RadioMap
    test_indices: np.ndarray
    test_locations: np.ndarray


def make_evaluation_split(
    radio_map: RadioMap,
    rng: np.random.Generator,
    *,
    test_fraction: float = 0.10,
) -> EvaluationSplit:
    """Hide the RPs of a random ``test_fraction`` of observed-RP records."""
    if not 0.0 < test_fraction < 1.0:
        raise ExperimentError("test fraction must be in (0, 1)")
    observed = radio_map.observed_rp_indices()
    if observed.size < 2:
        raise ExperimentError("too few observed RPs to split")
    k = max(1, int(round(test_fraction * observed.size)))
    test_idx = np.sort(rng.choice(observed, size=k, replace=False))
    out = radio_map.copy()
    test_locations = out.rps[test_idx].copy()
    out.rps[test_idx] = np.nan
    return EvaluationSplit(
        radio_map=out,
        test_indices=test_idx,
        test_locations=test_locations,
    )
