"""Synthetic multi-floor dataset factory.

``make_multifloor_dataset("kaide", n_floors=2)`` is the stacked twin
of :func:`~repro.datasets.make_dataset`: build the tower
(:func:`~repro.venue.build_multifloor_venue`), derive one calibrated
channel per floor over the global AP axis
(:func:`~repro.radio.multifloor.make_floor_channels`), run the walking
survey independently on every slab, and partition the created radio
maps by floor (:class:`~repro.radiomap.multifloor.FloorRadioMaps`).
Everything downstream — shard builds, the floor classifier, tracking
ground truth — hangs off this one object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..constants import DEFAULT_EPSILON
from ..radio import ChannelModel
from ..radio.multifloor import DEFAULT_FLOOR_LOSS_DB, make_floor_channels
from ..radiomap.multifloor import FloorRadioMaps, build_floor_radio_maps
from ..survey import SurveyConfig, WalkingSurveyRecordTable, simulate_survey
from ..venue.multifloor import Venue, build_multifloor_venue
from .synthetic import _OBSERVABLE_FRACTION


@dataclass
class MultiFloorDataset:
    """Everything one stacked venue contributes to the experiments."""

    name: str
    venue: Venue
    channels: Dict[str, ChannelModel]
    survey_tables: Dict[str, List[WalkingSurveyRecordTable]]
    radio_maps: FloorRadioMaps
    seed: int

    @property
    def n_aps(self) -> int:
        return self.venue.n_aps

    def describe(self) -> str:
        return (
            f"{self.venue.describe()}\n  {self.radio_maps.describe()}"
        )


def make_multifloor_dataset(
    name: str,
    *,
    n_floors: int = 2,
    scale: float = 0.35,
    seed: int = 7,
    n_passes: int = 3,
    epsilon: float = DEFAULT_EPSILON,
    survey_config: Optional[SurveyConfig] = None,
    mar_rate: Optional[float] = None,
    floor_loss_db: float = DEFAULT_FLOOR_LOSS_DB,
) -> MultiFloorDataset:
    """Build a complete stacked-venue dataset.

    Mirrors :func:`~repro.datasets.make_dataset` parameter-for-
    parameter, plus ``n_floors`` and the slab penetration loss.  Each
    floor is surveyed with its own rng stream (seeded off ``seed`` and
    the floor level), so fleets and maps are reproducible per floor.
    """
    venue = build_multifloor_venue(
        name, n_floors=n_floors, scale=scale, seed=seed
    )
    channels = make_floor_channels(
        venue,
        floor_loss_db=floor_loss_db,
        observable_fraction=_OBSERVABLE_FRACTION.get(name, 0.10),
        **({} if mar_rate is None else {"mar_rate": mar_rate}),
    )
    config = survey_config or SurveyConfig(
        n_passes=n_passes,
        scan_interval=1.5,
        scan_jitter=0.3,
        rp_time_jitter=1.2,
        speed_jitter=0.35,
        pause_probability=0.45,
        pause_duration=5.0,
    )
    tables: Dict[str, List[WalkingSurveyRecordTable]] = {}
    for floor in venue.floors:
        rng = np.random.default_rng(seed + 1 + 1000 * floor.level)
        tables[floor.floor_id] = simulate_survey(
            venue.floor_spec(floor.floor_id),
            channels[floor.floor_id],
            config,
            rng,
        )
    radio_maps = build_floor_radio_maps(
        venue.name, tables, epsilon=epsilon
    )
    return MultiFloorDataset(
        name=name,
        venue=venue,
        channels=channels,
        survey_tables=tables,
        radio_maps=radio_maps,
        seed=seed,
    )
