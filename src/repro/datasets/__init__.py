"""Synthetic dataset factory and evaluation splits."""

from .splits import EvaluationSplit, make_evaluation_split
from .synthetic import Dataset, make_dataset

__all__ = [
    "Dataset",
    "EvaluationSplit",
    "make_dataset",
    "make_evaluation_split",
]
