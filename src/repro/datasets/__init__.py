"""Synthetic dataset factory and evaluation splits."""

from .multifloor import MultiFloorDataset, make_multifloor_dataset
from .splits import EvaluationSplit, make_evaluation_split
from .synthetic import Dataset, make_dataset

__all__ = [
    "Dataset",
    "EvaluationSplit",
    "MultiFloorDataset",
    "make_dataset",
    "make_evaluation_split",
    "make_multifloor_dataset",
]
