"""End-to-end synthetic dataset factory.

``make_dataset("kaide")`` reproduces the paper's data pipeline for one
venue: build the floor plan and AP deployment, calibrate the channel so
the created radio map reaches the paper's sparsity regime (Table V:
85.6-93.7 % missing RSSIs), simulate the walking survey, and run the
Section II-B radio-map creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..constants import DEFAULT_EPSILON
from ..radio import ChannelModel, calibrate_detection_floor, make_channel
from ..radiomap import RadioMap, create_radio_map
from ..survey import SurveyConfig, WalkingSurveyRecordTable, simulate_survey
from ..venue import VenueSpec, build_venue

#: Observable (point, AP)-pair fraction targets per venue, chosen so the
#: created radio maps land in Table V's missing-RSSI band.
_OBSERVABLE_FRACTION = {
    "kaide": 0.14,
    "wanda": 0.07,
    "longhu": 0.10,
}


@dataclass
class Dataset:
    """Everything one venue contributes to the experiments.

    Attributes
    ----------
    venue:
        Floor plan + APs + RPs.
    channel:
        Calibrated channel model (also the ground-truth oracle).
    survey_tables:
        Raw walking-survey record tables (pre radio-map creation).
    radio_map:
        The created sparse radio map (Section II-B output).
    """

    name: str
    venue: VenueSpec
    channel: ChannelModel
    survey_tables: List[WalkingSurveyRecordTable]
    radio_map: RadioMap
    seed: int

    def describe(self) -> str:
        return (
            f"{self.venue.describe()}\n  {self.radio_map.describe()}"
        )


def make_dataset(
    name: str,
    *,
    scale: float = 0.35,
    seed: int = 7,
    n_passes: int = 3,
    epsilon: float = DEFAULT_EPSILON,
    survey_config: Optional[SurveyConfig] = None,
    mar_rate: Optional[float] = None,
) -> Dataset:
    """Build a complete synthetic dataset for one of the paper's venues.

    Parameters
    ----------
    name:
        ``"kaide"``, ``"wanda"`` or ``"longhu"``.
    scale:
        Linear venue shrink factor; 1.0 approximates the paper's venue
        sizes, smaller values give laptop-scale experiments.
    n_passes:
        Corridor-network coverage repetitions (controls #fingerprints).
    epsilon:
        Radio-map creation merge threshold (paper: 1 s).
    mar_rate:
        Override the channel's random-loss rate.
    """
    venue = build_venue(name, scale=scale, seed=seed)
    overrides = {} if mar_rate is None else {"mar_rate": mar_rate}
    channel = make_channel(
        venue.plan, venue.access_points, venue.channel_kind, **overrides
    )
    # Calibrate the detection floor on a dense point sample along the
    # corridors (where all measurements happen).
    channel = calibrate_detection_floor(
        channel,
        venue.reference_points,
        _OBSERVABLE_FRACTION.get(name, 0.10),
    )
    rng = np.random.default_rng(seed + 1)
    # A scan clock just above epsilon (so Step 1 does not chain-merge
    # everything) against multi-second RP passings with strong timing
    # jitter reproduces the paper's regime where most records lack an
    # RP label; heavy pauses and pace drift reproduce the real-survey
    # irregularity that defeats time-linear RP interpolation.
    config = survey_config or SurveyConfig(
        n_passes=n_passes,
        scan_interval=1.5,
        scan_jitter=0.3,
        rp_time_jitter=1.2,
        speed_jitter=0.35,
        pause_probability=0.45,
        pause_duration=5.0,
    )
    tables = simulate_survey(venue, channel, config, rng)
    radio_map = create_radio_map(tables, epsilon=epsilon)
    return Dataset(
        name=name,
        venue=venue,
        channel=channel,
        survey_tables=tables,
        radio_map=radio_map,
        seed=seed,
    )
