"""Algorithm 1 (BINARIZATION) and clustering-sample construction.

``binarize`` turns each fingerprint into a binary *AP profile*: 1 where
the AP was observed, 0 where the RSSI is null.  Algorithm 2 then
clusters samples ``x_i = b_i ⊕ l̂_i`` — the profile concatenated with
the (linearly interpolated) RP location.

The paper does not specify how the two heterogeneous parts are scaled
against each other.  We normalise locations to the unit square of the
venue bounds and scale them by ``location_weight * sqrt(D)`` so a
full-venue location difference is comparable to flipping every profile
bit; ``location_weight`` exposes the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DifferentiationError
from ..radiomap import RadioMap, interpolate_rps_linear


def binarize(fingerprints: np.ndarray) -> np.ndarray:
    """Algorithm 1 applied row-wise: ``(N, D)`` → binary ``(N, D)``."""
    fp = np.asarray(fingerprints, dtype=float)
    if fp.ndim != 2:
        raise DifferentiationError("fingerprints must be (N, D)")
    return np.isfinite(fp).astype(float)


@dataclass
class ClusterSamples:
    """The sample set ``X`` of Algorithm 2 plus its building blocks.

    Attributes
    ----------
    samples:
        ``(N, D + 2)`` concatenated profile ⊕ scaled location.
    profiles:
        ``(N, D)`` binary AP profiles.
    locations:
        ``(N, 2)`` interpolated RP locations in *metres* (unscaled) —
        TopoAC's topological examination works in venue coordinates.
    """

    samples: np.ndarray
    profiles: np.ndarray
    locations: np.ndarray


def build_cluster_samples(
    radio_map: RadioMap,
    *,
    location_weight: float = 1.0,
) -> ClusterSamples:
    """Construct Algorithm 2's sample set ``X`` from a radio map."""
    if radio_map.n_records == 0:
        raise DifferentiationError("empty radio map")
    profiles = binarize(radio_map.fingerprints)
    locations = interpolate_rps_linear(radio_map)

    span = locations.max(axis=0) - locations.min(axis=0)
    span[span == 0] = 1.0
    unit = (locations - locations.min(axis=0)) / span
    scale = location_weight * np.sqrt(radio_map.n_aps)
    samples = np.concatenate([profiles, unit * scale], axis=1)
    return ClusterSamples(
        samples=samples, profiles=profiles, locations=locations
    )
