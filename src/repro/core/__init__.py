"""The paper's core contribution, part 1: the missing-RSSI differentiator.

Implements Algorithms 1-5: binarisation, the clustering-based
MAR/MNAR differentiation rule, DasaKM, TopoAC, plus the ElbowKM /
MAR-only / MNAR-only baselines of Section V-B.
"""

from .binarization import ClusterSamples, binarize, build_cluster_samples
from .dasakm import (
    DasaKMDifferentiator,
    GroundTruthSet,
    evaluate_da_for_k,
    sample_ground_truth,
)
from .differentiation import (
    Differentiator,
    MAROnlyDifferentiator,
    MNAROnlyDifferentiator,
    differentiate_with_clusters,
    validate_mask,
)
from .elbowkm import ElbowKMDifferentiator
from .topoac import TopoACDifferentiator, entity_exist

__all__ = [
    "ClusterSamples",
    "DasaKMDifferentiator",
    "Differentiator",
    "ElbowKMDifferentiator",
    "GroundTruthSet",
    "MAROnlyDifferentiator",
    "MNAROnlyDifferentiator",
    "TopoACDifferentiator",
    "binarize",
    "build_cluster_samples",
    "differentiate_with_clusters",
    "entity_exist",
    "evaluate_da_for_k",
    "sample_ground_truth",
    "validate_mask",
]
