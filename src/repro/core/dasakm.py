"""DasaKM — Differentiation-accuracy-aware, sampling-based K-means.

Section III-B / Algorithm 3.  ElbowKM picks K by the within-cluster sum
of squares, which ignores the actual goal (telling MARs from MNARs).
DasaKM instead *creates* ground-truth MARs and MNARs by construction:

* **MAR sampling** — nullify known-observed entries; whatever was
  observed is certainly observable, so these nulls are true MARs.
* **MNAR sampling** — find a patch of 6 adjacent RPs whose records all
  miss some AP; a dimension missed across a sufficiently large area is
  genuinely unobservable there, so those nulls are true MNARs.

For each candidate K (1..U) and each MNAR:MAR proportion γ ∈ Γ, the
non-ground-truth samples are clustered, ground-truth samples are
assigned to the nearest centre, Algorithm 2's η-rule predicts each
ground-truth entry's type, and the **differentiation accuracy** (DA,
a balanced accuracy: mean of the MAR true-positive rate and the MNAR
true-negative rate) is computed.  The K with the best average DA wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import kmeans
from ..constants import DEFAULT_ETA, MNAR_SAMPLE_PATCH_SIZE
from ..exceptions import DifferentiationError
from ..metrics.differentiation import differentiation_accuracy
from ..radiomap import RadioMap
from .binarization import ClusterSamples, build_cluster_samples
from .differentiation import Differentiator, differentiate_with_clusters


@dataclass
class GroundTruthSet:
    """One sampled ground-truth set GS_γ.

    Attributes
    ----------
    sample_indices:
        Rows of ``X`` participating in the ground truth (removed from
        the clustering set X_γ).
    modified_profiles:
        Copies of those rows' binary profiles *after* MAR nullification.
    entries:
        List of ``(local_row, ap_dim, true_label)`` with ``true_label``
        0 for MAR and -1 for MNAR; ``local_row`` indexes into
        ``sample_indices``.
    """

    sample_indices: np.ndarray
    modified_profiles: np.ndarray
    entries: List[Tuple[int, int, int]] = field(default_factory=list)


def sample_ground_truth(
    samples: ClusterSamples,
    gamma: float,
    rng: np.random.Generator,
    *,
    n_mnars: int = 60,
    patch_size: int = MNAR_SAMPLE_PATCH_SIZE,
    patch_radius: float = 12.0,
) -> Optional[GroundTruthSet]:
    """Sample a ground-truth set with ``#MNARs / #MARs = gamma``.

    Returns None when the radio map cannot supply the requested counts
    (e.g. no patch of adjacent RPs shares an all-missing dimension).
    """
    if gamma <= 0:
        raise DifferentiationError("gamma must be positive")
    profiles = samples.profiles
    locations = samples.locations
    n = profiles.shape[0]

    # --- MNARs: patches of adjacent records with a shared missing dim.
    mnar_entries: List[Tuple[int, int]] = []
    involved: set = set()
    tries = 0
    while len(mnar_entries) < n_mnars and tries < 60:
        tries += 1
        patch = _sample_patch(locations, patch_size, patch_radius, rng)
        if patch is None:
            break
        sub = profiles[patch]
        all_missing_dims = np.where(sub.sum(axis=0) == 0)[0]
        if all_missing_dims.size == 0:
            continue
        dim = int(rng.choice(all_missing_dims))
        for row in patch:
            if (row, dim) not in involved:
                mnar_entries.append((row, dim))
                involved.add((row, dim))
    if not mnar_entries:
        return None
    mnar_entries = mnar_entries[:n_mnars]

    # --- MARs: nullify observed entries in rows not already used.
    n_mars = max(1, int(round(len(mnar_entries) / gamma)))
    obs_rows, obs_cols = np.where(profiles == 1)
    candidates = [
        (int(r), int(c))
        for r, c in zip(obs_rows, obs_cols)
        if (int(r), int(c)) not in involved
    ]
    if len(candidates) < n_mars:
        return None
    pick = rng.choice(len(candidates), size=n_mars, replace=False)
    mar_entries = [candidates[int(i)] for i in pick]

    rows = sorted({r for r, _ in mnar_entries} | {r for r, _ in mar_entries})
    row_index = {r: i for i, r in enumerate(rows)}
    modified = profiles[rows].copy()
    entries: List[Tuple[int, int, int]] = []
    for r, c in mar_entries:
        modified[row_index[r], c] = 0.0  # nullify the observation
        entries.append((row_index[r], c, 0))
    for r, c in mnar_entries:
        entries.append((row_index[r], c, -1))
    return GroundTruthSet(
        sample_indices=np.array(rows, dtype=int),
        modified_profiles=modified,
        entries=entries,
    )


def _sample_patch(
    locations: np.ndarray,
    size: int,
    radius: float,
    rng: np.random.Generator,
) -> Optional[np.ndarray]:
    """Greedy nearest-neighbour patch of ``size`` adjacent records."""
    n = locations.shape[0]
    if n < size:
        return None
    seed = int(rng.integers(n))
    d = np.linalg.norm(locations - locations[seed], axis=1)
    order = np.argsort(d, kind="stable")
    patch = order[:size]
    if d[patch].max() > radius * 2:
        return None
    return patch


def evaluate_da_for_k(
    samples: ClusterSamples,
    gt: GroundTruthSet,
    k: int,
    eta: float,
    rng: np.random.Generator,
) -> float:
    """Cluster X_γ with K-means and score DA on the ground-truth set."""
    keep = np.setdiff1d(
        np.arange(samples.samples.shape[0]), gt.sample_indices
    )
    if keep.size < k:
        return 0.0
    x_gamma = samples.samples[keep]
    result = kmeans(x_gamma, k, rng, n_init=1)

    # Per-cluster observed fraction per AP dimension, from X_γ members.
    d = samples.profiles.shape[1]
    frac = np.zeros((k, d))
    for j, members in enumerate(result.clusters()):
        if members.size:
            frac[j] = samples.profiles[keep][members].mean(axis=0)

    # Assign ground-truth samples (with scaled-location features intact)
    # to nearest centres, then apply the eta rule.
    gt_samples = samples.samples[gt.sample_indices].copy()
    gt_samples[:, :d] = gt.modified_profiles
    dist = np.linalg.norm(
        gt_samples[:, None, :] - result.centers[None, :, :], axis=2
    )
    assign = np.argmin(dist, axis=1)

    y_true = np.array([lbl for _, _, lbl in gt.entries])
    y_pred = np.array(
        [
            0 if frac[assign[row], dim] > eta else -1
            for row, dim, _ in gt.entries
        ]
    )
    return differentiation_accuracy(y_true, y_pred)


@dataclass
class DasaKMDifferentiator(Differentiator):
    """Algorithm 3 wrapped as a :class:`Differentiator`.

    Parameters
    ----------
    upper_bound:
        U — largest K examined (paper: 200; scale down for speed).
    proportions:
        Γ — the MNAR:MAR proportions to average DA over (paper: 1..20).
    eta:
        Algorithm 2's fraction threshold.
    n_mnars:
        Number of ground-truth MNAR entries sampled per set.
    """

    upper_bound: int = 30
    proportions: Sequence[float] = (1, 2, 4, 8, 16)
    eta: float = DEFAULT_ETA
    location_weight: float = 1.0
    n_mnars: int = 60
    seed: int = 11
    name: str = "DasaKM"

    #: Filled by :meth:`differentiate` for inspection/tests.
    selected_k_: Optional[int] = None

    def differentiate(self, radio_map: RadioMap) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        samples = build_cluster_samples(
            radio_map, location_weight=self.location_weight
        )
        ground_truths = []
        for gamma in self.proportions:
            gt = sample_ground_truth(
                samples, gamma, rng, n_mnars=self.n_mnars
            )
            if gt is not None:
                ground_truths.append(gt)

        n = samples.samples.shape[0]
        u = min(self.upper_bound, n)
        best_k, best_da = 1, -1.0
        if ground_truths:
            for k in range(1, u + 1):
                das = [
                    evaluate_da_for_k(samples, gt, k, self.eta, rng)
                    for gt in ground_truths
                ]
                avg = float(np.mean(das))
                if avg > best_da:
                    best_da, best_k = avg, k
        else:
            # Degenerate input (no samplable ground truth): fall back to
            # a modest K so differentiation still happens.
            best_k = max(1, min(8, n // 4))
        self.selected_k_ = best_k
        final = kmeans(samples.samples, best_k, rng, n_init=3)
        return differentiate_with_clusters(
            samples.profiles, final.clusters(), self.eta
        )
