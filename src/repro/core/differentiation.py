"""Algorithm 2 (DIFFERENTIATION): missing-RSSI type decisions per cluster.

Given a clustering of the AP-profile samples, each AP dimension of each
cluster is examined: if the fraction of samples in the cluster that
*observed* the AP exceeds the threshold ``eta``, the cluster's nulls in
that dimension are "unusual" and classified MAR (0); otherwise MNAR
(-1).  Observed entries are always 1.

This module also defines the common :class:`Differentiator` interface
and the two no-differentiation baselines of Section V-B.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from ..constants import DEFAULT_ETA, MASK_MAR, MASK_MNAR, MASK_OBSERVED
from ..exceptions import DifferentiationError
from ..radiomap import RadioMap


def differentiate_with_clusters(
    profiles: np.ndarray,
    clusters: Sequence[np.ndarray],
    eta: float = DEFAULT_ETA,
) -> np.ndarray:
    """Apply Algorithm 2's per-cluster MAR/MNAR rule.

    Parameters
    ----------
    profiles:
        ``(N, D)`` binary AP profiles (1 observed, 0 null).
    clusters:
        Member-index arrays partitioning ``range(N)``.
    eta:
        Fraction threshold; observed fraction strictly greater than
        ``eta`` marks the cluster's nulls in that dimension as MAR.

    Returns
    -------
    ``(N, D)`` mask matrix with 1 observed / 0 MAR / -1 MNAR.
    """
    if not 0.0 <= eta <= 1.0:
        raise DifferentiationError("eta must be in [0, 1]")
    profiles = np.asarray(profiles)
    n, _ = profiles.shape
    covered = np.concatenate([np.asarray(c) for c in clusters]) if clusters else np.array([])
    if covered.size != n or np.unique(covered).size != n:
        raise DifferentiationError("clusters must partition all samples")

    mask = np.full(profiles.shape, MASK_MNAR, dtype=int)
    mask[profiles == 1] = MASK_OBSERVED
    for members in clusters:
        members = np.asarray(members)
        sub = profiles[members]  # (m, D)
        observed_fraction = sub.mean(axis=0)  # eta_j per AP dimension
        mar_dims = observed_fraction > eta
        null_rows, null_cols = np.where(sub == 0)
        is_mar = mar_dims[null_cols]
        mask[members[null_rows[is_mar]], null_cols[is_mar]] = MASK_MAR
    return mask


class Differentiator(ABC):
    """Classifies every missing RSSI of a radio map as MAR or MNAR."""

    name: str = "differentiator"

    @abstractmethod
    def differentiate(self, radio_map: RadioMap) -> np.ndarray:
        """Return the ``(N, D)`` mask matrix M ∈ {-1, 0, 1}."""


class MAROnlyDifferentiator(Differentiator):
    """Baseline: treat every missing RSSI as MAR (general imputers' view)."""

    name = "MAR-only"

    def differentiate(self, radio_map: RadioMap) -> np.ndarray:
        mask = np.full(radio_map.fingerprints.shape, MASK_MAR, dtype=int)
        mask[radio_map.rssi_observed_mask] = MASK_OBSERVED
        return mask


class MNAROnlyDifferentiator(Differentiator):
    """Baseline: treat every missing RSSI as MNAR (radio-map completion view)."""

    name = "MNAR-only"

    def differentiate(self, radio_map: RadioMap) -> np.ndarray:
        mask = np.full(radio_map.fingerprints.shape, MASK_MNAR, dtype=int)
        mask[radio_map.rssi_observed_mask] = MASK_OBSERVED
        return mask


def validate_mask(mask: np.ndarray, radio_map: RadioMap) -> None:
    """Sanity-check a mask matrix against its radio map.

    Raises :class:`DifferentiationError` on shape mismatch, invalid
    codes, or disagreement with the observed pattern.
    """
    if mask.shape != radio_map.fingerprints.shape:
        raise DifferentiationError("mask shape mismatch")
    if not np.isin(mask, (MASK_MNAR, MASK_MAR, MASK_OBSERVED)).all():
        raise DifferentiationError("mask contains invalid codes")
    observed = radio_map.rssi_observed_mask
    if not (mask[observed] == MASK_OBSERVED).all():
        raise DifferentiationError("observed entries must be masked 1")
    if (mask[~observed] == MASK_OBSERVED).any():
        raise DifferentiationError("missing entries cannot be masked 1")
