"""ElbowKM — K-means with elbow-method K selection (Section V-B baseline).

Identical to DasaKM's final step but chooses K by the within-cluster
sum-of-squares knee instead of the differentiation-accuracy metric; the
paper uses it to show that a clustering objective blind to the
differentiation goal underperforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import elbow_kmeans
from ..constants import DEFAULT_ETA
from ..radiomap import RadioMap
from .binarization import build_cluster_samples
from .differentiation import Differentiator, differentiate_with_clusters


@dataclass
class ElbowKMDifferentiator(Differentiator):
    """Elbow-method K-means differentiator."""

    upper_bound: int = 30
    eta: float = DEFAULT_ETA
    location_weight: float = 1.0
    seed: int = 11
    name: str = "ElbowKM"

    selected_k_: Optional[int] = None

    def differentiate(self, radio_map: RadioMap) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        samples = build_cluster_samples(
            radio_map, location_weight=self.location_weight
        )
        result = elbow_kmeans(
            samples.samples, rng, upper_bound=self.upper_bound
        )
        self.selected_k_ = result.best_k
        return differentiate_with_clusters(
            samples.profiles, result.best_result.clusters(), self.eta
        )
