"""TopoAC — Topology-aware Agglomerative Clustering (Section III-C).

Heuristic: if a set of RPs shares a similar AP profile, no wall or
obstacle should sit inside the closed region those RPs span; otherwise
their signal-transmission environments differ.  Algorithm 4
(``ENTITYEXIST``) tests whether the convex hull of a candidate
cluster's locations contains any topological entity, and Algorithm 5
integrates that check into agglomerative merging: repeatedly merge the
closest admissible pair until no admissible pair remains.  TopoAC needs
no hyperparameters — its stopping rule is the topology itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import constrained_agglomerative
from ..constants import DEFAULT_ETA
from ..exceptions import DifferentiationError
from ..geometry import MultiPolygon, convex_hull, hull_polygon
from ..radiomap import RadioMap
from .binarization import build_cluster_samples
from .differentiation import Differentiator, differentiate_with_clusters


def entity_exist(locations: np.ndarray, entities: MultiPolygon) -> bool:
    """Algorithm 4: does the convex hull of ``locations`` touch any entity?

    Degenerate hulls are handled explicitly: a single point tests
    containment, two (or collinear) points test segment intersection.
    """
    locs = np.asarray(locations, dtype=float)
    if locs.ndim != 2 or locs.shape[1] != 2:
        raise DifferentiationError("locations must be (n, 2)")
    if len(entities) == 0:
        return False
    hull = convex_hull(locs)
    if hull.shape[0] == 1:
        return entities.contains_point(tuple(hull[0]))
    if hull.shape[0] == 2:
        return entities.intersects_segment(tuple(hull[0]), tuple(hull[1]))
    poly = hull_polygon(hull)
    assert poly is not None
    return entities.intersects_polygon(poly)


@dataclass
class TopoACDifferentiator(Differentiator):
    """Algorithm 5 wrapped as a :class:`Differentiator`.

    Parameters
    ----------
    entities:
        The venue's topological entities (walls/obstacles).  Obtain from
        ``FloorPlan.entities``.
    eta:
        Algorithm 2's fraction threshold.
    """

    entities: MultiPolygon
    eta: float = DEFAULT_ETA
    location_weight: float = 1.0
    name: str = "TopoAC"

    #: Number of final clusters, filled by :meth:`differentiate`.
    n_clusters_: Optional[int] = None

    def differentiate(self, radio_map: RadioMap) -> np.ndarray:
        samples = build_cluster_samples(
            radio_map, location_weight=self.location_weight
        )
        locations = samples.locations

        def admissible(member_idx: np.ndarray) -> bool:
            return not entity_exist(locations[member_idx], self.entities)

        clusters = constrained_agglomerative(samples.samples, admissible)
        self.n_clusters_ = len(clusters)
        return differentiate_with_clusters(
            samples.profiles, clusters, self.eta
        )
