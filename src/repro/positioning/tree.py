"""CART regression trees with multi-output (x, y) leaves.

Substrate for the random-forest location estimator [28]; scikit-learn
is unavailable offline, so this is a from-scratch implementation:
variance-reduction splits over a random feature subset, depth/size
stopping rules, mean-vector leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import PositioningError


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: Optional[np.ndarray] = None  # leaf mean (2,)

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


class RegressionTree:
    """A CART tree predicting 2-D targets by mean-vector leaves."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise PositioningError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng()
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.shape != (x.shape[0], 2):
            raise PositioningError("x (n,D) / y (n,2) required")
        if x.shape[0] == 0:
            raise PositioningError("empty training set")
        self._root = self._grow(x, y, depth=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise PositioningError("tree not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty((x.shape[0], 2))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = (
                    node.left
                    if row[node.feature] <= node.threshold
                    else node.right
                )
            out[i] = node.value
        return out

    # ------------------------------------------------------------------
    # Serialisation: flatten the node graph into parallel arrays
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the fitted tree into preorder parallel arrays.

        ``feature``/``threshold`` describe internal nodes, ``left``/
        ``right`` hold child node indices (-1 at leaves), ``value``
        holds leaf means (NaN at internal nodes).  Inverse of
        :meth:`from_arrays`.
        """
        if self._root is None:
            raise PositioningError("tree not fitted")
        feature, threshold, left, right, value = [], [], [], [], []

        def visit(node: _Node) -> int:
            idx = len(feature)
            feature.append(node.feature)
            threshold.append(node.threshold)
            left.append(-1)
            right.append(-1)
            value.append(
                node.value
                if node.value is not None
                else np.full(2, np.nan)
            )
            if not node.is_leaf:
                left[idx] = visit(node.left)
                right[idx] = visit(node.right)
            return idx

        visit(self._root)
        return {
            "feature": np.asarray(feature, dtype=np.int64),
            "threshold": np.asarray(threshold, dtype=float),
            "left": np.asarray(left, dtype=np.int64),
            "right": np.asarray(right, dtype=np.int64),
            "value": np.asarray(value, dtype=float),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "RegressionTree":
        """Rebuild a prediction-ready tree from :meth:`to_arrays`."""
        feature = np.asarray(arrays["feature"], dtype=int)
        threshold = np.asarray(arrays["threshold"], dtype=float)
        left = np.asarray(arrays["left"], dtype=int)
        right = np.asarray(arrays["right"], dtype=int)
        value = np.asarray(arrays["value"], dtype=float)
        n = feature.shape[0]
        if n == 0:
            raise PositioningError("empty tree arrays")
        visited = set()

        def build(idx: int) -> _Node:
            if not 0 <= idx < n:
                raise PositioningError(
                    f"tree arrays reference invalid node {idx}"
                )
            if idx in visited:  # cycle or shared node: not a tree
                raise PositioningError(
                    f"tree arrays revisit node {idx} (cyclic data)"
                )
            visited.add(idx)
            if left[idx] < 0:  # leaf
                return _Node(value=value[idx].copy())
            return _Node(
                feature=int(feature[idx]),
                threshold=float(threshold[idx]),
                left=build(int(left[idx])),
                right=build(int(right[idx])),
            )

        tree = cls()
        tree._root = build(0)
        return tree

    # ------------------------------------------------------------------
    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        n = x.shape[0]
        if (
            depth >= self.max_depth
            or n < self.min_samples_split
            or _variance(y) < 1e-12
        ):
            return _Node(value=y.mean(axis=0))
        split = self._best_split(x, y)
        if split is None:
            return _Node(value=y.mean(axis=0))
        feature, threshold = split
        left_mask = x[:, feature] <= threshold
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._grow(x[left_mask], y[left_mask], depth + 1),
            right=self._grow(x[~left_mask], y[~left_mask], depth + 1),
        )

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n, d = x.shape
        n_feats = self.max_features or d
        n_feats = min(n_feats, d)
        features = self.rng.choice(d, size=n_feats, replace=False)
        base = _variance(y) * n
        best_gain = 1e-12
        best = None
        for f in features:
            values = x[:, f]
            order = np.argsort(values, kind="stable")
            sorted_vals = values[order]
            sorted_y = y[order]
            # Candidate thresholds between distinct consecutive values.
            distinct = np.where(np.diff(sorted_vals) > 1e-12)[0]
            if distinct.size == 0:
                continue
            # Prefix sums for O(n) split scoring.
            csum = np.cumsum(sorted_y, axis=0)
            csum2 = np.cumsum(sorted_y**2, axis=0)
            total = csum[-1]
            total2 = csum2[-1]
            for idx in distinct:
                n_l = idx + 1
                n_r = n - n_l
                if n_l < self.min_samples_leaf or n_r < self.min_samples_leaf:
                    continue
                sse_l = (csum2[idx] - csum[idx] ** 2 / n_l).sum()
                right2 = total2 - csum2[idx]
                right1 = total - csum[idx]
                sse_r = (right2 - right1**2 / n_r).sum()
                gain = base - (sse_l + sse_r)
                if gain > best_gain:
                    best_gain = gain
                    best = (int(f), float((sorted_vals[idx] + sorted_vals[idx + 1]) / 2))
        return best


def _variance(y: np.ndarray) -> float:
    return float(y.var(axis=0).sum())
