"""KNN and WKNN location estimation [57], [19].

Both estimators compare an online fingerprint against the radio map in
signal space; KNN averages the K nearest records' RPs, WKNN weights
them inversely to fingerprint distance.

Serving API: ``predict`` is fully vectorized over the query batch;
the neighbour search comes from
:class:`~repro.positioning.base.NearestNeighbourEstimator` — brute
force on small maps, a spatial index on large ones (the
``spatial_index`` / ``exact_distances`` fields select the backend).
See :mod:`repro.positioning.base` for the shared return-shape
contract (``(n, D)`` → ``(n, 2)``; ``(D,)`` → ``(2,)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import (
    LocationEstimator,
    NearestNeighbourEstimator,
    _validate_training,
)

__all__ = [
    "KNNEstimator",
    "LocationEstimator",
    "WKNNEstimator",
    "_validate_training",
]


@dataclass
class KNNEstimator(NearestNeighbourEstimator):
    """Unweighted K-nearest-neighbour positioning."""

    artifact_kind = "positioning.knn"

    k: int = 3
    name: str = "KNN"
    spatial_index: str = "auto"
    spatial_kernel: str = "grouped"
    exact_distances: bool = False

    def _combine(self, dists: np.ndarray, locs: np.ndarray) -> np.ndarray:
        return locs.mean(axis=1)


@dataclass
class WKNNEstimator(NearestNeighbourEstimator):
    """Weighted KNN: weights ∝ 1 / (fingerprint distance + eps)."""

    artifact_kind = "positioning.wknn"

    k: int = 3
    eps: float = 1e-6
    name: str = "WKNN"
    spatial_index: str = "auto"
    spatial_kernel: str = "grouped"
    exact_distances: bool = False

    def _combine(self, dists: np.ndarray, locs: np.ndarray) -> np.ndarray:
        w = 1.0 / (dists + self.eps)
        return (w[:, :, None] * locs).sum(axis=1) / w.sum(
            axis=1, keepdims=True
        )
