"""KNN and WKNN location estimation [57], [19].

Both estimators compare an online fingerprint against the radio map in
signal space; KNN averages the K nearest records' RPs, WKNN weights
them inversely to fingerprint distance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..exceptions import PositioningError


class LocationEstimator(ABC):
    """fit(radio map) → predict(online fingerprints)."""

    name: str = "estimator"

    @abstractmethod
    def fit(
        self, fingerprints: np.ndarray, locations: np.ndarray
    ) -> "LocationEstimator":
        """Store/learn from a complete radio map."""

    @abstractmethod
    def predict(self, fingerprints: np.ndarray) -> np.ndarray:
        """Estimate ``(n, 2)`` locations for online fingerprints."""


def _validate_training(fingerprints: np.ndarray, locations: np.ndarray):
    fp = np.asarray(fingerprints, dtype=float)
    loc = np.asarray(locations, dtype=float)
    if fp.ndim != 2 or loc.shape != (fp.shape[0], 2):
        raise PositioningError("fingerprints (n,D) / locations (n,2) required")
    if fp.shape[0] == 0:
        raise PositioningError("empty radio map")
    if not np.isfinite(fp).all() or not np.isfinite(loc).all():
        raise PositioningError("radio map must be fully imputed first")
    return fp, loc


@dataclass
class KNNEstimator(LocationEstimator):
    """Unweighted K-nearest-neighbour positioning."""

    k: int = 3
    name: str = "KNN"

    def fit(self, fingerprints, locations):
        self._fp, self._loc = _validate_training(fingerprints, locations)
        return self

    def predict(self, fingerprints: np.ndarray) -> np.ndarray:
        queries = np.asarray(fingerprints, dtype=float)
        if queries.ndim == 1:
            queries = queries[None, :]
        k = min(self.k, self._fp.shape[0])
        out = np.empty((queries.shape[0], 2))
        for i, q in enumerate(queries):
            d = np.linalg.norm(self._fp - q, axis=1)
            nearest = np.argpartition(d, k - 1)[:k]
            out[i] = self._loc[nearest].mean(axis=0)
        return out


@dataclass
class WKNNEstimator(LocationEstimator):
    """Weighted KNN: weights ∝ 1 / (fingerprint distance + eps)."""

    k: int = 3
    eps: float = 1e-6
    name: str = "WKNN"

    def fit(self, fingerprints, locations):
        self._fp, self._loc = _validate_training(fingerprints, locations)
        return self

    def predict(self, fingerprints: np.ndarray) -> np.ndarray:
        queries = np.asarray(fingerprints, dtype=float)
        if queries.ndim == 1:
            queries = queries[None, :]
        k = min(self.k, self._fp.shape[0])
        out = np.empty((queries.shape[0], 2))
        for i, q in enumerate(queries):
            d = np.linalg.norm(self._fp - q, axis=1)
            nearest = np.argpartition(d, k - 1)[:k]
            w = 1.0 / (d[nearest] + self.eps)
            out[i] = (w[:, None] * self._loc[nearest]).sum(axis=0) / w.sum()
        return out
