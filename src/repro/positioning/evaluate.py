"""The paper's evaluation-control protocol (Section V-A).

Given a differentiator A, an imputer B and a location estimator C:

1. select 10 % of the observed-RP records as *testing data*; their RPs
   become ground-truth locations and are hidden from the pipeline;
2. A differentiates the (test-hidden) radio map's missing RSSIs;
3. B imputes the whole map — test fingerprints included, since online
   fingerprints are imputed too (footnote 5);
4. the non-test imputed records form the radio map C trains on, and C
   estimates locations for the imputed test fingerprints;
5. the APE over the test records is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import MNAR_FILL
from ..core import Differentiator
from ..datasets import EvaluationSplit, make_evaluation_split
from ..exceptions import ExperimentError
from ..imputers.base import ImputationResult, Imputer, run_imputer
from ..metrics import average_positioning_error
from ..radiomap import RadioMap
from .base import LocationEstimator


def imputed_test_fingerprints(
    result: ImputationResult, split: EvaluationSplit
) -> np.ndarray:
    """Gather the imputed test-record fingerprints, vectorized.

    Records an imputer dropped (Case Deletion) fall back to the
    -100-filled raw fingerprint, the traditional online treatment.
    """
    rm = split.radio_map
    test_fp = rm.fingerprints[split.test_indices].copy()
    test_fp[~np.isfinite(test_fp)] = MNAR_FILL
    pos = np.full(rm.n_records, -1, dtype=int)
    pos[result.kept_indices] = np.arange(result.kept_indices.size)
    sel = pos[split.test_indices]
    kept = sel >= 0
    test_fp[kept] = result.fingerprints[sel[kept]]
    return test_fp


@dataclass
class PipelineOutcome:
    """Everything one (A, B, C) evaluation run produces."""

    ape: float
    estimated: np.ndarray
    truth: np.ndarray
    imputation_seconds: float
    n_train_records: int
    n_test_records: int


def evaluate_pipeline(
    radio_map: RadioMap,
    differentiator: Differentiator,
    imputer: Imputer,
    estimator: LocationEstimator,
    rng: np.random.Generator,
    *,
    test_fraction: float = 0.10,
    mask: Optional[np.ndarray] = None,
) -> PipelineOutcome:
    """Run the full control protocol once and score APE.

    ``mask`` short-circuits step 2 with a precomputed mask matrix — the
    sweeps reuse one differentiation across estimators to mirror the
    paper's control-variates methodology.
    """
    split = make_evaluation_split(
        radio_map, rng, test_fraction=test_fraction
    )
    if mask is None:
        mask = differentiator.differentiate(split.radio_map)
    result = run_imputer(imputer, split.radio_map, mask)

    # Rows of the imputed output: train = kept minus test rows.
    kept = result.kept_indices
    test_set = set(split.test_indices.tolist())
    train_sel = np.array(
        [i for i, row in enumerate(kept) if row not in test_set],
        dtype=int,
    )
    if train_sel.size == 0:
        raise ExperimentError("imputer left no training records")
    train_fp = result.fingerprints[train_sel]
    train_loc = result.rps[train_sel]

    test_fp = imputed_test_fingerprints(result, split)

    estimator.fit(train_fp, train_loc)
    estimated = estimator.predict(test_fp, squeeze=False)
    ape = average_positioning_error(estimated, split.test_locations)
    return PipelineOutcome(
        ape=ape,
        estimated=estimated,
        truth=split.test_locations,
        imputation_seconds=result.elapsed_seconds,
        n_train_records=int(train_sel.size),
        n_test_records=int(split.test_indices.size),
    )
