"""Random-forest location estimation [28].

Bootstrap-bagged regression trees with per-split feature subsampling
(√D features); predictions average the trees' (x, y) outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..artifacts import (
    merge_prefixed,
    pack_ragged,
    split_prefixed,
    unpack_ragged,
)
from ..exceptions import PositioningError
from .base import LocationEstimator
from .tree import RegressionTree


@dataclass
class RandomForestEstimator(LocationEstimator):
    """Random-forest regressor over (fingerprint → RP) pairs."""

    artifact_kind = "positioning.rf"

    n_trees: int = 20
    max_depth: int = 12
    min_samples_split: int = 4
    seed: int = 17
    name: str = "RF"

    _trees: List[RegressionTree] = field(default_factory=list, repr=False)

    def _fit(self, fp, loc):
        rng = np.random.default_rng(self.seed)
        n, d = fp.shape
        max_features = max(1, int(np.sqrt(d)))
        self._trees = []
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(fp[idx], loc[idx])
            self._trees.append(tree)

    def _predict_batch(self, queries: np.ndarray) -> np.ndarray:
        preds = np.stack(
            [t.predict(queries) for t in self._trees], axis=0
        )
        return preds.mean(axis=0)

    # ------------------------------------------------------------------
    # Serialisation: every tree flattened into one ragged pack of
    # concatenated node arrays, split again on load via the lengths.
    # ------------------------------------------------------------------
    def _extra_state_arrays(self) -> Dict[str, np.ndarray]:
        if not self._trees:
            raise PositioningError("forest not fitted")
        packed = pack_ragged([t.to_arrays() for t in self._trees])
        return merge_prefixed({}, "trees.", packed)

    def _restore_extra_state(self, arrays: Dict[str, np.ndarray]) -> None:
        groups = unpack_ragged(split_prefixed(arrays, "trees."))
        self._trees = [RegressionTree.from_arrays(g) for g in groups]
