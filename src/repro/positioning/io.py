"""Fitted-estimator persistence (KNN / WKNN / random forest).

Each estimator saves its full fitted state — radio-map fingerprints
and locations, hyperparameters, and (for the forest) the flattened
trees — as one artifact whose kind identifies the concrete class, so
:func:`load_estimator` can reconstruct a serving-ready estimator
without refitting::

    estimator.save("wknn.npz")
    estimator = load_estimator("wknn.npz")   # predicts identically
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Dict, Tuple

import numpy as np

from ..artifacts import Artifact, load_artifact, save_artifact
from ..exceptions import ArtifactError, PositioningError
from .base import LocationEstimator
from .forest import RandomForestEstimator
from .knn import KNNEstimator, WKNNEstimator

#: kind tag → estimator class, for reconstruction on load.
ESTIMATOR_KINDS = {
    cls.artifact_kind: cls
    for cls in (KNNEstimator, WKNNEstimator, RandomForestEstimator)
}

Payload = Tuple[str, Dict[str, Any], Dict[str, np.ndarray]]


def estimator_payload(estimator: LocationEstimator) -> Payload:
    """``(kind, config, arrays)`` of a fitted estimator.

    Exposed separately from :func:`save_estimator` so composite
    artifacts (serving shards) can embed an estimator under a name
    prefix.
    """
    kind = estimator.artifact_kind
    if kind not in ESTIMATOR_KINDS:
        raise PositioningError(
            f"{type(estimator).__name__} does not support artifact "
            "persistence"
        )
    if not estimator.fitted:
        raise PositioningError("estimator not fitted")
    config = {
        f.name: getattr(estimator, f.name)
        for f in fields(estimator)
        if not f.name.startswith("_")
    }
    arrays: Dict[str, np.ndarray] = {
        "fingerprints": estimator._fp,
        "locations": estimator._loc,
    }
    arrays.update(estimator._extra_state_arrays())
    return kind, config, arrays


def estimator_from_payload(
    kind: str, config: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> LocationEstimator:
    """Inverse of :func:`estimator_payload`."""
    cls = ESTIMATOR_KINDS.get(kind)
    if cls is None:
        raise ArtifactError(f"unknown estimator artifact kind {kind!r}")
    if not is_dataclass(cls):  # pragma: no cover - all kinds are
        raise ArtifactError(f"estimator kind {kind!r} not loadable")
    try:
        estimator = cls(**config)
    except TypeError as exc:
        raise ArtifactError(
            f"estimator checkpoint config does not match "
            f"{cls.__name__}: {exc}"
        ) from exc
    estimator._fp = np.asarray(arrays["fingerprints"], dtype=float)
    estimator._loc = np.asarray(arrays["locations"], dtype=float)
    estimator._restore_extra_state(arrays)
    return estimator


def save_estimator(estimator: LocationEstimator, path) -> None:
    kind, config, arrays = estimator_payload(estimator)
    save_artifact(
        Artifact(
            kind=kind,
            arrays=arrays,
            config=config,
            metrics={"n_records": int(arrays["fingerprints"].shape[0])},
        ),
        path,
    )


def load_estimator(path) -> LocationEstimator:
    artifact = load_artifact(path)
    return estimator_from_payload(
        artifact.kind, artifact.config, artifact.arrays
    )
