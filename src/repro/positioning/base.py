"""Shared location-estimator machinery (the batched query path).

Serving API
-----------
Every estimator follows one contract, enforced here so KNN, WKNN and
the random forest cannot drift apart:

* :meth:`LocationEstimator.fit` validates and stores the radio map and
  then calls the subclass hook :meth:`LocationEstimator._fit`;
* :meth:`LocationEstimator.predict` is *batch-first*: it accepts
  ``(n, D)`` queries (or a single ``(D,)`` query), raises
  :class:`~repro.exceptions.PositioningError` with ``"estimator not
  fitted"`` before :meth:`fit`, validates the AP dimensionality, and
  delegates to the vectorized subclass hook
  :meth:`LocationEstimator._predict_batch`.

Return-shape contract: ``(n, D)`` in → ``(n, 2)`` out; a ``(D,)``
query returns ``(2,)`` by default, or ``(1, 2)`` with
``squeeze=False``.  An empty ``(0, D)`` batch returns ``(0, 2)``.

:class:`NearestNeighbourEstimator` adds the shared vectorized
neighbour search both KNN variants build on.  Two interchangeable
backends feed the same canonical selection
(:func:`~repro.positioning.index.canonical_k_smallest`):

* **brute force** — the full pairwise squared-distance matrix via the
  ``‖a‖² + ‖b‖² − 2·a·b`` expansion (two reductions and one matmul),
  or the slower cancellation-free exact path with
  ``pairwise_sq_dists(..., exact=True)``;
* **spatial index** — a :class:`~repro.positioning.index.SpatialIndex`
  over the radio map, used when the ``spatial_index`` mode requests it
  (``"auto"`` builds one at ``INDEX_MIN_RECORDS`` and above).  The
  index evaluates exact distances, so its neighbours are bit-identical
  to the brute *exact* path; against the default expansion path they
  agree up to the expansion's cancellation error.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..exceptions import PositioningError
from .index import (
    INDEX_MIN_RECORDS,
    KERNELS,
    SpatialIndex,
    canonical_k_smallest,
)

#: Valid values of the ``spatial_index`` estimator field.
INDEX_MODES = ("auto", "on", "off")


def _validate_training(fingerprints: np.ndarray, locations: np.ndarray):
    fp = np.asarray(fingerprints, dtype=float)
    loc = np.asarray(locations, dtype=float)
    if fp.ndim != 2 or loc.shape != (fp.shape[0], 2):
        raise PositioningError("fingerprints (n,D) / locations (n,2) required")
    if fp.shape[0] == 0:
        raise PositioningError("empty radio map")
    if not np.isfinite(fp).all() or not np.isfinite(loc).all():
        raise PositioningError("radio map must be fully imputed first")
    return fp, loc


def pairwise_sq_dists(
    queries: np.ndarray,
    refs: np.ndarray,
    *,
    exact: bool = False,
    chunk_elems: int = 1 << 23,
) -> np.ndarray:
    """``(n, m)`` squared Euclidean distances.

    The default uses the ``‖a‖²+‖b‖²−2a·b`` expansion: one matmul
    replaces ``n`` row-wise norm computations, and the result is
    clipped at zero because the expansion can go slightly negative for
    near-identical rows.  For large-magnitude vectors (RSSI rows sit
    around −90 dBm, so ``‖a‖² ≈ 10⁶``) the expansion loses up to half
    the mantissa to catastrophic cancellation; ``exact=True`` computes
    ``((a−b)²).sum`` instead, chunked over query rows so at most
    ``chunk_elems`` difference elements are alive at a time.  The
    exact path is the parity reference for the spatial index: both
    reduce a materialised difference over the contiguous trailing
    axis, so equal pairs produce bit-equal distances.
    """
    queries = np.asarray(queries, dtype=float)
    refs = np.asarray(refs, dtype=float)
    if exact:
        n, d = queries.shape
        m = refs.shape[0]
        out = np.empty((n, m))
        rows = max(1, chunk_elems // max(1, m * d))
        for s in range(0, n, rows):
            e = min(s + rows, n)
            diff = queries[s:e, None, :] - refs[None, :, :]
            out[s:e] = (diff * diff).sum(axis=-1)
        return out
    q2 = (queries**2).sum(axis=1)[:, None]
    r2 = (refs**2).sum(axis=1)[None, :]
    d2 = q2 + r2 - 2.0 * (queries @ refs.T)
    return np.maximum(d2, 0.0)


class LocationEstimator(ABC):
    """fit(radio map) → predict(online fingerprints), batch-first."""

    name: str = "estimator"

    #: Artifact kind tag for :meth:`save`; set by persistable subclasses.
    artifact_kind = ""

    @property
    def fitted(self) -> bool:
        return hasattr(self, "_fp")

    def fit(
        self, fingerprints: np.ndarray, locations: np.ndarray
    ) -> "LocationEstimator":
        """Store/learn from a complete radio map."""
        self._fp, self._loc = _validate_training(fingerprints, locations)
        self._fit(self._fp, self._loc)
        return self

    def _fit(self, fingerprints: np.ndarray, locations: np.ndarray) -> None:
        """Subclass hook; the validated arrays are already stored."""

    def predict(
        self, fingerprints: np.ndarray, *, squeeze: bool = True
    ) -> np.ndarray:
        """Estimate locations for a batch of online fingerprints.

        Parameters
        ----------
        fingerprints:
            ``(n, D)`` query batch or a single ``(D,)`` query.
        squeeze:
            When True (default) a ``(D,)`` query returns ``(2,)``;
            with ``squeeze=False`` the output is always ``(n, 2)``.
        """
        if not hasattr(self, "_fp"):
            raise PositioningError("estimator not fitted")
        queries = np.asarray(fingerprints, dtype=float)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[1] != self._fp.shape[1]:
            raise PositioningError(
                f"queries must be (n, {self._fp.shape[1]})"
            )
        if queries.shape[0] == 0:
            return np.empty((0, 2))
        out = self._predict_batch(queries)
        return out[0] if single and squeeze else out

    @abstractmethod
    def _predict_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized ``(n, D)`` → ``(n, 2)`` prediction."""

    # ------------------------------------------------------------------
    # Serialisation (see :mod:`repro.positioning.io`)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the fitted estimator as an artifact file."""
        from .io import save_estimator

        save_estimator(self, path)

    def _extra_state_arrays(self):
        """Subclass hook: fitted state beyond ``_fp``/``_loc``."""
        return {}

    def _restore_extra_state(self, arrays) -> None:
        """Subclass hook: inverse of :meth:`_extra_state_arrays`."""


class NearestNeighbourEstimator(LocationEstimator):
    """Base for estimators that aggregate the k nearest radio-map records.

    Subclasses set ``k`` (a dataclass field) and implement
    :meth:`_combine`, which turns the selected neighbours' distances
    and locations into position estimates.  Two optional dataclass
    fields tune the search backend:

    * ``spatial_index`` — ``"auto"`` (default; index maps with at
      least ``INDEX_MIN_RECORDS`` records), ``"on"`` (always index),
      or ``"off"`` (always brute force);
    * ``spatial_kernel`` — which indexed query kernel to run
      (:data:`~repro.positioning.index.KERNELS`): ``"grouped"``
      (default; the banded CSR grouped-GEMM path) or ``"bucket"``
      (the per-bucket loop).  Both return bit-identical neighbours;
      the field exists for A/B benchmarking;
    * ``exact_distances`` — brute-force with the cancellation-free
      exact path instead of the matmul expansion (the indexed path is
      always exact).
    """

    k: int = 3
    spatial_index: str = "auto"
    spatial_kernel: str = "grouped"
    exact_distances: bool = False

    @property
    def index(self) -> "SpatialIndex | None":
        """The fitted spatial index, if one is in use."""
        return getattr(self, "_index", None)

    def _fit(self, fingerprints: np.ndarray, locations: np.ndarray) -> None:
        self._index = (
            SpatialIndex.build(fingerprints)
            if self._wants_index(fingerprints.shape[0])
            else None
        )

    def _wants_index(self, n_records: int) -> bool:
        mode = self.spatial_index
        if mode not in INDEX_MODES:
            raise PositioningError(
                f"spatial_index must be one of {INDEX_MODES}, got {mode!r}"
            )
        if self.spatial_kernel not in KERNELS:
            raise PositioningError(
                f"spatial_kernel must be one of {KERNELS}, "
                f"got {self.spatial_kernel!r}"
            )
        return mode == "on" or (
            mode == "auto" and n_records >= INDEX_MIN_RECORDS
        )

    def fit_incremental(
        self,
        fingerprints: np.ndarray,
        locations: np.ndarray,
        keep_old: np.ndarray,
        keep_new: np.ndarray,
    ) -> "NearestNeighbourEstimator":
        """Refit after an ingestion delta, refreshing the index in place.

        ``keep_old[i]``/``keep_new[i]`` pair up radio-map rows that
        survived the delta unchanged (old row index → new row index);
        the spatial index keeps its learned structure and only
        reassigns the remaining rows.  Equivalent to :meth:`fit` in
        results — the index stays exact under any bucket assignment —
        just cheaper.
        """
        index = self.index
        self._fp, self._loc = _validate_training(fingerprints, locations)
        if index is not None and index.n_dims == self._fp.shape[1]:
            self._index = index.refreshed(self._fp, keep_old, keep_new)
        else:
            self._fit(self._fp, self._loc)
        return self

    def _neighbours(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(dists, locs)`` of the k nearest records per query.

        ``dists`` is ``(n, k)`` Euclidean distances, ``locs`` is
        ``(n, k, 2)``; both are canonically ordered by ``(distance,
        record index)`` regardless of the backend, so the indexed and
        brute-force paths select identical neighbour sets.
        """
        n = self._fp.shape[0]
        k = min(self.k, n)
        index = self.index
        if index is not None and k < n:
            d2k, idx = index.query(queries, k, kernel=self.spatial_kernel)
        else:
            d2 = pairwise_sq_dists(
                queries, self._fp, exact=self.exact_distances
            )
            d2k, idx = canonical_k_smallest(d2, k)
        return np.sqrt(d2k), self._loc[idx]

    def _predict_batch(self, queries: np.ndarray) -> np.ndarray:
        return self._combine(*self._neighbours(queries))

    def _extra_state_arrays(self):
        index = self.index
        if index is None:
            return {}
        return {
            f"index.{name}": arr
            for name, arr in index.to_arrays().items()
        }

    def _restore_extra_state(self, arrays) -> None:
        if "index.assign" in arrays:
            self._index = SpatialIndex.from_arrays(
                {
                    name.split(".", 1)[1]: arr
                    for name, arr in arrays.items()
                    if name.startswith("index.")
                },
                self._fp,
            )
        else:
            # Artifact predates the index (or was built with it off):
            # honour this estimator's mode at load time.
            self._fit(self._fp, self._loc)

    @abstractmethod
    def _combine(
        self, dists: np.ndarray, locs: np.ndarray
    ) -> np.ndarray:
        """Aggregate ``(n, k)`` distances / ``(n, k, 2)`` RPs."""
