"""Shared location-estimator machinery (the batched query path).

Serving API
-----------
Every estimator follows one contract, enforced here so KNN, WKNN and
the random forest cannot drift apart:

* :meth:`LocationEstimator.fit` validates and stores the radio map and
  then calls the subclass hook :meth:`LocationEstimator._fit`;
* :meth:`LocationEstimator.predict` is *batch-first*: it accepts
  ``(n, D)`` queries (or a single ``(D,)`` query), raises
  :class:`~repro.exceptions.PositioningError` with ``"estimator not
  fitted"`` before :meth:`fit`, validates the AP dimensionality, and
  delegates to the vectorized subclass hook
  :meth:`LocationEstimator._predict_batch`.

Return-shape contract: ``(n, D)`` in → ``(n, 2)`` out; a ``(D,)``
query returns ``(2,)`` by default, or ``(1, 2)`` with
``squeeze=False``.  An empty ``(0, D)`` batch returns ``(0, 2)``.

:class:`NearestNeighbourEstimator` adds the shared vectorized
neighbour search both KNN variants build on: the full pairwise
squared-distance matrix is computed with the
``‖a‖² + ‖b‖² − 2·a·b`` expansion (two reductions and one matmul
instead of a per-query Python loop) and the k nearest records are
selected with a single :func:`numpy.argpartition` call per batch.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from ..exceptions import PositioningError


def _validate_training(fingerprints: np.ndarray, locations: np.ndarray):
    fp = np.asarray(fingerprints, dtype=float)
    loc = np.asarray(locations, dtype=float)
    if fp.ndim != 2 or loc.shape != (fp.shape[0], 2):
        raise PositioningError("fingerprints (n,D) / locations (n,2) required")
    if fp.shape[0] == 0:
        raise PositioningError("empty radio map")
    if not np.isfinite(fp).all() or not np.isfinite(loc).all():
        raise PositioningError("radio map must be fully imputed first")
    return fp, loc


def pairwise_sq_dists(queries: np.ndarray, refs: np.ndarray) -> np.ndarray:
    """``(n, m)`` squared Euclidean distances via ``‖a‖²+‖b‖²−2a·b``.

    One matmul replaces ``n`` row-wise norm computations; the result is
    clipped at zero because the expansion can go slightly negative for
    near-identical rows.
    """
    q2 = (queries**2).sum(axis=1)[:, None]
    r2 = (refs**2).sum(axis=1)[None, :]
    d2 = q2 + r2 - 2.0 * (queries @ refs.T)
    return np.maximum(d2, 0.0)


class LocationEstimator(ABC):
    """fit(radio map) → predict(online fingerprints), batch-first."""

    name: str = "estimator"

    #: Artifact kind tag for :meth:`save`; set by persistable subclasses.
    artifact_kind = ""

    @property
    def fitted(self) -> bool:
        return hasattr(self, "_fp")

    def fit(
        self, fingerprints: np.ndarray, locations: np.ndarray
    ) -> "LocationEstimator":
        """Store/learn from a complete radio map."""
        self._fp, self._loc = _validate_training(fingerprints, locations)
        self._fit(self._fp, self._loc)
        return self

    def _fit(self, fingerprints: np.ndarray, locations: np.ndarray) -> None:
        """Subclass hook; the validated arrays are already stored."""

    def predict(
        self, fingerprints: np.ndarray, *, squeeze: bool = True
    ) -> np.ndarray:
        """Estimate locations for a batch of online fingerprints.

        Parameters
        ----------
        fingerprints:
            ``(n, D)`` query batch or a single ``(D,)`` query.
        squeeze:
            When True (default) a ``(D,)`` query returns ``(2,)``;
            with ``squeeze=False`` the output is always ``(n, 2)``.
        """
        if not hasattr(self, "_fp"):
            raise PositioningError("estimator not fitted")
        queries = np.asarray(fingerprints, dtype=float)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        if queries.ndim != 2 or queries.shape[1] != self._fp.shape[1]:
            raise PositioningError(
                f"queries must be (n, {self._fp.shape[1]})"
            )
        if queries.shape[0] == 0:
            return np.empty((0, 2))
        out = self._predict_batch(queries)
        return out[0] if single and squeeze else out

    @abstractmethod
    def _predict_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized ``(n, D)`` → ``(n, 2)`` prediction."""

    # ------------------------------------------------------------------
    # Serialisation (see :mod:`repro.positioning.io`)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Checkpoint the fitted estimator as an artifact file."""
        from .io import save_estimator

        save_estimator(self, path)

    def _extra_state_arrays(self):
        """Subclass hook: fitted state beyond ``_fp``/``_loc``."""
        return {}

    def _restore_extra_state(self, arrays) -> None:
        """Subclass hook: inverse of :meth:`_extra_state_arrays`."""


class NearestNeighbourEstimator(LocationEstimator):
    """Base for estimators that aggregate the k nearest radio-map records.

    Subclasses set ``k`` (a dataclass field) and implement
    :meth:`_combine`, which turns the selected neighbours' distances
    and locations into position estimates.
    """

    k: int = 3

    def _neighbours(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(dists, locs)`` of the k nearest records per query.

        ``dists`` is ``(n, k)`` Euclidean distances, ``locs`` is
        ``(n, k, 2)``; neighbours are unordered within the k-subset
        (argpartition semantics), which every aggregation here is
        invariant to.
        """
        k = min(self.k, self._fp.shape[0])
        d2 = pairwise_sq_dists(queries, self._fp)
        if k < self._fp.shape[0]:
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            idx = np.broadcast_to(
                np.arange(k), (queries.shape[0], k)
            ).copy()
        dists = np.sqrt(np.take_along_axis(d2, idx, axis=1))
        return dists, self._loc[idx]

    def _predict_batch(self, queries: np.ndarray) -> np.ndarray:
        return self._combine(*self._neighbours(queries))

    @abstractmethod
    def _combine(
        self, dists: np.ndarray, locs: np.ndarray
    ) -> np.ndarray:
        """Aggregate ``(n, k)`` distances / ``(n, k, 2)`` RPs."""
