"""Exact spatial index over radio-map fingerprints (the serving hot path).

Brute-force KNN pays a dense ``(batch, N)`` distance matrix per query
batch — BLAS-fast, but O(N) per query in compute *and* memory traffic,
which is what caps serve throughput on large maps.
:class:`SpatialIndex` replaces it with a three-stage *exact* search:

1. **Bucket pruning** — reference fingerprints are rotated into a
   PCA basis and embedded into ``p+1`` dims (top-``p`` projection plus
   the residual norm).  Distances in that augmented space lower-bound
   true distances, so a per-bucket centroid/radius bound discards
   whole buckets against a per-query upper bound obtained by probing
   the nearest buckets.
2. **Block filtering** — surviving buckets are stored row-contiguous,
   so candidate distances come from small float32 GEMMs over
   *centered* data (no per-row gathers).  The float32 expansion is
   only a bound: a conservative error margin keeps every reference
   whose true distance could reach the upper bound.
3. **Exact finish** — the few finalists per query are re-evaluated
   with per-pair exact float64 ``((a-b)**2).sum()`` arithmetic and fed
   through :func:`canonical_k_smallest`.

Because the final distances use the same exact primitive as
:func:`~repro.positioning.base.pairwise_sq_dists` with ``exact=True``
and both paths share :func:`canonical_k_smallest` (ties broken by
reference index), the index returns **bit-identical** neighbours to
the brute-force exact path — pinned by the parity tests.  Stages 1-2
can only over-include candidates (pads + margins), never drop a true
neighbour.

The index persists as three small arrays (``mu``, ``basis``,
``assign``); everything else is derived from the fingerprints at
load time.  :meth:`refreshed` rebuilds incrementally after an
ingestion delta: the learned rotation and bucket structure are kept,
only changed rows are reassigned (falling back to a full rebuild when
most of the map changed).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import PositioningError

__all__ = [
    "INDEX_MIN_RECORDS",
    "SpatialIndex",
    "canonical_k_smallest",
    "pair_exact_sq_dists",
]

#: Below this many reference records the dense brute-force path wins
#: (the index's fixed per-batch overhead outweighs the pruning); the
#: ``"auto"`` estimator mode only builds an index at or above it.
INDEX_MIN_RECORDS = 4096

#: Projection dims of the augmented embedding (clamped to the map's D).
_N_DIMS = 32

#: Target records per bucket of the 2-D quantile grid.  Large leaves
#: keep the per-bucket loop overhead small; pruning granularity is
#: already dominated by the augmented-space radii at this size.
_LEAF_SIZE = 192

#: Multiplicative pad applied to upper bounds (covers f64 rounding).
_PAD_UB = 1.0 + 1e-9

#: Multiplicative shrink applied to lower bounds before comparison.
_PAD_LB = 1.0 - 1e-9

#: Scale factor of the float32 filter margin: generous cover for sgemm
#: accumulation error plus the f32 rounding of the centered inputs.
_F32_MARGIN = 128.0 * float(np.finfo(np.float32).eps)

#: If fewer than this fraction of rows survive a delta unchanged, an
#: incremental refresh degenerates; rebuild from scratch instead.
_REFRESH_MIN_KEPT = 0.5


def pair_exact_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-pair exact squared distances: ``(n, D), (n, D) -> (n,)``.

    The shared exact primitive: a materialised difference reduced over
    the contiguous last axis, so its floating-point result depends
    only on ``D`` — the brute exact path and the index's finish stage
    produce bit-identical values for the same pair.
    """
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return (diff * diff).sum(axis=-1)


def canonical_k_smallest(
    d2: np.ndarray, k: int, ids: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """The k smallest entries per row, canonically ordered.

    ``d2`` is ``(n, w)`` (``np.inf`` padding allowed); ``ids`` maps
    columns to reference indices (defaults to the column index; pad
    columns carry ``-1`` and must be ``inf``).  Returns ``(values,
    ids)`` of shape ``(n, k)`` sorted by ``(value, id)`` — ties at the
    k-th value are resolved toward smaller reference indices, so two
    callers that agree on the candidate *values* select identical
    neighbour sets regardless of how the candidates were found.
    """
    d2 = np.asarray(d2)
    n, w = d2.shape
    if k <= 0 or k > w:
        raise PositioningError(f"k={k} out of range for {w} candidates")
    if k < w:
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(np.arange(w), (n, w)).copy()
    pv = np.take_along_axis(d2, part, axis=1)
    pid = part if ids is None else np.take_along_axis(ids, part, axis=1)
    if ids is not None:
        pid = pid.copy()
        pv = pv.copy()
    kth = pv.max(axis=1)
    # argpartition breaks ties at the k-th value arbitrarily; rows
    # where the tie group straddles the boundary are re-resolved
    # toward smaller ids (rare, so a Python loop is fine).
    full_ties = (d2 == kth[:, None]).sum(axis=1)
    sel_ties = (pv == kth[:, None]).sum(axis=1)
    for i in np.nonzero(full_ties > sel_ties)[0]:
        v = kth[i]
        row_ids = np.arange(w) if ids is None else ids[i]
        below = d2[i] < v
        n_below = int(below.sum())
        tie_ids = np.sort(row_ids[d2[i] == v])
        pid[i] = np.concatenate(
            [row_ids[below], tie_ids[: k - n_below]]
        )
        pv[i] = np.concatenate(
            [d2[i][below], np.full(k - n_below, v)]
        )
    order = np.lexsort((pid, pv), axis=-1)
    return (
        np.take_along_axis(pv, order, axis=1),
        np.take_along_axis(pid, order, axis=1),
    )


class SpatialIndex:
    """Bucketed PCA index with an exact-parity query path.

    Construct with :meth:`build` (fresh) or :meth:`from_arrays`
    (persisted state + the fingerprints it indexes).  The instance is
    immutable after construction and safe for concurrent queries.
    """

    def __init__(
        self,
        fingerprints: np.ndarray,
        mu: np.ndarray,
        basis: np.ndarray,
        assign: np.ndarray,
    ):
        fp = np.ascontiguousarray(fingerprints, dtype=float)
        if fp.ndim != 2 or fp.shape[0] == 0:
            raise PositioningError("index needs a (n, D) radio map")
        n, d = fp.shape
        mu = np.asarray(mu, dtype=float)
        basis = np.asarray(basis, dtype=float)
        assign = np.asarray(assign, dtype=np.int64)
        if mu.shape != (d,) or basis.ndim != 2 or basis.shape[0] != d:
            raise PositioningError("index basis does not match the map")
        if assign.shape != (n,) or assign.min(initial=0) < 0:
            raise PositioningError("index assignment does not match")
        self._fp = fp
        self.mu = mu
        self.basis = basis
        self.assign = assign
        self._derive()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, fingerprints: np.ndarray) -> "SpatialIndex":
        """Learn the rotation and bucket grid from the fingerprints."""
        fp = np.ascontiguousarray(fingerprints, dtype=float)
        if fp.ndim != 2 or fp.shape[0] == 0:
            raise PositioningError("index needs a (n, D) radio map")
        n, d = fp.shape
        mu = fp.mean(axis=0)
        centered = fp - mu
        # Orthonormal rotation from the covariance eigenbasis, top
        # variance first.  Validity of the bounds only needs
        # orthonormality, so numerical eigh differences across
        # platforms cannot break exactness.
        _, vectors = np.linalg.eigh(centered.T @ centered)
        basis = np.ascontiguousarray(
            vectors[:, :: -1][:, : min(_N_DIMS, d)]
        )
        proj = centered @ basis
        side = max(1, min(64, int(round(np.sqrt(n / _LEAF_SIZE)))))
        quantiles = np.linspace(0.0, 1.0, side + 1)[1:-1]
        edge0 = np.quantile(proj[:, 0], quantiles)
        edge1 = (
            np.quantile(proj[:, 1], quantiles)
            if basis.shape[1] > 1
            else np.empty(0)
        )
        col1 = proj[:, 1] if basis.shape[1] > 1 else np.zeros(n)
        assign = np.searchsorted(edge0, proj[:, 0]) * side + (
            np.searchsorted(edge1, col1)
        )
        return cls(fp, mu, basis, assign)

    def _derive(self) -> None:
        """Compute the query-time state from (fp, mu, basis, assign)."""
        fp, assign = self._fp, self.assign
        n = fp.shape[0]
        self.n_buckets = int(assign.max()) + 1
        centered = fp - self.mu
        proj = centered @ self.basis
        full2 = (centered * centered).sum(axis=1)
        tail = np.sqrt(
            np.maximum(full2 - (proj * proj).sum(axis=1), 0.0)
        )
        aug = np.concatenate([proj, tail[:, None]], axis=1)

        self._order = np.argsort(assign, kind="stable")
        self._counts = np.bincount(assign, minlength=self.n_buckets)
        self._offsets = np.concatenate(
            [[0], np.cumsum(self._counts)]
        )
        # Bucket-contiguous centered rows in f32: the block filter
        # reads them with plain slices, no per-row gathers.
        self._centered32 = np.ascontiguousarray(
            centered[self._order], dtype=np.float32
        )
        self._c2_32 = (
            (self._centered32.astype(np.float64) ** 2)
            .sum(axis=1)
            .astype(np.float32)
        )
        cent = np.zeros((self.n_buckets, aug.shape[1]))
        np.add.at(cent, assign, aug)
        cent /= np.maximum(self._counts, 1)[:, None]
        delta = aug - cent[assign]
        dist_c = np.sqrt((delta * delta).sum(axis=1))
        radius = np.zeros(self.n_buckets)
        np.maximum.at(radius, assign, dist_c)
        self._centroids = cent
        self._cent2 = (cent * cent).sum(axis=1)
        self._radius = radius
        self._scale = float(self._c2_32.max(initial=1.0)) + 1.0
        self._n = n

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return self._n

    @property
    def n_dims(self) -> int:
        return self._fp.shape[1]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The persisted state (rotation + bucket assignment)."""
        return {
            "mu": self.mu,
            "basis": self.basis,
            "assign": self.assign,
        }

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], fingerprints: np.ndarray
    ) -> "SpatialIndex":
        """Rebuild from :meth:`to_arrays` output + the fingerprints."""
        return cls(
            fingerprints,
            arrays["mu"],
            arrays["basis"],
            arrays["assign"],
        )

    def refreshed(
        self,
        fingerprints: np.ndarray,
        keep_old: np.ndarray,
        keep_new: np.ndarray,
    ) -> "SpatialIndex":
        """Incrementally rebuilt index over a post-delta radio map.

        ``keep_old[i]`` / ``keep_new[i]`` pair up rows that survived
        the delta unchanged: they keep their bucket; every other row
        of ``fingerprints`` is assigned to the nearest existing bucket
        centroid in the augmented space.  The learned rotation and
        grid are frozen (bucket radii are recomputed, so the bounds
        stay exact regardless of drift); when less than half the map
        survives, a from-scratch :meth:`build` is both cheaper to
        reason about and tighter, so the refresh falls back to it.
        """
        fp = np.ascontiguousarray(fingerprints, dtype=float)
        keep_old = np.asarray(keep_old, dtype=np.int64)
        keep_new = np.asarray(keep_new, dtype=np.int64)
        if fp.ndim != 2 or fp.shape[1] != self._fp.shape[1]:
            raise PositioningError(
                "refreshed map does not match the indexed AP count"
            )
        if keep_old.shape != keep_new.shape:
            raise PositioningError("keep row maps must pair up")
        n = fp.shape[0]
        if keep_new.size < _REFRESH_MIN_KEPT * n:
            return SpatialIndex.build(fp)
        assign = np.full(n, -1, dtype=np.int64)
        assign[keep_new] = self.assign[keep_old]
        dirty = np.nonzero(assign < 0)[0]
        if dirty.size:
            centered = fp[dirty] - self.mu
            proj = centered @ self.basis
            full2 = (centered * centered).sum(axis=1)
            tail = np.sqrt(
                np.maximum(full2 - (proj * proj).sum(axis=1), 0.0)
            )
            aug = np.concatenate([proj, tail[:, None]], axis=1)
            occupied = np.nonzero(self._counts > 0)[0]
            cent = self._centroids[occupied]
            d2 = (
                (aug * aug).sum(axis=1)[:, None]
                + (cent * cent).sum(axis=1)[None, :]
                - 2.0 * (aug @ cent.T)
            )
            assign[dirty] = occupied[np.argmin(d2, axis=1)]
        return SpatialIndex(fp, self.mu, self.basis, assign)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-nearest references for a query batch.

        Returns ``(d2, ids)`` of shape ``(n, k)``, canonically ordered
        by ``(distance, reference index)`` — bit-identical to the
        brute-force exact path through :func:`canonical_k_smallest`.
        """
        q = np.ascontiguousarray(queries, dtype=float)
        if q.ndim != 2 or q.shape[1] != self._fp.shape[1]:
            raise PositioningError(
                f"queries must be (n, {self._fp.shape[1]})"
            )
        if not 0 < k <= self._n:
            raise PositioningError(
                f"k={k} out of range for {self._n} records"
            )
        b = q.shape[0]
        if b == 0:
            return np.empty((0, k)), np.empty((0, k), dtype=np.int64)

        centered = q - self.mu
        proj = centered @ self.basis
        qfull2 = (centered * centered).sum(axis=1)
        tail = np.sqrt(
            np.maximum(qfull2 - (proj * proj).sum(axis=1), 0.0)
        )
        aug = np.concatenate([proj, tail[:, None]], axis=1)
        centered32 = centered.astype(np.float32)
        scale = max(self._scale, float(qfull2.max(initial=0.0)) + 1.0)
        margin = _F32_MARGIN * scale + 1e-9

        # Stage 1a: bucket-level lower bounds in the augmented space.
        aug2 = (aug * aug).sum(axis=1)
        d2_qb = (
            aug2[:, None]
            + self._cent2[None, :]
            - 2.0 * (aug @ self._centroids.T)
        )
        err_b = 1e-12 * (aug2[:, None] + self._cent2[None, :] + 1.0)
        d_qb = np.sqrt(np.maximum(d2_qb - err_b, 0.0))
        lb_bucket = (
            np.maximum(d_qb - self._radius[None, :], 0.0) ** 2
        )
        lb_bucket[:, self._counts == 0] = np.inf

        # Stage 1b: probe the nearest buckets (cumulative count >= k)
        # for a valid upper bound on each query's true k-th distance.
        near = np.argsort(
            np.where(self._counts[None, :] > 0, d_qb, np.inf), axis=1
        )
        cum = np.cumsum(self._counts[near], axis=1)
        n_probe = np.minimum(
            (cum < k).sum(axis=1) + 1, self.n_buckets
        )
        probe = np.zeros((b, self.n_buckets), dtype=bool)
        np.put_along_axis(
            probe,
            near,
            np.arange(self.n_buckets)[None, :] < n_probe[:, None],
            axis=1,
        )

        qf32 = qfull2.astype(np.float32)
        pool_qi, pool_ri, pool_v = self._filter_blocks(
            probe, centered32, qf32, None
        )
        ub = self._pooled_kth(pool_qi, pool_v, b, k)
        ub = ub * _PAD_UB + margin

        # Stage 2: block-filter the remaining buckets against ub.
        rest = lb_bucket * _PAD_LB <= ub[:, None]
        rest &= ~probe
        qi2, ri2, _ = self._filter_blocks(
            rest, centered32, qf32, (ub + margin).astype(np.float32)
        )
        keep = pool_v <= ub[pool_qi]
        qi = np.concatenate([pool_qi[keep], qi2])
        ri = np.concatenate([pool_ri[keep], ri2])

        # Stage 3: exact finish on the finalists, canonical selection.
        order = np.argsort(qi, kind="stable")
        qi, ri = qi[order], ri[order]
        ref_ids = self._order[ri]
        d2x = pair_exact_sq_dists(q[qi], self._fp[ref_ids])
        counts = np.bincount(qi, minlength=b)
        width = int(counts.max(initial=0))
        starts = np.concatenate([[0], np.cumsum(counts)])
        pos = np.arange(qi.size) - starts[qi]
        vals = np.full((b, width), np.inf)
        ids = np.full((b, width), -1, dtype=np.int64)
        vals[qi, pos] = d2x
        ids[qi, pos] = ref_ids
        return canonical_k_smallest(vals, k, ids)

    def _filter_blocks(
        self,
        mask: np.ndarray,
        centered32: np.ndarray,
        qf32: np.ndarray,
        thresh32: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate the ``(query, bucket)`` pairs set in ``mask``.

        Computes float32 expansion distances over each bucket's
        contiguous block; with ``thresh32`` given only pairs at or
        under the per-query threshold are kept, otherwise every pair
        is returned (the probe pool).  Returns ``(query_idx,
        sorted_row_idx, f32_distance)`` arrays — the distances stay
        float32 end to end (they are only ever *bounds*; widening
        them to f64 per bucket bought nothing but copies, and the
        f32→f64 conversion is value-exact wherever a caller needs the
        wide type).
        """
        qis, ris, vs = [], [], []
        offsets = self._offsets
        for bucket in np.nonzero(mask.any(axis=0))[0]:
            rows = np.nonzero(mask[:, bucket])[0]
            s, e = offsets[bucket], offsets[bucket + 1]
            if e == s:
                continue
            gram = centered32[rows] @ self._centered32[s:e].T
            gram *= -2.0
            gram += self._c2_32[None, s:e]
            gram += qf32[rows, None]
            if thresh32 is None:
                qis.append(np.repeat(rows, e - s))
                ris.append(np.tile(np.arange(s, e), rows.size))
                vs.append(gram.ravel())
            else:
                rr, cc = np.nonzero(gram <= thresh32[rows, None])
                qis.append(rows[rr])
                ris.append(cc + s)
                vs.append(gram[rr, cc])
        if not qis:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=np.float32)
        return (
            np.concatenate(qis),
            np.concatenate(ris),
            np.concatenate(vs),
        )

    @staticmethod
    def _pooled_kth(
        qi: np.ndarray, values: np.ndarray, b: int, k: int
    ) -> np.ndarray:
        """Per-query k-th smallest of a pooled ``(qi, value)`` set.

        ``values`` arrives float32 from the block filter; the scatter,
        partition and selection run at that width (half the memory
        traffic of the old f64 pool) and only the chosen per-query
        bound widens to f64 — an exact conversion, so the padded upper
        bounds downstream are bit-identical to the all-f64 pool.
        """
        order = np.argsort(qi, kind="stable")
        qi, values = qi[order], values[order]
        counts = np.bincount(qi, minlength=b)
        width = int(counts.max(initial=0))
        starts = np.concatenate([[0], np.cumsum(counts)])
        pos = np.arange(qi.size) - starts[qi]
        pool = np.full((b, width), np.inf, dtype=values.dtype)
        pool[qi, pos] = values
        if width <= k:
            kth = pool.max(axis=1, initial=0.0)
        else:
            kth = np.partition(pool, k - 1, axis=1)[:, k - 1]
            # Queries whose probe pool came up short scan everything.
            kth[counts < k] = np.inf
        return np.maximum(kth.astype(np.float64), 0.0)
