"""Exact spatial index over radio-map fingerprints (the serving hot path).

Brute-force KNN pays a dense ``(batch, N)`` distance matrix per query
batch — BLAS-fast, but O(N) per query in compute *and* memory traffic,
which is what caps serve throughput on large maps.
:class:`SpatialIndex` replaces it with a three-stage *exact* search:

1. **Bucket pruning** — reference fingerprints are rotated into a
   PCA basis and embedded into ``p+1`` dims (top-``p`` projection plus
   the residual norm).  Distances in that augmented space lower-bound
   true distances, so a per-bucket centroid/radius bound discards
   whole buckets against a per-query upper bound obtained by probing
   the nearest buckets.
2. **Block filtering** — surviving buckets are stored row-contiguous,
   so candidate distances come from small float32 GEMMs over
   *centered* data (no per-row gathers).  The float32 expansion is
   only a bound: a conservative error margin keeps every reference
   whose true distance could reach the upper bound.
3. **Exact finish** — the few finalists per query are re-evaluated
   with per-pair exact float64 ``((a-b)**2).sum()`` arithmetic and fed
   through :func:`canonical_k_smallest`.

Because the final distances use the same exact primitive as
:func:`~repro.positioning.base.pairwise_sq_dists` with ``exact=True``
and both paths share :func:`canonical_k_smallest` (ties broken by
reference index), the index returns **bit-identical** neighbours to
the brute-force exact path — pinned by the parity tests.  Stages 1-2
can only over-include candidates (pads + margins), never drop a true
neighbour.

The index persists as three small arrays (``mu``, ``basis``,
``assign``); everything else is derived from the fingerprints at
load time.  :meth:`refreshed` rebuilds incrementally after an
ingestion delta: the learned rotation and bucket structure are kept,
only changed rows are reassigned (falling back to a full rebuild when
most of the map changed).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import PositioningError

__all__ = [
    "INDEX_MIN_RECORDS",
    "KERNELS",
    "KERNEL_STATS",
    "KernelStats",
    "SpatialIndex",
    "canonical_k_smallest",
    "pair_exact_sq_dists",
]

#: Query kernels: ``"grouped"`` (default) evaluates stage 1b and
#: stage 2 with one GEMM per size-capped band of buckets; ``"bucket"``
#: is the previous per-bucket loop, kept selectable so benchmarks and
#: CI can A/B the two in the same process.  Both are exact and return
#: bit-identical results.
KERNELS = ("grouped", "bucket")

#: Below this many reference records the dense brute-force path wins
#: (the index's fixed per-batch overhead outweighs the pruning); the
#: ``"auto"`` estimator mode only builds an index at or above it.
INDEX_MIN_RECORDS = 4096

#: Projection dims of the augmented embedding (clamped to the map's D).
_N_DIMS = 32

#: Target records per bucket of the 2-D quantile grid.  Large leaves
#: keep the per-bucket loop overhead small; pruning granularity is
#: already dominated by the augmented-space radii at this size.
_LEAF_SIZE = 192

#: Multiplicative pad applied to upper bounds (covers f64 rounding).
_PAD_UB = 1.0 + 1e-9

#: Multiplicative shrink applied to lower bounds before comparison.
_PAD_LB = 1.0 - 1e-9

#: Scale factor of the float32 filter margin: generous cover for sgemm
#: accumulation error plus the f32 rounding of the centered inputs.
_F32_MARGIN = 128.0 * float(np.finfo(np.float32).eps)

#: If fewer than this fraction of rows survive a delta unchanged, an
#: incremental refresh degenerates; rebuild from scratch instead.
_REFRESH_MIN_KEPT = 0.5

#: Row cap per stage-2 band.  Bucket ids are spatially ordered (the
#: grid code is row-major), so a run of consecutive ids is a cluster
#: of neighbouring cells whose active-query sets overlap heavily —
#: that keeps the band rectangles dense.  Bigger bands mean fewer
#: Python iterations but more wasted GEMM rows.
_BAND_ROWS = 768

#: Row cap per probe band (stage 1b); probe pools are small, so the
#: cap mostly bounds the per-band rectangle width.
_PROBE_BAND_ROWS = 1024

#: Above this many elements a dense per-query scatter for pool/finish
#: selection is refused in favour of the O(candidates) segment path —
#: one query with a huge pool would otherwise pad every row to its
#: width (the ``(b, width)`` blow-up).
_DENSE_SELECT_CAP = 1 << 20


class KernelStats:
    """Per-process accumulator of query-kernel stage timings.

    Disabled by default (the hot path pays nothing but a flag check);
    the serve benchmark and fleet workers enable it to attribute
    serve time to the bucket kernel.  ``snapshot()`` returns plain
    floats (seconds / counts) so the numbers survive a pickle across
    the fleet's worker pipes.
    """

    _FIELDS = (
        "probe_s",      # stage 1b: banded probe-pool GEMMs + extraction
        "select_s",     # pooled k-th + final canonical selection
        "bound_s",      # stage 1a/2a: centroid + box bucket bounds
        "gemm_s",       # stage 2: banded block-filter GEMMs + compaction
        "finish_s",     # stage 3: exact f64 per-pair re-evaluation
    )

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            for name in self._FIELDS:
                setattr(self, name, 0.0)
            self.candidates = 0
            self.gemm_rows = 0
            self.queries = 0
            self.calls = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def add(self, stages: Dict[str, float], candidates: int,
            gemm_rows: int, queries: int) -> None:
        with self._lock:
            for name, value in stages.items():
                setattr(self, name, getattr(self, name) + value)
            self.candidates += candidates
            self.gemm_rows += gemm_rows
            self.queries += queries
            self.calls += 1

    @property
    def busy_seconds(self) -> float:
        """Total wall-clock spent inside the query kernel."""
        return sum(getattr(self, name) for name in self._FIELDS)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            out = {name: getattr(self, name) for name in self._FIELDS}
            out.update(
                busy_s=sum(out.values()),
                candidates=float(self.candidates),
                gemm_rows=float(self.gemm_rows),
                queries=float(self.queries),
                calls=float(self.calls),
            )
            return out

    def to_metrics(self, metrics, prefix: str = "kernel") -> None:
        """Sync this accumulator into an obs
        :class:`~repro.obs.MetricsRegistry` as counters.

        Idempotent: each counter is topped up by the difference
        between the current snapshot and its present value, so
        repeated syncs (the fleet workers call this every tick, the
        bench once per section) never double-count.  This is how the
        legacy per-process accumulator joins the unified registry
        without touching its lock-per-``add`` hot path.
        """
        snap = self.snapshot()
        for stage in self._FIELDS:
            counter = metrics.counter(f"{prefix}.{stage[:-2]}_seconds")
            counter.add(snap[stage] - counter.value)
        counter = metrics.counter(f"{prefix}.busy_seconds")
        counter.add(snap["busy_s"] - counter.value)
        for name in ("candidates", "gemm_rows", "queries", "calls"):
            counter = metrics.counter(f"{prefix}.{name}")
            counter.add(snap[name] - counter.value)


#: Module singleton read by the serve bench and the fleet workers.
KERNEL_STATS = KernelStats()


def _ramp(lens: np.ndarray) -> np.ndarray:
    """``concatenate([arange(l) for l in lens])`` without the loop."""
    lens = np.asarray(lens, dtype=np.int64)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, np.int64)
    ends = np.cumsum(lens)
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(ends - lens, lens)
    return out


def pair_exact_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-pair exact squared distances: ``(n, D), (n, D) -> (n,)``.

    The shared exact primitive: a materialised difference reduced over
    the contiguous last axis, so its floating-point result depends
    only on ``D`` — the brute exact path and the index's finish stage
    produce bit-identical values for the same pair.
    """
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return (diff * diff).sum(axis=-1)


def canonical_k_smallest(
    d2: np.ndarray, k: int, ids: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """The k smallest entries per row, canonically ordered.

    ``d2`` is ``(n, w)`` (``np.inf`` padding allowed); ``ids`` maps
    columns to reference indices (defaults to the column index; pad
    columns carry ``-1`` and must be ``inf``).  Returns ``(values,
    ids)`` of shape ``(n, k)`` sorted by ``(value, id)`` — ties at the
    k-th value are resolved toward smaller reference indices, so two
    callers that agree on the candidate *values* select identical
    neighbour sets regardless of how the candidates were found.
    """
    d2 = np.asarray(d2)
    n, w = d2.shape
    if k <= 0 or k > w:
        raise PositioningError(f"k={k} out of range for {w} candidates")
    if k < w:
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(np.arange(w), (n, w)).copy()
    pv = np.take_along_axis(d2, part, axis=1)
    pid = part if ids is None else np.take_along_axis(ids, part, axis=1)
    if ids is not None:
        pid = pid.copy()
        pv = pv.copy()
    kth = pv.max(axis=1)
    # argpartition breaks ties at the k-th value arbitrarily; rows
    # where the tie group straddles the boundary are re-resolved
    # toward smaller ids (rare, so a Python loop is fine).
    full_ties = (d2 == kth[:, None]).sum(axis=1)
    sel_ties = (pv == kth[:, None]).sum(axis=1)
    for i in np.nonzero(full_ties > sel_ties)[0]:
        v = kth[i]
        row_ids = np.arange(w) if ids is None else ids[i]
        below = d2[i] < v
        n_below = int(below.sum())
        tie_ids = np.sort(row_ids[d2[i] == v])
        pid[i] = np.concatenate(
            [row_ids[below], tie_ids[: k - n_below]]
        )
        pv[i] = np.concatenate(
            [d2[i][below], np.full(k - n_below, v)]
        )
    order = np.lexsort((pid, pv), axis=-1)
    return (
        np.take_along_axis(pv, order, axis=1),
        np.take_along_axis(pid, order, axis=1),
    )


class SpatialIndex:
    """Bucketed PCA index with an exact-parity query path.

    Construct with :meth:`build` (fresh) or :meth:`from_arrays`
    (persisted state + the fingerprints it indexes).  The instance is
    immutable after construction and safe for concurrent queries.
    """

    def __init__(
        self,
        fingerprints: np.ndarray,
        mu: np.ndarray,
        basis: np.ndarray,
        assign: np.ndarray,
    ):
        fp = np.ascontiguousarray(fingerprints, dtype=float)
        if fp.ndim != 2 or fp.shape[0] == 0:
            raise PositioningError("index needs a (n, D) radio map")
        n, d = fp.shape
        mu = np.asarray(mu, dtype=float)
        basis = np.asarray(basis, dtype=float)
        assign = np.asarray(assign, dtype=np.int64)
        if mu.shape != (d,) or basis.ndim != 2 or basis.shape[0] != d:
            raise PositioningError("index basis does not match the map")
        if assign.shape != (n,) or assign.min(initial=0) < 0:
            raise PositioningError("index assignment does not match")
        self._fp = fp
        self.mu = mu
        self.basis = basis
        self.assign = assign
        self._derive()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, fingerprints: np.ndarray) -> "SpatialIndex":
        """Learn the rotation and bucket grid from the fingerprints."""
        fp = np.ascontiguousarray(fingerprints, dtype=float)
        if fp.ndim != 2 or fp.shape[0] == 0:
            raise PositioningError("index needs a (n, D) radio map")
        n, d = fp.shape
        mu = fp.mean(axis=0)
        centered = fp - mu
        # Orthonormal rotation from the covariance eigenbasis, top
        # variance first.  Validity of the bounds only needs
        # orthonormality, so numerical eigh differences across
        # platforms cannot break exactness.
        _, vectors = np.linalg.eigh(centered.T @ centered)
        basis = np.ascontiguousarray(
            vectors[:, :: -1][:, : min(_N_DIMS, d)]
        )
        proj = centered @ basis
        side = max(1, min(64, int(round(np.sqrt(n / _LEAF_SIZE)))))
        quantiles = np.linspace(0.0, 1.0, side + 1)[1:-1]
        edge0 = np.quantile(proj[:, 0], quantiles)
        edge1 = (
            np.quantile(proj[:, 1], quantiles)
            if basis.shape[1] > 1
            else np.empty(0)
        )
        col1 = proj[:, 1] if basis.shape[1] > 1 else np.zeros(n)
        assign = np.searchsorted(edge0, proj[:, 0]) * side + (
            np.searchsorted(edge1, col1)
        )
        return cls(fp, mu, basis, assign)

    def _derive(self) -> None:
        """Compute the query-time state from (fp, mu, basis, assign)."""
        fp, assign = self._fp, self.assign
        n = fp.shape[0]
        self.n_buckets = int(assign.max()) + 1
        centered = fp - self.mu
        proj = centered @ self.basis
        full2 = (centered * centered).sum(axis=1)
        tail = np.sqrt(
            np.maximum(full2 - (proj * proj).sum(axis=1), 0.0)
        )
        aug = np.concatenate([proj, tail[:, None]], axis=1)

        self._order = np.argsort(assign, kind="stable")
        self._counts = np.bincount(assign, minlength=self.n_buckets)
        self._offsets = np.concatenate(
            [[0], np.cumsum(self._counts)]
        )
        # Bucket-contiguous centered rows in f32: the block filter
        # reads them with plain slices, no per-row gathers.
        self._centered32 = np.ascontiguousarray(
            centered[self._order], dtype=np.float32
        )
        self._c2_32 = (
            (self._centered32.astype(np.float64) ** 2)
            .sum(axis=1)
            .astype(np.float32)
        )
        # Extended reference rows [C_r, 1, c2] for the grouped kernel:
        # against query rows [-2*C_q, qf - t, 1] a single GEMM yields
        # d2 - t (or d2 itself with t=0) fused — no per-rectangle
        # elementwise passes for the -2g + c2 + qf expansion.
        d = self._centered32.shape[1]
        ext = np.empty((n, d + 2), dtype=np.float32)
        ext[:, :d] = self._centered32
        ext[:, d] = 1.0
        ext[:, d + 1] = self._c2_32
        self._ext32 = ext
        cent = np.zeros((self.n_buckets, aug.shape[1]))
        np.add.at(cent, assign, aug)
        cent /= np.maximum(self._counts, 1)[:, None]
        delta = aug - cent[assign]
        dist_c = np.sqrt((delta * delta).sum(axis=1))
        radius = np.zeros(self.n_buckets)
        np.maximum.at(radius, assign, dist_c)
        self._centroids = cent
        self._cent2 = (cent * cent).sum(axis=1)
        self._radius = radius
        self._scale = float(self._c2_32.max(initial=1.0)) + 1.0
        self._n = n

        # Per-bucket axis-aligned bounding boxes in the augmented
        # space.  Distance-to-box lower-bounds the distance to every
        # row of the bucket and is much tighter than centroid-radius:
        # the radius is dominated by spread along the un-bucketed
        # dims, which the per-dim box simply doesn't pay for.
        aug_sorted = aug[self._order]
        starts = np.minimum(self._offsets[:-1], max(n - 1, 0))
        box_lo = np.minimum.reduceat(aug_sorted, starts, axis=0)
        box_hi = np.maximum.reduceat(aug_sorted, starts, axis=0)
        empty = self._counts == 0
        # reduceat yields a stray row for zero-length segments; empty
        # buckets must never pass a bound check.
        box_lo[empty] = np.inf
        box_hi[empty] = -np.inf
        self._box_lo = box_lo
        self._box_hi = box_hi
        # Contiguous 2-dim copies for the cheap bound peek — slicing
        # columns out of the wide boxes per query batch would gather
        # full rows.
        w2 = min(2, box_lo.shape[1])
        self._box2_lo = np.ascontiguousarray(box_lo[:, :w2])
        self._box2_hi = np.ascontiguousarray(box_hi[:, :w2])

        # Stage-2 band boundaries: bucket-id runs capped at
        # ``_BAND_ROWS`` rows.  Empty buckets occupy zero rows, so a
        # run of consecutive ids is always one contiguous slice of
        # ``_centered32`` — each band is evaluated with a single GEMM
        # over that slice, no gathers, no extra copy of the map.
        band_of_bucket = (np.cumsum(self._counts) - 1) // _BAND_ROWS
        np.maximum(band_of_bucket, 0, out=band_of_bucket)
        n_bands = int(band_of_bucket.max(initial=0)) + 1
        # bucket-id boundary of each band (band bd covers ids
        # [_band_bounds[bd], _band_bounds[bd+1]))
        bounds = np.searchsorted(
            band_of_bucket, np.arange(n_bands + 1)
        )
        self._band_of_bucket = band_of_bucket
        self._band_bounds = bounds
        self._band_rows = self._offsets[bounds]
        self._n_bands = n_bands

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return self._n

    @property
    def n_dims(self) -> int:
        return self._fp.shape[1]

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The persisted state (rotation + bucket assignment)."""
        return {
            "mu": self.mu,
            "basis": self.basis,
            "assign": self.assign,
        }

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], fingerprints: np.ndarray
    ) -> "SpatialIndex":
        """Rebuild from :meth:`to_arrays` output + the fingerprints."""
        return cls(
            fingerprints,
            arrays["mu"],
            arrays["basis"],
            arrays["assign"],
        )

    def refreshed(
        self,
        fingerprints: np.ndarray,
        keep_old: np.ndarray,
        keep_new: np.ndarray,
    ) -> "SpatialIndex":
        """Incrementally rebuilt index over a post-delta radio map.

        ``keep_old[i]`` / ``keep_new[i]`` pair up rows that survived
        the delta unchanged: they keep their bucket; every other row
        of ``fingerprints`` is assigned to the nearest existing bucket
        centroid in the augmented space.  The learned rotation and
        grid are frozen (bucket radii are recomputed, so the bounds
        stay exact regardless of drift); when less than half the map
        survives, a from-scratch :meth:`build` is both cheaper to
        reason about and tighter, so the refresh falls back to it.
        """
        fp = np.ascontiguousarray(fingerprints, dtype=float)
        keep_old = np.asarray(keep_old, dtype=np.int64)
        keep_new = np.asarray(keep_new, dtype=np.int64)
        if fp.ndim != 2 or fp.shape[1] != self._fp.shape[1]:
            raise PositioningError(
                "refreshed map does not match the indexed AP count"
            )
        if keep_old.shape != keep_new.shape:
            raise PositioningError("keep row maps must pair up")
        n = fp.shape[0]
        if keep_new.size < _REFRESH_MIN_KEPT * n:
            return SpatialIndex.build(fp)
        assign = np.full(n, -1, dtype=np.int64)
        assign[keep_new] = self.assign[keep_old]
        dirty = np.nonzero(assign < 0)[0]
        if dirty.size:
            centered = fp[dirty] - self.mu
            proj = centered @ self.basis
            full2 = (centered * centered).sum(axis=1)
            tail = np.sqrt(
                np.maximum(full2 - (proj * proj).sum(axis=1), 0.0)
            )
            aug = np.concatenate([proj, tail[:, None]], axis=1)
            occupied = np.nonzero(self._counts > 0)[0]
            cent = self._centroids[occupied]
            d2 = (
                (aug * aug).sum(axis=1)[:, None]
                + (cent * cent).sum(axis=1)[None, :]
                - 2.0 * (aug @ cent.T)
            )
            assign[dirty] = occupied[np.argmin(d2, axis=1)]
        return SpatialIndex(fp, self.mu, self.basis, assign)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, queries: np.ndarray, k: int, kernel: str = "grouped"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k-nearest references for a query batch.

        Returns ``(d2, ids)`` of shape ``(n, k)``, canonically ordered
        by ``(distance, reference index)`` — bit-identical to the
        brute-force exact path through :func:`canonical_k_smallest`,
        whichever ``kernel`` (see :data:`KERNELS`) evaluates it.
        """
        if kernel not in KERNELS:
            raise PositioningError(
                f"kernel must be one of {KERNELS}, got {kernel!r}"
            )
        q = np.ascontiguousarray(queries, dtype=float)
        if q.ndim != 2 or q.shape[1] != self._fp.shape[1]:
            raise PositioningError(
                f"queries must be (n, {self._fp.shape[1]})"
            )
        if not 0 < k <= self._n:
            raise PositioningError(
                f"k={k} out of range for {self._n} records"
            )
        b = q.shape[0]
        if b == 0:
            return np.empty((0, k)), np.empty((0, k), dtype=np.int64)

        centered = q - self.mu
        proj = centered @ self.basis
        qfull2 = (centered * centered).sum(axis=1)
        tail = np.sqrt(
            np.maximum(qfull2 - (proj * proj).sum(axis=1), 0.0)
        )
        aug = np.concatenate([proj, tail[:, None]], axis=1)
        centered32 = np.ascontiguousarray(centered, dtype=np.float32)
        scale = max(self._scale, float(qfull2.max(initial=0.0)) + 1.0)
        margin = _F32_MARGIN * scale + 1e-9

        # Stage 1a: bucket-level lower bounds in the augmented space.
        aug2 = (aug * aug).sum(axis=1)
        d2_qb = (
            aug2[:, None]
            + self._cent2[None, :]
            - 2.0 * (aug @ self._centroids.T)
        )
        err_b = 1e-12 * (aug2[:, None] + self._cent2[None, :] + 1.0)
        d_qb = np.sqrt(np.maximum(d2_qb - err_b, 0.0))
        lb_bucket = (
            np.maximum(d_qb - self._radius[None, :], 0.0) ** 2
        )
        lb_bucket[:, self._counts == 0] = np.inf

        # Probe selection: the nearest buckets until the cumulative
        # count reaches k, giving a valid upper bound on each query's
        # true k-th distance once their rows are evaluated.
        near = np.argsort(
            np.where(self._counts[None, :] > 0, d_qb, np.inf), axis=1
        )
        cum = np.cumsum(self._counts[near], axis=1)
        n_probe = np.minimum(
            (cum < k).sum(axis=1) + 1, self.n_buckets
        )

        if kernel == "grouped":
            return self._query_grouped(
                q, k, b, centered32, qfull2, aug, margin,
                lb_bucket, near, n_probe,
            )
        return self._query_bucket(
            q, k, b, centered32, qfull2, margin, lb_bucket, near,
            n_probe,
        )

    def _query_bucket(
        self,
        q: np.ndarray,
        k: int,
        b: int,
        centered32: np.ndarray,
        qfull2: np.ndarray,
        margin: float,
        lb_bucket: np.ndarray,
        near: np.ndarray,
        n_probe: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The per-bucket-loop kernel (the pre-grouped serving path,
        kept selectable for in-process A/B benchmarking)."""
        probe = np.zeros((b, self.n_buckets), dtype=bool)
        np.put_along_axis(
            probe,
            near,
            np.arange(self.n_buckets)[None, :] < n_probe[:, None],
            axis=1,
        )

        qf32 = qfull2.astype(np.float32)
        pool_qi, pool_ri, pool_v = self._filter_blocks(
            probe, centered32, qf32, None
        )
        ub = self._pooled_kth(pool_qi, pool_v, b, k)
        ub = ub * _PAD_UB + margin

        # Stage 2: block-filter the remaining buckets against ub.
        rest = lb_bucket * _PAD_LB <= ub[:, None]
        rest &= ~probe
        qi2, ri2, _ = self._filter_blocks(
            rest, centered32, qf32, (ub + margin).astype(np.float32)
        )
        keep = pool_v <= ub[pool_qi]
        qi = np.concatenate([pool_qi[keep], qi2])
        ri = np.concatenate([pool_ri[keep], ri2])
        return self._finish(q, k, b, qi, ri)

    def _query_grouped(
        self,
        q: np.ndarray,
        k: int,
        b: int,
        centered32: np.ndarray,
        qfull2: np.ndarray,
        aug: np.ndarray,
        margin: float,
        lb_bucket: np.ndarray,
        near: np.ndarray,
        n_probe: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The CSR grouped-GEMM kernel.

        Both GEMM stages run over *bands* — runs of consecutive bucket
        ids capped at a row budget — so the Python iteration count is
        O(bands), not O(buckets).  The probe pool extracts exactly the
        probed ``(query, bucket)`` pair values from each band
        rectangle through one flat CSR gather; stage 2 thresholds the
        whole band rectangle first and compacts with a single
        ``flatnonzero`` (over-inclusion is free: every kept pair is
        re-evaluated exactly in stage 3, and each bucket lives in
        exactly one band so no pair can appear twice).  Unlike the
        bucket kernel, probe buckets are *not* excluded from stage 2 —
        re-filtering their few rows costs less than masking them out
        of the rectangles, and the probe pool is used only for the
        upper bound.  Candidate sets therefore differ between kernels,
        but both contain every true neighbour (same pads and margins),
        so the exact finish returns bit-identical results.
        """
        stats = KERNEL_STATS
        timed = stats.enabled
        tick = time.perf_counter if timed else (lambda: 0.0)
        qf32 = qfull2.astype(np.float32)
        # Extended query rows [-2*C_q, qf, 1]: one GEMM against the
        # extended reference rows [C_r, 1, c2] evaluates the full f32
        # expansion d2 = -2g + qf + c2 fused (the *2 scaling is exact
        # in binary floating point).  Stage 2 later overwrites the qf
        # slot with qf - t so its rectangles compare against zero.
        dq = centered32.shape[1]
        qext = np.empty((b, dq + 2), dtype=np.float32)
        np.multiply(centered32, np.float32(-2.0), out=qext[:, :dq])
        qext[:, dq] = qf32
        qext[:, dq + 1] = 1.0
        t0 = tick()

        # ---- stage 1b: banded probe pool ---------------------------
        # Probe pairs sorted by bucket id; bands chunk the distinct
        # probed buckets at ~_PROBE_BAND_ROWS probed rows.  Each band
        # GEMMs the contiguous id-range slice (interleaved un-probed
        # rows ride along in the GEMM but are never extracted).
        pq = np.repeat(np.arange(b), n_probe)
        pb = near[pq, _ramp(n_probe)]
        order = np.argsort(pb, kind="stable")
        pq, pb = pq[order], pb[order]
        ubuck, bucket_pos = np.unique(pb, return_inverse=True)
        bsz = self._counts[ubuck]
        pband_of_bucket = (np.cumsum(bsz) - 1) // _PROBE_BAND_ROWS
        n_pbands = int(pband_of_bucket[-1]) + 1 if bsz.size else 0
        pband = pband_of_bucket[bucket_pos]
        # band -> contiguous bucket-id range [lo, hi)
        pb_seg = np.searchsorted(
            pband_of_bucket, np.arange(n_pbands + 1)
        )
        offsets = self._offsets
        lens_p = bsz[bucket_pos]
        pair_seg = np.searchsorted(pband, np.arange(n_pbands + 1))
        # element ramp + per-pair output offsets, shared across bands
        pos_ramp = _ramp(lens_p)
        lens_cum = np.concatenate([[0], np.cumsum(lens_p)])
        pool_qi = np.repeat(pq, lens_p)
        pool_parts: List[np.ndarray] = []
        for bd in range(n_pbands):
            blo = ubuck[pb_seg[bd]]
            bhi = ubuck[pb_seg[bd + 1] - 1] + 1
            s, e = offsets[blo], offsets[bhi]
            ps, pe = pair_seg[bd], pair_seg[bd + 1]
            qrows = np.unique(pq[ps:pe])
            qpos = np.empty(b, np.int64)
            qpos[qrows] = np.arange(qrows.size)
            gram = qext[qrows] @ self._ext32[s:e].T
            # flat CSR extraction of the probed pair values
            width = e - s
            head = qpos[pq[ps:pe]] * width + (offsets[pb[ps:pe]] - s)
            flat = np.repeat(head, lens_p[ps:pe])
            flat += pos_ramp[lens_cum[ps]:lens_cum[pe]]
            pool_parts.append(gram.ravel()[flat])
        pool_v = (
            np.concatenate(pool_parts)
            if pool_parts
            else np.empty(0, np.float32)
        )
        t1 = tick()

        # ---- pooled k-th -> upper bound ----------------------------
        ub = self._csr_kth(pool_qi, pool_v, lens_p, pq, b, k)
        ub = ub * _PAD_UB + margin
        thresh32 = (ub + margin).astype(np.float32)
        t2 = tick()

        # ---- bucket bounds: centroid-radius, then per-pair box -----
        # The box bound is evaluated twice: a 2-dim peek at the grid
        # axes first (those carry most of the separation between a
        # query and a far bucket), then the full-width distance-to-box
        # only on what survives — roughly halving the wide gather.
        active = lb_bucket * _PAD_LB <= ub[:, None]
        aqi, abi = np.nonzero(active)
        w2 = self._box2_lo.shape[1]
        aug2d = np.ascontiguousarray(aug[:, :w2])
        pt2 = aug2d[aqi]
        gap2 = pt2 - np.clip(pt2, self._box2_lo[abi], self._box2_hi[abi])
        lb_box2 = np.einsum("ij,ij->i", gap2, gap2)
        keep = lb_box2 * _PAD_LB <= ub[aqi]
        aqi, abi = aqi[keep], abi[keep]
        pt = aug[aqi]
        gap = pt - np.clip(pt, self._box_lo[abi], self._box_hi[abi])
        lb_box = np.einsum("ij,ij->i", gap, gap)
        keep = lb_box * _PAD_LB <= ub[aqi]
        aqi, abi = aqi[keep], abi[keep]
        t3 = tick()

        # ---- stage 2: banded rectangles, threshold-first compaction
        # With the qf slot rewritten to qf - t, each fused rectangle
        # holds d2 - t directly and survivors are just gram <= 0 — one
        # GEMM and one scan per band, nothing elementwise in between.
        # The fused accumulation rounds differently from the legacy
        # three-pass expansion, but both stay within the shared f32
        # margin, which is all stage 2 ever promises.
        qext[:, dq] = qf32 - thresh32
        pair_band = self._band_of_bucket[abi]
        code = pair_band * np.int64(b) + aqi
        code = np.unique(code)
        act_q = (code % b).astype(np.int64)
        band_seg = np.searchsorted(
            code // b, np.arange(self._n_bands + 1)
        )
        # active-bucket id range per band: trims each rectangle's
        # columns to the rows its surviving buckets actually occupy
        # instead of paying the full band slice.
        bord = np.argsort(pair_band, kind="stable")
        abi_bb = abi[bord]
        bband_seg = np.searchsorted(
            pair_band[bord], np.arange(self._n_bands + 1)
        )
        qi_parts: List[np.ndarray] = []
        ri_parts: List[np.ndarray] = []
        v_parts: List[np.ndarray] = []
        gemm_rows = 0
        for bd in range(self._n_bands):
            clo, chi = band_seg[bd], band_seg[bd + 1]
            if clo == chi:
                continue
            rows = act_q[clo:chi]
            bks = abi_bb[bband_seg[bd]:bband_seg[bd + 1]]
            s = offsets[int(bks.min())]
            e = offsets[int(bks.max()) + 1]
            gram = qext[rows] @ self._ext32[s:e].T
            gflat = gram.ravel()
            flat = np.flatnonzero(gflat <= 0.0)
            width = e - s
            gemm_rows += rows.size * width
            qi_parts.append(rows[flat // width])
            ri_parts.append(s + flat % width)
            v_parts.append(gflat[flat])
        qi = (
            np.concatenate(qi_parts)
            if qi_parts
            else np.empty(0, np.int64)
        )
        ri = (
            np.concatenate(ri_parts)
            if ri_parts
            else np.empty(0, np.int64)
        )
        t4 = tick()

        # ---- f32 refine: shrink the exact finish ------------------
        # The rectangles already evaluated every candidate's f32
        # ``d2 - t``; adding ``t`` back (exactly, in f64) recovers an
        # estimate within the f32 margin of the true distance.  Its
        # per-query k-th is at most ``margin`` below the k-th true
        # candidate distance, so keeping ``est <= kth + 4*margin``
        # (double the two-sided error, doubled again for slack — the
        # superset stays exact no matter how loose) provably retains
        # every true neighbour, ties included, while cutting the f64
        # gather/lexsort to near-k candidates.
        if qi.size:
            est = np.concatenate(v_parts).astype(np.float64)
            est += thresh32.astype(np.float64)[qi]
            kth = self._pooled_kth(qi, est.astype(np.float32), b, k)
            keep = est <= kth[qi] * _PAD_UB + 4.0 * margin
            qi, ri = qi[keep], ri[keep]

        out = self._finish(q, k, b, qi, ri)
        if timed:
            t5 = time.perf_counter()
            stats.add(
                {
                    "probe_s": t1 - t0,
                    "select_s": t2 - t1,
                    "bound_s": t3 - t2,
                    "gemm_s": t4 - t3,
                    "finish_s": t5 - t4,
                },
                candidates=int(qi.size),
                gemm_rows=int(gemm_rows),
                queries=b,
            )
        return out

    def _csr_kth(
        self,
        pool_qi: np.ndarray,
        pool_v: np.ndarray,
        lens_p: np.ndarray,
        pair_q: np.ndarray,
        b: int,
        k: int,
    ) -> np.ndarray:
        """Per-query k-th smallest of the banded probe pool.

        The pool arrives as per-``(query, bucket)`` blocks of
        contiguous values (``lens_p[i]`` values for the pair whose
        query is ``pair_q[i]``), so each block's scatter position
        inside its query's row follows from the block lengths alone —
        no per-element sort.  When one query's pool would blow the
        dense ``(b, width)`` scatter past :data:`_DENSE_SELECT_CAP`,
        selection falls back to the O(candidates) segment path.
        """
        counts = np.bincount(pool_qi, minlength=b)
        width = int(counts.max(initial=0))
        if b * width <= max(4 * pool_v.size, _DENSE_SELECT_CAP):
            border = np.argsort(pair_q, kind="stable")
            lens_sorted = lens_p[border]
            ends = np.cumsum(lens_sorted)
            block_start = ends - lens_sorted
            qseg = np.searchsorted(
                pair_q[border], np.arange(b + 1)
            )
            first = np.repeat(
                block_start[
                    np.minimum(qseg[:-1], max(lens_sorted.size - 1, 0))
                ],
                np.diff(qseg),
            )
            start_in_q = np.empty(lens_p.size, np.int64)
            start_in_q[border] = block_start - first
            pos = np.repeat(start_in_q, lens_p) + _ramp(lens_p)
            pool = np.full((b, width), np.inf, dtype=pool_v.dtype)
            pool[pool_qi, pos] = pool_v
            if width <= k:
                kth = pool.max(axis=1, initial=0.0)
            else:
                kth = np.partition(pool, k - 1, axis=1)[:, k - 1]
                kth[counts < k] = np.inf
        else:
            order = np.lexsort((pool_v, pool_qi))
            seg = np.searchsorted(
                pool_qi[order], np.arange(b + 1)
            )
            kth = np.full(b, np.inf)
            ok = counts >= k
            picks = np.minimum(
                seg[:-1] + k - 1, max(pool_v.size - 1, 0)
            )
            kth[ok] = pool_v[order][picks[ok]]
        return np.maximum(np.asarray(kth, dtype=np.float64), 0.0)

    def _finish(
        self,
        q: np.ndarray,
        k: int,
        b: int,
        qi: np.ndarray,
        ri: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stage 3: exact f64 finish + canonical selection.

        Selection runs on lexsorted ``(query, distance, id)`` segments
        — the first k entries of a query's segment *are* its
        canonically-ordered neighbours — so memory stays
        O(candidates) instead of the old dense ``(b, width)`` scatter,
        which one fat candidate pool could blow up to ``b`` times the
        candidate count.  Should any query end up with fewer than k
        candidates (impossible while the stage-1/2 margins hold, but
        cheap to guard), those queries fall back to the brute exact
        scan, preserving the parity contract unconditionally.
        """
        ref_ids = self._order[ri]
        d2x = pair_exact_sq_dists(q[qi], self._fp[ref_ids])
        order = np.lexsort((ref_ids, d2x, qi))
        sq, sd, si = qi[order], d2x[order], ref_ids[order]
        seg = np.searchsorted(sq, np.arange(b + 1))
        short = np.diff(seg) < k
        if short.any():
            rows = np.nonzero(short)[0]
            d2 = pair_exact_sq_dists(
                q[rows][:, None, :], self._fp[None, :, :]
            )
            sv, sids = canonical_k_smallest(d2, k)
            vals = np.empty((b, k))
            ids = np.empty((b, k), dtype=np.int64)
            good = np.nonzero(~short)[0]
            pick = seg[:-1][good, None] + np.arange(k)[None, :]
            vals[good] = sd[pick]
            ids[good] = si[pick]
            vals[rows] = sv
            ids[rows] = sids
            return vals, ids
        pick = seg[:-1][:, None] + np.arange(k)[None, :]
        return sd[pick], si[pick]

    def _filter_blocks(
        self,
        mask: np.ndarray,
        centered32: np.ndarray,
        qf32: np.ndarray,
        thresh32: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Evaluate the ``(query, bucket)`` pairs set in ``mask``.

        Computes float32 expansion distances over each bucket's
        contiguous block; with ``thresh32`` given only pairs at or
        under the per-query threshold are kept, otherwise every pair
        is returned (the probe pool).  Returns ``(query_idx,
        sorted_row_idx, f32_distance)`` arrays — the distances stay
        float32 end to end (they are only ever *bounds*; widening
        them to f64 per bucket bought nothing but copies, and the
        f32→f64 conversion is value-exact wherever a caller needs the
        wide type).
        """
        qis, ris, vs = [], [], []
        offsets = self._offsets
        for bucket in np.nonzero(mask.any(axis=0))[0]:
            rows = np.nonzero(mask[:, bucket])[0]
            s, e = offsets[bucket], offsets[bucket + 1]
            if e == s:
                continue
            gram = centered32[rows] @ self._centered32[s:e].T
            gram *= -2.0
            gram += self._c2_32[None, s:e]
            gram += qf32[rows, None]
            if thresh32 is None:
                qis.append(np.repeat(rows, e - s))
                ris.append(np.tile(np.arange(s, e), rows.size))
                vs.append(gram.ravel())
            else:
                rr, cc = np.nonzero(gram <= thresh32[rows, None])
                qis.append(rows[rr])
                ris.append(cc + s)
                vs.append(gram[rr, cc])
        if not qis:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=np.float32)
        return (
            np.concatenate(qis),
            np.concatenate(ris),
            np.concatenate(vs),
        )

    @staticmethod
    def _pooled_kth(
        qi: np.ndarray, values: np.ndarray, b: int, k: int
    ) -> np.ndarray:
        """Per-query k-th smallest of a pooled ``(qi, value)`` set.

        ``values`` arrives float32 from the block filter; the scatter,
        partition and selection run at that width (half the memory
        traffic of the old f64 pool) and only the chosen per-query
        bound widens to f64 — an exact conversion, so the padded upper
        bounds downstream are bit-identical to the all-f64 pool.

        One query with a huge pool used to pad *every* row of the
        dense ``(b, width)`` scatter to its width; past
        :data:`_DENSE_SELECT_CAP` the selection now switches to a
        lexsort over the candidates themselves, keeping peak memory
        O(candidates).  The k-th smallest of a set does not depend on
        how it is selected, so the bound — and everything downstream —
        is unchanged.
        """
        counts = np.bincount(qi, minlength=b)
        width = int(counts.max(initial=0))
        if b * width > max(4 * values.size, _DENSE_SELECT_CAP):
            order = np.lexsort((values, qi))
            sq, sv = qi[order], values[order]
            seg = np.searchsorted(sq, np.arange(b + 1))
            kth = np.full(b, np.inf, dtype=values.dtype)
            ok = counts >= k
            picks = np.minimum(
                seg[:-1] + k - 1, max(values.size - 1, 0)
            )
            kth[ok] = sv[picks[ok]]
            return np.maximum(kth.astype(np.float64), 0.0)
        order = np.argsort(qi, kind="stable")
        qi, values = qi[order], values[order]
        starts = np.concatenate([[0], np.cumsum(counts)])
        pos = np.arange(qi.size) - starts[qi]
        pool = np.full((b, width), np.inf, dtype=values.dtype)
        pool[qi, pos] = values
        if width <= k:
            kth = pool.max(axis=1, initial=0.0)
        else:
            kth = np.partition(pool, k - 1, axis=1)[:, k - 1]
            # Queries whose probe pool came up short scan everything.
            kth[counts < k] = np.inf
        return np.maximum(kth.astype(np.float64), 0.0)
