"""Location estimation (KNN, WKNN, random forest) and the paper's
evaluation-control protocol.

Serving API: every estimator shares the batch-first
:meth:`~repro.positioning.base.LocationEstimator.predict` contract —
``(n, D)`` queries in, ``(n, 2)`` locations out (a single ``(D,)``
query returns ``(2,)``) — with the vectorized nearest-neighbour search
living in :mod:`repro.positioning.base`.
"""

from .base import (
    LocationEstimator,
    NearestNeighbourEstimator,
    pairwise_sq_dists,
)
from .index import (
    INDEX_MIN_RECORDS,
    KERNEL_STATS,
    KERNELS,
    SpatialIndex,
    canonical_k_smallest,
)
from .evaluate import (
    PipelineOutcome,
    evaluate_pipeline,
    imputed_test_fingerprints,
)
from .forest import RandomForestEstimator
from .io import ESTIMATOR_KINDS, load_estimator, save_estimator
from .knn import KNNEstimator, WKNNEstimator
from .tree import RegressionTree

__all__ = [
    "ESTIMATOR_KINDS",
    "INDEX_MIN_RECORDS",
    "KERNEL_STATS",
    "KERNELS",
    "KNNEstimator",
    "SpatialIndex",
    "canonical_k_smallest",
    "LocationEstimator",
    "NearestNeighbourEstimator",
    "PipelineOutcome",
    "RandomForestEstimator",
    "RegressionTree",
    "WKNNEstimator",
    "evaluate_pipeline",
    "imputed_test_fingerprints",
    "load_estimator",
    "pairwise_sq_dists",
    "save_estimator",
]
