"""Location estimation (KNN, WKNN, random forest) and the paper's
evaluation-control protocol."""

from .evaluate import PipelineOutcome, evaluate_pipeline
from .forest import RandomForestEstimator
from .knn import KNNEstimator, LocationEstimator, WKNNEstimator
from .tree import RegressionTree

__all__ = [
    "KNNEstimator",
    "LocationEstimator",
    "PipelineOutcome",
    "RandomForestEstimator",
    "RegressionTree",
    "WKNNEstimator",
    "evaluate_pipeline",
]
