"""Segment primitives: orientation tests, intersection, crossing counts.

These routines back two subsystems:

* the radio channel, which counts how many walls a straight transmission
  path crosses (per-wall attenuation);
* ``TopoAC``'s :func:`repro.core.topoac.entity_exist` check, which needs
  robust polygon/hull intersection tests.

All functions accept plain ``(x, y)`` tuples or numpy arrays of shape
``(2,)``; vectorised variants operate on ``(n, 2)`` arrays.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Point = Tuple[float, float]

#: Tolerance for orientation / degeneracy tests.
EPS = 1e-12


def orientation(p: Point, q: Point, r: Point) -> int:
    """Return the orientation of the ordered triple ``(p, q, r)``.

    Returns ``+1`` for counter-clockwise, ``-1`` for clockwise and ``0``
    for (numerically) collinear points.
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if cross > EPS:
        return 1
    if cross < -EPS:
        return -1
    return 0


def on_segment(p: Point, q: Point, r: Point) -> bool:
    """Return True if collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p[0], r[0]) - EPS <= q[0] <= max(p[0], r[0]) + EPS
        and min(p[1], r[1]) - EPS <= q[1] <= max(p[1], r[1]) + EPS
    )


def segments_intersect(a1: Point, a2: Point, b1: Point, b2: Point) -> bool:
    """Return True if closed segments ``a1a2`` and ``b1b2`` intersect.

    Handles all degenerate cases (shared endpoints, collinear overlap).
    """
    o1 = orientation(a1, a2, b1)
    o2 = orientation(a1, a2, b2)
    o3 = orientation(b1, b2, a1)
    o4 = orientation(b1, b2, a2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(a1, b1, a2):
        return True
    if o2 == 0 and on_segment(a1, b2, a2):
        return True
    if o3 == 0 and on_segment(b1, a1, b2):
        return True
    if o4 == 0 and on_segment(b1, a2, b2):
        return True
    return False


def segment_intersection_point(
    a1: Point, a2: Point, b1: Point, b2: Point
) -> Point | None:
    """Return the intersection point of two segments, or None.

    For collinear-overlap cases the midpoint of the overlap is returned.
    """
    d1 = (a2[0] - a1[0], a2[1] - a1[1])
    d2 = (b2[0] - b1[0], b2[1] - b1[1])
    denom = d1[0] * d2[1] - d1[1] * d2[0]
    if abs(denom) > EPS:
        t = ((b1[0] - a1[0]) * d2[1] - (b1[1] - a1[1]) * d2[0]) / denom
        u = ((b1[0] - a1[0]) * d1[1] - (b1[1] - a1[1]) * d1[0]) / denom
        if -EPS <= t <= 1 + EPS and -EPS <= u <= 1 + EPS:
            return (a1[0] + t * d1[0], a1[1] + t * d1[1])
        return None
    if not segments_intersect(a1, a2, b1, b2):
        return None
    # Collinear overlap: gather endpoints lying on the other segment.
    pts = [p for p in (a1, a2) if on_segment(b1, p, b2)]
    pts += [p for p in (b1, b2) if on_segment(a1, p, a2)]
    if not pts:
        return None
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return (sum(xs) / len(xs), sum(ys) / len(ys))


def count_segment_crossings(
    a1: Point,
    a2: Point,
    segments: Sequence[Tuple[Point, Point]],
) -> int:
    """Count how many of ``segments`` the segment ``a1a2`` intersects.

    The channel model uses this to count wall crossings on a
    transmitter-to-receiver path; each crossing contributes a fixed
    attenuation.
    """
    return sum(
        1 for s1, s2 in segments if segments_intersect(a1, a2, s1, s2)
    )


def count_crossings_vectorized(
    origin: np.ndarray,
    targets: np.ndarray,
    seg_starts: np.ndarray,
    seg_ends: np.ndarray,
) -> np.ndarray:
    """Count wall crossings from one origin to many targets at once.

    Parameters
    ----------
    origin:
        ``(2,)`` transmitter position.
    targets:
        ``(n, 2)`` receiver positions.
    seg_starts, seg_ends:
        ``(m, 2)`` wall-segment endpoints.

    Returns
    -------
    ``(n,)`` integer array of crossing counts.

    Uses the standard proper-intersection predicate via vectorised cross
    products; touching endpoints may count as crossings, which is
    acceptable for attenuation purposes (walls are thin and positions are
    continuous, so measure-zero configurations are irrelevant).
    """
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[None, :]
    n = targets.shape[0]
    m = seg_starts.shape[0]
    if m == 0:
        return np.zeros(n, dtype=int)

    o = np.asarray(origin, dtype=float)
    # d1: (n, 2) direction of each path; d2: (m, 2) direction of each wall.
    d1 = targets - o
    d2 = seg_ends - seg_starts
    # For each (path i, wall j) solve o + t*d1[i] == s[j] + u*d2[j].
    denom = d1[:, None, 0] * d2[None, :, 1] - d1[:, None, 1] * d2[None, :, 0]
    rel = seg_starts[None, :, :] - o[None, None, :]
    t_num = rel[:, :, 0] * d2[None, :, 1] - rel[:, :, 1] * d2[None, :, 0]
    u_num = rel[:, :, 0] * d1[:, None, 1] - rel[:, :, 1] * d1[:, None, 0]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = t_num / denom
        u = u_num / denom
    hits = (
        (np.abs(denom) > EPS)
        & (t >= -EPS)
        & (t <= 1 + EPS)
        & (u >= -EPS)
        & (u <= 1 + EPS)
    )
    return hits.sum(axis=1).astype(int)


def path_length(points: np.ndarray) -> float:
    """Return the total polyline length of ``(n, 2)`` waypoints."""
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] < 2:
        return 0.0
    return float(np.linalg.norm(np.diff(pts, axis=0), axis=1).sum())


def interpolate_along(points: np.ndarray, distance: float) -> np.ndarray:
    """Return the point at arc-length ``distance`` along a polyline.

    Distances beyond the polyline are clamped to its endpoints.
    """
    pts = np.asarray(points, dtype=float)
    if pts.shape[0] == 1:
        return pts[0].copy()
    seg_vecs = np.diff(pts, axis=0)
    seg_lens = np.linalg.norm(seg_vecs, axis=1)
    cum = np.concatenate([[0.0], np.cumsum(seg_lens)])
    total = cum[-1]
    d = min(max(distance, 0.0), total)
    idx = int(np.searchsorted(cum, d, side="right")) - 1
    idx = min(idx, len(seg_lens) - 1)
    if seg_lens[idx] < EPS:
        return pts[idx].copy()
    frac = (d - cum[idx]) / seg_lens[idx]
    return pts[idx] + frac * seg_vecs[idx]
