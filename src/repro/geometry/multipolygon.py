"""MultiPolygon: the `topological entities` container used by TopoAC.

The paper models walls and obstacles as a multipolygon ``T``.  TopoAC's
``ENTITYEXIST`` check asks whether the convex hull of a cluster's
reference points overlaps any entity in ``T``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .polygon import Polygon

Point = Tuple[float, float]


class MultiPolygon:
    """An immutable collection of :class:`Polygon` entities."""

    __slots__ = ("polygons",)

    def __init__(self, polygons: Iterable[Polygon] = ()):
        self.polygons: List[Polygon] = list(polygons)

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MultiPolygon(n={len(self.polygons)})"

    @property
    def total_area(self) -> float:
        """Sum of the member polygon areas."""
        return float(sum(p.area for p in self.polygons))

    def intersects_polygon(self, polygon: Polygon) -> bool:
        """True if any member polygon shares a point with ``polygon``."""
        return any(p.intersects_polygon(polygon) for p in self.polygons)

    def contains_point(self, point: Point) -> bool:
        """True if the point lies inside (or on) any member polygon."""
        return any(p.contains_point(point) for p in self.polygons)

    def contains_points(
        self, points: np.ndarray, *, boundary: bool = True
    ) -> np.ndarray:
        """Vectorised membership over all members: ``(n,)`` booleans.

        A point counts as contained when any member polygon contains
        it (same per-polygon ``boundary`` contract as
        :meth:`Polygon.contains_points`).  Already-decided points are
        skipped, so the cost is one polygon pass over the shrinking
        undecided set.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        out = np.zeros(pts.shape[0], dtype=bool)
        for polygon in self.polygons:
            undecided = ~out
            if not undecided.any():
                break
            out[undecided] = polygon.contains_points(
                pts[undecided], boundary=boundary
            )
        return out

    def intersects_segment(self, p1: Point, p2: Point) -> bool:
        """True if the segment touches any member polygon."""
        return any(p.intersects_segment(p1, p2) for p in self.polygons)

    def all_edges(self) -> List[Tuple[Point, Point]]:
        """All edge segments of all member polygons."""
        edges: List[Tuple[Point, Point]] = []
        for p in self.polygons:
            edges.extend(p.edges())
        return edges

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Edge endpoints as two ``(m, 2)`` arrays (starts, ends).

        Convenience for the vectorised wall-crossing counter in
        :func:`repro.geometry.segments.count_crossings_vectorized`.
        """
        edges = self.all_edges()
        if not edges:
            empty = np.empty((0, 2))
            return empty, empty.copy()
        starts = np.array([e[0] for e in edges], dtype=float)
        ends = np.array([e[1] for e in edges], dtype=float)
        return starts, ends

    @classmethod
    def from_vertex_lists(
        cls, vertex_lists: Sequence[Sequence[Point]]
    ) -> "MultiPolygon":
        """Build from raw nested vertex lists (e.g. parsed JSON)."""
        return cls(Polygon(v) for v in vertex_lists)

    def to_vertex_lists(self) -> List[List[List[float]]]:
        """Inverse of :meth:`from_vertex_lists`, for serialisation."""
        return [p.vertices.tolist() for p in self.polygons]
