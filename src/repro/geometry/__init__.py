"""2-D geometry substrate.

Provides the polygon / convex-hull / segment primitives that back the
indoor floor-plan model, the wall-attenuation channel, and TopoAC's
topology heuristic.  Implemented from scratch (no shapely available).
"""

from .hull import convex_hull, hull_area, hull_polygon
from .multipolygon import MultiPolygon
from .polygon import Polygon, bounding_box_of
from .segments import (
    count_crossings_vectorized,
    count_segment_crossings,
    interpolate_along,
    orientation,
    path_length,
    segment_intersection_point,
    segments_intersect,
)

__all__ = [
    "MultiPolygon",
    "Polygon",
    "bounding_box_of",
    "convex_hull",
    "count_crossings_vectorized",
    "count_segment_crossings",
    "hull_area",
    "hull_polygon",
    "interpolate_along",
    "orientation",
    "path_length",
    "segment_intersection_point",
    "segments_intersect",
]
