"""Convex hulls via Andrew's monotone chain.

``TopoAC`` (Algorithm 4 in the paper) builds the convex hull of a
candidate cluster's reference points and tests whether any topological
entity (wall, obstacle) intrudes into it.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..exceptions import GeometryError
from .polygon import Polygon

Point = Tuple[float, float]


def convex_hull(points: Sequence[Point]) -> np.ndarray:
    """Return hull vertices in counter-clockwise order as ``(h, 2)``.

    Degenerate inputs are handled gracefully: a single point returns that
    point, two points (or any fully collinear set) return the extreme
    pair.  Duplicated points are removed first.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts[None, :]
    if pts.size == 0:
        raise GeometryError("convex hull of empty point set")
    uniq = np.unique(pts, axis=0)
    if uniq.shape[0] <= 2:
        return uniq
    # Sort lexicographically (x, then y).
    order = np.lexsort((uniq[:, 1], uniq[:, 0]))
    p = uniq[order]

    def cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for pt in p:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], pt) <= 0:
            lower.pop()
        lower.append(pt)
    upper: list[np.ndarray] = []
    for pt in p[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], pt) <= 0:
            upper.pop()
        upper.append(pt)
    hull = np.array(lower[:-1] + upper[:-1])
    if hull.shape[0] < 3:
        # All points collinear: return the two extremes.
        return np.array([p[0], p[-1]])
    return hull


def hull_polygon(points: Sequence[Point]) -> Polygon | None:
    """Return the convex hull as a :class:`Polygon`, or None if the hull
    is degenerate (fewer than 3 non-collinear points)."""
    hull = convex_hull(points)
    if hull.shape[0] < 3:
        return None
    return Polygon(hull)


def hull_area(points: Sequence[Point]) -> float:
    """Area of the convex hull (0 for degenerate hulls)."""
    poly = hull_polygon(points)
    return 0.0 if poly is None else poly.area
