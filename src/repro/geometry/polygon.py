"""Simple-polygon type with containment, area and intersection tests."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..exceptions import GeometryError
from .segments import EPS, segments_intersect

Point = Tuple[float, float]


class Polygon:
    """A simple (non-self-intersecting) polygon defined by its vertices.

    Vertices may be given in either winding order; the constructor stores
    them as provided.  The polygon is treated as a closed ring — the last
    vertex connects back to the first.

    Parameters
    ----------
    vertices:
        Iterable of ``(x, y)`` pairs, at least 3.
    """

    __slots__ = ("vertices",)

    def __init__(self, vertices: Iterable[Point]):
        verts = np.asarray(list(vertices), dtype=float)
        if verts.ndim != 2 or verts.shape[1] != 2:
            raise GeometryError("polygon vertices must be (n, 2)")
        if verts.shape[0] < 3:
            raise GeometryError("polygon needs at least 3 vertices")
        self.vertices: np.ndarray = verts

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Polygon({self.vertices.tolist()!r})"

    def __len__(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def area(self) -> float:
        """Unsigned polygon area via the shoelace formula."""
        x = self.vertices[:, 0]
        y = self.vertices[:, 1]
        return float(
            0.5 * abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
        )

    @property
    def centroid(self) -> np.ndarray:
        """Area centroid (falls back to vertex mean for zero area)."""
        v = self.vertices
        x = v[:, 0]
        y = v[:, 1]
        shift_x = np.roll(x, -1)
        shift_y = np.roll(y, -1)
        cross = x * shift_y - shift_x * y
        signed_area = cross.sum() / 2.0
        if abs(signed_area) < EPS:
            return v.mean(axis=0)
        cx = ((x + shift_x) * cross).sum() / (6.0 * signed_area)
        cy = ((y + shift_y) * cross).sum() / (6.0 * signed_area)
        return np.array([cx, cy])

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box as ``(minx, miny, maxx, maxy)``."""
        mins = self.vertices.min(axis=0)
        maxs = self.vertices.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    def edges(self) -> List[Tuple[Point, Point]]:
        """Return the list of edge segments ``[(v_i, v_{i+1}), ...]``."""
        v = self.vertices
        n = len(v)
        return [
            (tuple(v[i]), tuple(v[(i + 1) % n])) for i in range(n)
        ]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point, *, boundary: bool = True) -> bool:
        """Ray-casting point-in-polygon test.

        Parameters
        ----------
        point:
            Query point.
        boundary:
            When True (default), points on the boundary count as inside.
        """
        x, y = float(point[0]), float(point[1])
        v = self.vertices
        n = len(v)
        inside = False
        for i in range(n):
            x1, y1 = v[i]
            x2, y2 = v[(i + 1) % n]
            # Boundary check on this edge.
            if _point_on_edge(x, y, x1, y1, x2, y2):
                return boundary
            if (y1 > y) != (y2 > y):
                x_int = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
                if x < x_int:
                    inside = not inside
        return inside

    def contains_points(
        self, points: np.ndarray, *, boundary: bool = True
    ) -> np.ndarray:
        """Vectorised ray-casting for an ``(n, 2)`` array of points.

        Same contract as :meth:`contains_point`, row by row: strictly
        interior points are inside, strictly exterior points are not,
        and points on an edge or vertex return ``boundary`` (default
        True) — including every point of a degenerate zero-area
        polygon, which is all boundary.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        x = pts[:, 0][:, None]
        y = pts[:, 1][:, None]
        v1 = self.vertices
        v2 = np.roll(v1, -1, axis=0)
        y1, y2 = v1[None, :, 1], v2[None, :, 1]
        x1, x2 = v1[None, :, 0], v2[None, :, 0]
        # On-edge test, mirroring _point_on_edge: zero cross product
        # and the point between the endpoints.
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        dot = (x - x1) * (x - x2) + (y - y1) * (y - y2)
        on_boundary = ((np.abs(cross) <= 1e-9) & (dot <= 1e-9)).any(
            axis=1
        )
        straddle = (y1 > y) != (y2 > y)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_int = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
        crossings = (straddle & (x < x_int)).sum(axis=1)
        inside = (crossings % 2).astype(bool)
        return np.where(on_boundary, boundary, inside)

    def intersects_segment(self, p1: Point, p2: Point) -> bool:
        """True if segment ``p1p2`` touches this polygon (edge or interior)."""
        for e1, e2 in self.edges():
            if segments_intersect(p1, p2, e1, e2):
                return True
        return self.contains_point(p1) or self.contains_point(p2)

    def intersects_polygon(self, other: "Polygon") -> bool:
        """True if two polygons share any point (edges cross or one
        contains the other)."""
        for e1, e2 in self.edges():
            for f1, f2 in other.edges():
                if segments_intersect(e1, e2, f1, f2):
                    return True
        return self.contains_point(tuple(other.vertices[0])) or (
            other.contains_point(tuple(self.vertices[0]))
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def rectangle(
        cls, minx: float, miny: float, maxx: float, maxy: float
    ) -> "Polygon":
        """Axis-aligned rectangle polygon."""
        if maxx <= minx or maxy <= miny:
            raise GeometryError("rectangle must have positive extent")
        return cls(
            [(minx, miny), (maxx, miny), (maxx, maxy), (minx, maxy)]
        )

    def sample_interior_point(
        self, rng: np.random.Generator, max_tries: int = 200
    ) -> np.ndarray:
        """Rejection-sample a uniform point inside the polygon."""
        minx, miny, maxx, maxy = self.bounds
        for _ in range(max_tries):
            p = rng.uniform((minx, miny), (maxx, maxy))
            if self.contains_point(tuple(p)):
                return p
        return self.centroid  # degenerate fallback


def _point_on_edge(
    x: float, y: float, x1: float, y1: float, x2: float, y2: float
) -> bool:
    """True if ``(x, y)`` lies on the closed segment ``(x1,y1)-(x2,y2)``."""
    cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
    if abs(cross) > 1e-9:
        return False
    dot = (x - x1) * (x - x2) + (y - y1) * (y - y2)
    return dot <= 1e-9


def bounding_box_of(points: Sequence[Point]) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box of a point collection."""
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        raise GeometryError("cannot bound an empty point set")
    mins = pts.min(axis=0)
    maxs = pts.max(axis=0)
    return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))
