"""ASCII rendering of floor plans, RPs and cluster assignments.

The paper communicates its differentiator intuitions with venue scatter
plots (Figs. 3, 5, 6, 7).  Without a plotting backend we render the
same information as character grids: rooms hatched, corridors blank,
reference points / samples as symbols (cluster ids, observability
flags).  Used by the fig5/fig67 experiments and handy for debugging
venues interactively.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import VenueError
from ..venue import FloorPlan

#: Symbols used for cluster ids (wraps around when exhausted).
CLUSTER_SYMBOLS = "0123456789abcdefghijklmnopqrstuvwxyz"


class AsciiCanvas:
    """A character grid mapped onto venue coordinates."""

    def __init__(
        self,
        width_m: float,
        height_m: float,
        *,
        columns: int = 72,
    ):
        if width_m <= 0 or height_m <= 0:
            raise VenueError("canvas extent must be positive")
        self.width_m = width_m
        self.height_m = height_m
        self.columns = columns
        # Terminal cells are ~2x taller than wide; halve the row count
        # so the aspect ratio looks right.
        self.rows = max(8, int(columns * height_m / width_m / 2))
        self._grid = [
            [" "] * columns for _ in range(self.rows)
        ]

    def _cell(self, x: float, y: float):
        col = int(x / self.width_m * (self.columns - 1))
        row = int((1.0 - y / self.height_m) * (self.rows - 1))
        if 0 <= row < self.rows and 0 <= col < self.columns:
            return row, col
        return None

    def put(self, x: float, y: float, char: str) -> None:
        """Draw one character at venue coordinates (clipped)."""
        cell = self._cell(x, y)
        if cell is not None:
            self._grid[cell[0]][cell[1]] = char[0]

    def fill_polygon(self, polygon, char: str) -> None:
        """Hatch a polygon's interior cells."""
        for row in range(self.rows):
            y = (1.0 - row / max(self.rows - 1, 1)) * self.height_m
            for col in range(self.columns):
                x = col / max(self.columns - 1, 1) * self.width_m
                if polygon.contains_point((x, y), boundary=False):
                    self._grid[row][col] = char[0]

    def render(self) -> str:
        border = "+" + "-" * self.columns + "+"
        body = "\n".join(
            "|" + "".join(row) + "|" for row in self._grid
        )
        return f"{border}\n{body}\n{border}"


def render_floorplan(
    plan: FloorPlan,
    *,
    points: Optional[np.ndarray] = None,
    labels: Optional[Sequence[int]] = None,
    columns: int = 72,
    room_char: str = "#",
) -> str:
    """Render a floor plan with optional labelled points.

    Parameters
    ----------
    points:
        ``(n, 2)`` coordinates to mark (e.g. RPs or cluster samples).
    labels:
        Optional integer label per point; points draw as the label's
        cluster symbol, otherwise as ``*``.
    """
    canvas = AsciiCanvas(plan.width, plan.height, columns=columns)
    for room in plan.rooms:
        canvas.fill_polygon(room, room_char)
    if points is not None:
        pts = np.asarray(points, dtype=float)
        for i, (x, y) in enumerate(pts):
            if labels is not None:
                symbol = CLUSTER_SYMBOLS[
                    int(labels[i]) % len(CLUSTER_SYMBOLS)
                ]
            else:
                symbol = "*"
            canvas.put(float(x), float(y), symbol)
    return canvas.render()


def render_observability(
    plan: FloorPlan,
    rps: np.ndarray,
    observed: Sequence[bool],
    *,
    columns: int = 72,
) -> str:
    """The paper's Fig. 3: which RPs observe a selected AP.

    Observed RPs draw as ``O``, RPs that missed the AP as ``x``.
    """
    canvas = AsciiCanvas(plan.width, plan.height, columns=columns)
    for room in plan.rooms:
        canvas.fill_polygon(room, "#")
    for (x, y), obs in zip(np.asarray(rps, dtype=float), observed):
        canvas.put(float(x), float(y), "O" if obs else "x")
    return canvas.render()


def cluster_legend(labels: Sequence[int]) -> str:
    """One-line legend mapping cluster symbols to member counts."""
    counts: Dict[int, int] = {}
    for lbl in labels:
        counts[int(lbl)] = counts.get(int(lbl), 0) + 1
    parts = [
        f"{CLUSTER_SYMBOLS[lbl % len(CLUSTER_SYMBOLS)]}={n}"
        for lbl, n in sorted(counts.items())
    ]
    return "clusters (symbol=size): " + ", ".join(parts)
