"""ASCII visualisation of venues, observability and clusterings."""

from .ascii_map import (
    AsciiCanvas,
    cluster_legend,
    render_floorplan,
    render_observability,
)

__all__ = [
    "AsciiCanvas",
    "cluster_legend",
    "render_floorplan",
    "render_observability",
]
