"""Tracking workload generator: correlated walks, fleet replay, the
``track`` CLI stage, and the slow CI smoke."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.exceptions import TrackingError
from repro.experiments import PRESETS
from repro.tracking import (
    TrackingScenario,
    Walk,
    replay_walks,
    simulate_walks,
)
from repro.tracking import loadgen as tracking_loadgen


@pytest.fixture(scope="module")
def small_scenario():
    return TrackingScenario(
        devices=4, scan_interval=1.0, duration=10.0
    )


class TestScenario:
    @pytest.mark.parametrize(
        "bad",
        [
            {"devices": 0},
            {"scan_interval": 0.0},
            {"duration": 0.5, "scan_interval": 1.0},
            {"base_speed": -1.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(TrackingError):
            TrackingScenario(**bad)


class TestSimulateWalks:
    def test_walk_shapes_and_lockstep_clock(
        self, kaide_smoke, small_scenario
    ):
        walks = simulate_walks(kaide_smoke, small_scenario, seed=3)
        assert len(walks) == 4
        n_aps = kaide_smoke.radio_map.n_aps
        for walk in walks:
            k = len(walk)
            assert walk.times.shape == (k,)
            assert walk.positions.shape == (k, 2)
            assert walk.scans.shape == (k, n_aps)
            np.testing.assert_array_equal(
                walk.times, walks[0].times
            )  # lockstep
            assert (np.diff(walk.times) > 0).all()

    def test_trajectories_are_correlated(
        self, kaide_smoke, small_scenario
    ):
        """Consecutive truth positions sit within walking distance —
        these are trajectories, not independent samples."""
        walks = simulate_walks(kaide_smoke, small_scenario, seed=4)
        for walk in walks:
            step_lengths = np.linalg.norm(
                np.diff(walk.positions, axis=0), axis=1
            )
            # PathKinematics clamps segment speeds at 3 m/s.
            assert (
                step_lengths
                <= 3.0 * small_scenario.scan_interval + 1e-9
            ).all()

    def test_truth_stays_in_hallways(
        self, kaide_smoke, small_scenario
    ):
        walks = simulate_walks(kaide_smoke, small_scenario, seed=5)
        hallways = kaide_smoke.venue.plan.hallways
        for walk in walks:
            for p in walk.positions:
                assert any(
                    h.contains_point(tuple(p)) for h in hallways
                )

    def test_same_seed_same_fleet(self, kaide_smoke, small_scenario):
        a = simulate_walks(kaide_smoke, small_scenario, seed=6)
        b = simulate_walks(kaide_smoke, small_scenario, seed=6)
        for wa, wb in zip(a, b):
            np.testing.assert_array_equal(wa.positions, wb.positions)
            np.testing.assert_array_equal(wa.scans, wb.scans)


class TestReplay:
    def test_replay_scores_and_closes_sessions(
        self, kaide_smoke, small_scenario
    ):
        from repro.core import TopoACDifferentiator
        from repro.positioning import WKNNEstimator
        from repro.serving import PositioningService
        from repro.tracking import TrackingService

        positioning = PositioningService(cache_size=0)
        positioning.deploy(
            "kaide",
            kaide_smoke.radio_map,
            TopoACDifferentiator(
                entities=kaide_smoke.venue.plan.entities
            ),
            estimator=WKNNEstimator(),
        )
        tracking = TrackingService(positioning)
        walks = simulate_walks(kaide_smoke, small_scenario, seed=7)
        report = replay_walks(tracking, walks, small_scenario)
        assert report.devices == 4
        assert report.steps == 4 * (len(walks[0]) - 1)
        assert report.raw_rmse > 0
        assert report.tracked_rmse > 0
        assert np.isfinite(report.improvement)
        assert tracking.session_count == 0  # all ended
        assert "RMSE" in report.render()

    def test_replay_rejects_empty_and_short(self, kaide_smoke):
        from repro.serving import PositioningService
        from repro.tracking import TrackingService

        tracking = TrackingService(PositioningService())
        scenario = TrackingScenario(devices=1, duration=10.0)
        with pytest.raises(TrackingError, match="no walks"):
            replay_walks(tracking, [], scenario)
        stub = Walk(
            venue="kaide",
            times=np.zeros(1),
            positions=np.zeros((1, 2)),
            scans=np.zeros((1, 3)),
        )
        with pytest.raises(TrackingError, match="two scans"):
            replay_walks(tracking, [stub], scenario)


class TestCLI:
    def test_track_registered_with_defaults(self):
        args = build_parser().parse_args(["track"])
        assert args.experiment == "track"
        assert args.devices == 32
        assert args.scan_interval == 1.0
        assert args.duration == 45.0

    def test_track_flags(self):
        args = build_parser().parse_args(
            [
                "track",
                "--devices",
                "8",
                "--scan-interval",
                "0.5",
                "--duration",
                "20",
                "--venue",
                "longhu",
                "--seed",
                "9",
            ]
        )
        assert args.devices == 8
        assert args.scan_interval == 0.5
        assert args.duration == 20.0
        assert args.venue == "longhu"
        assert args.seed == 9

    def test_track_validates_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["track", "--devices", "0"])
        with pytest.raises(SystemExit):
            main(["track", "--duration", "0.5"])

    def test_track_runs_end_to_end(self, capsys):
        rc = main(
            [
                "track",
                "--preset",
                "smoke",
                "--devices",
                "3",
                "--duration",
                "8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Trajectory tracking" in out
        assert "tracked" in out


@pytest.mark.slow
class TestTrackingSmoke:
    """CI smoke: a short correlated-scan load through a live
    TrackingService must not position worse than answering every
    scan independently."""

    def test_tracked_rmse_beats_per_scan(self):
        config = PRESETS["smoke"]
        scenario = TrackingScenario(
            devices=12, scan_interval=1.0, duration=30.0
        )
        result = tracking_loadgen.run(
            config, scenario=scenario, seed=5
        )
        data = result.data
        assert data["steps"] == 12 * 29
        # Fusing the motion model must help, not hurt.
        assert data["tracked_rmse"] <= data["raw_rmse"]
        assert data["improvement"] > 0.0
