"""Multi-floor tracking workload: portal-crossing walks, the
floor-accuracy scoring, the ``track --floors`` CLI, and the slow
multi-floor CI smoke."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments import PRESETS
from repro.tracking import (
    TrackingScenario,
    simulate_multifloor_walks,
)
from repro.tracking import loadgen as tracking_loadgen


@pytest.fixture(scope="module")
def small_scenario():
    # Long enough that every device finishes its first leg and rides
    # a portal, pauses and speed jitter included.
    return TrackingScenario(
        name="multifloor", devices=3, scan_interval=1.0, duration=90.0
    )


class TestSimulateMultifloorWalks:
    def test_walks_carry_floor_truth(
        self, multifloor_smoke, small_scenario
    ):
        walks = simulate_multifloor_walks(
            multifloor_smoke, small_scenario, seed=3
        )
        assert len(walks) == 3
        floor_ids = set(multifloor_smoke.venue.floor_ids)
        for walk in walks:
            k = len(walk)
            assert walk.floors is not None
            assert walk.floors.shape == (k,)
            assert set(walk.floors) <= floor_ids
            assert walk.scans.shape == (k, multifloor_smoke.n_aps)
            np.testing.assert_array_equal(
                walk.times, walks[0].times
            )

    def test_every_device_rides_a_portal(
        self, multifloor_smoke, small_scenario
    ):
        walks = simulate_multifloor_walks(
            multifloor_smoke, small_scenario, seed=4
        )
        for walk in walks:
            assert len(set(walk.floors)) > 1

    def test_truth_stays_on_its_floors_walkable(
        self, multifloor_smoke, small_scenario
    ):
        walks = simulate_multifloor_walks(
            multifloor_smoke, small_scenario, seed=5
        )
        venue = multifloor_smoke.venue
        for walk in walks:
            for fid, p in zip(walk.floors, walk.positions):
                assert venue.floor(fid).walkable.contains_point(
                    tuple(p)
                )

    def test_same_seed_same_fleet(
        self, multifloor_smoke, small_scenario
    ):
        a = simulate_multifloor_walks(
            multifloor_smoke, small_scenario, seed=6
        )
        b = simulate_multifloor_walks(
            multifloor_smoke, small_scenario, seed=6
        )
        for wa, wb in zip(a, b):
            np.testing.assert_array_equal(wa.positions, wb.positions)
            np.testing.assert_array_equal(wa.scans, wb.scans)
            np.testing.assert_array_equal(wa.floors, wb.floors)


class TestCLI:
    def test_floors_flag_registered(self):
        args = build_parser().parse_args(["track"])
        assert args.floors == 1
        args = build_parser().parse_args(["track", "--floors", "2"])
        assert args.floors == 2

    def test_floors_validated(self):
        with pytest.raises(SystemExit):
            main(["track", "--floors", "0"])

    def test_track_multifloor_runs_end_to_end(self, capsys):
        rc = main(
            [
                "track",
                "--preset",
                "smoke",
                "--floors",
                "2",
                "--devices",
                "2",
                "--duration",
                "40",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Multi-floor tracking" in out
        assert "floor accuracy" in out


@pytest.mark.slow
class TestMultifloorSmoke:
    """CI smoke: a two-floor venue with every device crossing a
    portal mid-walk.  The floor classifier must route >= 95 % of
    scans correctly and fused tracking must not do worse than
    per-scan positioning across the transition, with no track lost
    to a gate failure at the jump."""

    def test_floor_routing_and_portal_handoff(self):
        config = PRESETS["smoke"]
        scenario = TrackingScenario(
            name="multifloor",
            devices=8,
            scan_interval=1.0,
            duration=90.0,
        )
        result = tracking_loadgen.run_multifloor(
            config, scenario=scenario, seed=5
        )
        data = result.data
        assert data["floor_accuracy"] >= 0.95
        assert data["tracked_rmse"] <= data["raw_rmse"]
        # Every device changes floors through a portal hand-off (or,
        # at worst, hysteresis re-anchoring) — never by losing its
        # session: all sessions end normally.
        assert data["floor_switches"] >= data["devices"]
        assert data["floor_reanchors"] == 0
